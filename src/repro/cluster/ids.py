"""Node identities and roles.

A Scalla *node* is an xrootd (data/redirect daemon) paired with a cmsd
(cluster-management daemon) — "the system is symmetric in that for each
xrootd there is a corresponding cmsd" (§II-B).  In the simulation each
daemon gets its own network host so their traffic is separately observable:
``<node>.cmsd`` and ``<node>.xrootd``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Role", "NodeId", "cmsd_host", "xrootd_host"]


class Role(enum.Enum):
    """Where a node sits in the 64-ary tree (§II-B1/B2)."""

    MANAGER = "manager"  # logical head node clients contact first
    SUPERVISOR = "supervisor"  # interior node: subordinates above servers
    SERVER = "server"  # leaf node: actually holds data


@dataclass(frozen=True)
class NodeId:
    """A node's identity: stable name plus tree role."""

    name: str
    role: Role

    @property
    def cmsd(self) -> str:
        return cmsd_host(self.name)

    @property
    def xrootd(self) -> str:
        return xrootd_host(self.name)

    def __str__(self) -> str:
        return f"{self.name}({self.role.value})"


def cmsd_host(node_name: str) -> str:
    """Network host name of a node's cmsd daemon."""
    return f"{node_name}.cmsd"


def xrootd_host(node_name: str) -> str:
    """Network host name of a node's xrootd daemon."""
    return f"{node_name}.xrootd"
