"""The xrootd data server daemon.

One per leaf node: serves opens/reads/writes/closes against the node's
local :class:`~repro.cluster.fs.ServerFS`, staging offline files from the
:class:`~repro.cluster.mss.MassStorage` on demand.  Each request is handled
in its own simulation process so a minutes-long stage never blocks other
clients — exactly why the real daemon is heavily threaded.

The daemon also feeds two side channels:

* load / free-space metrics, reported to parents via cmsd heartbeats and
  consumed by selection policies;
* :class:`~repro.cluster.protocol.NamespaceUpdate` notifications to the
  cnsd (footnote 3's Cluster Name Space daemon) on create/remove.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster import protocol as pr
from repro.cluster.fs import FSError, ServerFS
from repro.cluster.ids import NodeId
from repro.cluster.mss import MassStorage
from repro.sim.kernel import Process, Simulator
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.network import Network
from repro.sim.sync import Resource

__all__ = ["XrootdConfig", "XrootdServer"]


@dataclass
class XrootdConfig:
    """Tunables of one data server."""

    #: Fixed per-request service latency (metadata / disk seek).
    service_time: LatencyModel = field(default_factory=lambda: Fixed(50e-6))
    #: Transfer time per byte (1 Gb/s ≈ 8e-9 s/byte).
    per_byte: float = 8e-9
    #: Concurrent requests before reported load saturates.
    capacity: int = 64
    #: Nominal disk size, for free-space metrics (bytes).
    disk_size: float = 1e12


class XrootdServer:
    """Data-plane daemon of one server node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: NodeId,
        fs: ServerFS,
        *,
        mss: MassStorage | None = None,
        cnsd_host: str | None = None,
        config: XrootdConfig | None = None,
        rng: random.Random | None = None,
        obs=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.fs = fs
        self.mss = mss
        self.cnsd_host = cnsd_host
        self.config = config if config is not None else XrootdConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.host = network.hosts.get(node_id.xrootd) or network.add_host(node_id.xrootd)
        # Observability (repro.obs): data-plane counters, resolved once.
        self._obs = obs
        if obs is not None:
            name = node_id.name
            m = obs.metrics
            self._m_opens = m.counter("xrootd_opens_total", node=name)
            self._m_open_failures = m.counter("xrootd_open_failures_total", node=name)
            self._m_stages = m.counter("xrootd_stages_total", node=name)
            self._m_bytes_read = m.counter("xrootd_bytes_read_total", node=name)
            self._m_bytes_written = m.counter("xrootd_bytes_written_total", node=name)
            self._m_load = m.gauge("xrootd_load", node=name)

        self._handles: dict[int, str] = {}
        self._next_handle = 1
        self._active = 0
        #: The NIC: one transfer at a time at ``per_byte`` seconds/byte.
        #: Without this, concurrent reads would each enjoy full line rate
        #: and aggregate bandwidth would not scale with server count.
        self._nic = Resource(sim, capacity=1)
        self._proc: Process | None = None
        #: Hooks called with the path of every newly created file.  The
        #: node's cmsd installs its "newfile" advisory here; applications
        #: (e.g. a Qserv worker watching for query files) append their own.
        self.on_create_hooks: list = []
        # Statistics
        self.opens = 0
        self.open_failures = 0
        self.stages = 0

    # -- metrics the cmsd heartbeats report -------------------------------------

    @property
    def load(self) -> float:
        """Utilization in [0, 1] — active requests over capacity."""
        return min(1.0, self._active / self.config.capacity)

    @property
    def free_space(self) -> float:
        return max(0.0, self.config.disk_size - self.fs.total_bytes())

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._proc = self.sim.process(self._main_loop(), name=f"xrootd:{self.node_id.name}")

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.interrupt("stop")
            self._proc = None

    def _main_loop(self):
        while True:
            env = yield self.host.inbox.get()
            # Every request gets its own process: staging or long transfers
            # must not serialize the daemon.
            self.sim.process(self._handle(env.payload), name=f"xrootd-req:{self.node_id.name}")

    # -- request handling -----------------------------------------------------

    def _reply(self, to: str, msg: object) -> None:
        self.network.send(self.host.name, to, msg, size=pr.estimate_size(msg))

    def _handle(self, msg):
        self._active += 1
        if self._obs is not None:
            self._m_load.set(self.load)
        try:
            yield self.sim.sleep(self.config.service_time.sample(self.rng))
            if isinstance(msg, pr.Open):
                yield from self._handle_open(msg)
            elif isinstance(msg, pr.Read):
                yield from self._handle_read(msg)
            elif isinstance(msg, pr.Write):
                yield from self._handle_write(msg)
            elif isinstance(msg, pr.Close):
                self._handle_close(msg)
            elif isinstance(msg, pr.Stat):
                self._handle_stat(msg)
            elif isinstance(msg, pr.Remove):
                self._handle_remove(msg)
            elif isinstance(msg, pr.List):
                self._reply(msg.reply_to, pr.ListAck(msg.req_id, tuple(self.fs.list(msg.prefix))))
            # Unknown messages are dropped, as a hardened daemon would.
        finally:
            self._active -= 1

    def _handle_open(self, msg: pr.Open):
        self.opens += 1
        if self._obs is not None:
            self._m_opens.inc()
            self._obs.tracer.event(
                msg.path, "xrootd.open", node=self.node_id.name, create=msg.create
            )
        if self.fs.exists(msg.path):
            if msg.create:
                self.open_failures += 1
                if self._obs is not None:
                    self._m_open_failures.inc()
                self._reply(msg.reply_to, pr.OpenFail(msg.req_id, msg.path, "exists"))
                return
            yield from self._ack_open(msg)
            return
        if msg.create:
            self.fs.create(msg.path, now=self.sim.now)
            self._notify_cnsd(msg.path, "create")
            for hook in self.on_create_hooks:
                hook(msg.path)
            yield from self._ack_open(msg)
            return
        if self.mss is not None and self.mss.has(msg.path):
            # Offline file: stage it in, then complete the open.  The open
            # blocks for the stage — "the full delay usually represents a
            # small fraction of the time it takes to stage a file".
            self.stages += 1
            if self._obs is not None:
                self._m_stages.inc()
            size = yield self.mss.stage(msg.path)
            if not self.fs.exists(msg.path):
                self.fs.put(msg.path, b"\x00" * int(size), now=self.sim.now)
            yield from self._ack_open(msg)
            return
        self.open_failures += 1
        if self._obs is not None:
            self._m_open_failures.inc()
        self._reply(msg.reply_to, pr.OpenFail(msg.req_id, msg.path, "ENOENT"))

    def _ack_open(self, msg: pr.Open):
        handle = self._next_handle
        self._next_handle += 1
        self._handles[handle] = msg.path
        size = self.fs.stat(msg.path).size
        self._reply(msg.reply_to, pr.OpenAck(msg.req_id, handle, size))
        return
        yield  # pragma: no cover - keeps this a generator for uniform call sites

    def _handle_read(self, msg: pr.Read):
        path = self._handles.get(msg.handle)
        if path is None:
            self._reply(msg.reply_to, pr.OpenFail(msg.req_id, "?", "bad handle"))
            return
        data = self.fs.read(path, msg.offset, msg.length)
        yield self._nic.acquire()
        try:
            yield self.sim.sleep(len(data) * self.config.per_byte)
        finally:
            self._nic.release()
        if self._obs is not None:
            self._m_bytes_read.inc(len(data))
        self._reply(msg.reply_to, pr.ReadAck(msg.req_id, data))

    def _handle_write(self, msg: pr.Write):
        path = self._handles.get(msg.handle)
        if path is None:
            self._reply(msg.reply_to, pr.OpenFail(msg.req_id, "?", "bad handle"))
            return
        yield self._nic.acquire()
        try:
            yield self.sim.sleep(len(msg.data) * self.config.per_byte)
        finally:
            self._nic.release()
        written = self.fs.write(path, msg.offset, msg.data)
        if self._obs is not None:
            self._m_bytes_written.inc(written)
        self._reply(msg.reply_to, pr.WriteAck(msg.req_id, written))

    def _handle_close(self, msg: pr.Close) -> None:
        self._handles.pop(msg.handle, None)
        self._reply(msg.reply_to, pr.CloseAck(msg.req_id))

    def _handle_stat(self, msg: pr.Stat) -> None:
        if self.fs.exists(msg.path):
            self._reply(msg.reply_to, pr.StatAck(msg.req_id, True, self.fs.stat(msg.path).size))
        else:
            self._reply(msg.reply_to, pr.StatAck(msg.req_id, False, 0))

    def _handle_remove(self, msg: pr.Remove) -> None:
        try:
            self.fs.remove(msg.path)
        except FSError:
            self._reply(msg.reply_to, pr.RemoveAck(msg.req_id, False))
            return
        self._notify_cnsd(msg.path, "remove")
        self._reply(msg.reply_to, pr.RemoveAck(msg.req_id, True))

    def _notify_cnsd(self, path: str, op: str) -> None:
        if self.cnsd_host is not None:
            msg = pr.NamespaceUpdate(node=self.node_id.name, path=path, op=op)
            self.network.send(self.host.name, self.cnsd_host, msg, size=pr.estimate_size(msg))
