"""The cmsd cluster-management daemon.

One per node.  Its behaviour depends on the node's tree role:

* **manager / supervisor** — owns a :class:`~repro.core.cache.NameCache`
  over its ≤64 direct subordinates, answers ``Locate`` requests from
  clients, floods ``QueryFile`` down the tree, collects ``HaveFile``
  responses through the fast response queue, and redirects clients
  (§II-B2/B3, §III).
* **server** — answers ``QueryFile`` with ``HaveFile`` *only when the local
  xrootd actually has (or can stage) the file*; silence is the negative
  response (request-rarely-respond, §III-B).

Every cmsd below the root also runs the subordinate half: login to its
parents at start, heartbeats carrying load/space metrics, and automatic
re-login when a (state-less, restarted) parent stops recognizing it — the
mechanism behind "clusters of hundreds of nodes can begin to serve files
within seconds of restarting" (§V).

The daemon is a set of cooperating simulation processes:

    main loop        — inbox dispatch, with a per-message service time
    response clock   — the 133 ms fast-response expiry thread (§III-B)
    window ticker    — L_t/64 cache eviction clock (§III-A3)
    heartbeat loop   — subordinate -> parents
    liveness sweep   — parent-side disconnect/drop timers (§III-A4)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.simsan import Sanitizer
from repro.cluster import protocol as pr
from repro.cluster.ids import NodeId, Role, cmsd_host
from repro.cluster.xrootd import XrootdServer
from repro.core import bitvec
from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.core.crc32 import hash_name
from repro.core.deadline import DeadlinePolicy
from repro.core.response_queue import AccessMode, ResponseQueue
from repro.core.selection import MostSpace, RoundRobin, SelectionPolicy, ServerMetrics
from repro.sim.errors import Interrupt
from repro.sim.kernel import Process, Simulator
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.network import Network

__all__ = ["CmsdConfig", "CmsdStats", "ChildInfo", "Cmsd"]


@dataclass
class CmsdConfig:
    """Tunables; defaults follow the paper's stated values."""

    #: Full wait before silence means non-existence (paper: 5 s).
    full_delay: float = 5.0
    #: Location-object lifetime L_t (paper: 8 h).
    lifetime: float = 8 * 3600.0
    #: Fast-response clocking period (paper: 133 ms).
    fast_period: float = 0.133
    #: Response-queue anchors (paper: 1024).
    anchors: int = 1024
    #: Per-message processing cost of this cmsd.
    service_time: LatencyModel = field(default_factory=lambda: Fixed(5e-6))
    #: Subordinate -> parent heartbeat interval.
    heartbeat_interval: float = 1.0
    #: Missed-heartbeat horizon after which a child is marked offline.
    disconnect_timeout: float = 3.5
    #: Offline horizon after which a child is dropped from the cluster
    #: ("Should the server not reconnect in a configurable amount of time").
    drop_timeout: float = 600.0
    #: Missed-ack horizon after which a subordinate re-logins.
    relogin_timeout: float = 3.5
    #: Supervisor failover: when a parent stays silent past
    #: ``relogin_timeout``, re-home to the next standby (the dead parent's
    #: sibling supervisor, else the grandparent/manager) instead of
    #: heartbeating into the void.  The adopting parent treats the login
    #: as an ordinary §III-A4 "server added" membership event, so cached
    #: locations stay correctable with zero cache walks.  False restores
    #: the seed behaviour where a crashed interior node strands its
    #: subtree until the same host returns.
    rehome: bool = True
    #: Cap on the exponential re-login backoff (engaged when a parent is
    #: silent and no standby exists — e.g. the parent is a manager the
    #: subordinate is already fully connected to).
    relogin_backoff_cap: float = 30.0
    #: Jitter fraction on re-login backoff delays (decorrelates a 64-wide
    #: subtree re-discovering its parent at once).
    relogin_jitter: float = 0.25
    #: Selection policy for read/write redirection.
    read_policy: SelectionPolicy = field(default_factory=RoundRobin)
    #: Selection policy for placing new files.
    create_policy: SelectionPolicy = field(default_factory=MostSpace)
    #: ABLATION (bench E6): when False the fast response queue is bypassed —
    #: clients with queries in flight are simply told to wait the full
    #: delay and retry, as a design without §III-B's queue would.
    fast_response: bool = True
    #: ABLATION (bench E10): when False, deadline-based query
    #: synchronization is off — every thread finding no holders re-queries
    #: all eligible servers itself, duplicating floods (§III-C2's "only one
    #: thread should issue the queries" un-enforced).
    deadline_sync: bool = True
    #: EXTENSION: when True, redirection prefers holders at the client's
    #: site (WAN federations, §IV-A); falls back to the full candidate set
    #: when no local replica exists.
    locality_aware: bool = False
    #: EXTENSION (WAN federations): adaptive fast-response window sizing.
    #: When True, each new response-queue anchor's deadline is
    #: ``max(fast_period, window_rtt_mult x slowest expected responder's
    #: EWMA RTT)`` instead of the flat ``fast_period``; on a LAN the RTT
    #: term stays far below 133 ms, so the paper's default is preserved
    #: bit-for-bit.  Also arms the bounded re-query (see requery_limit).
    adaptive_window: bool = False
    #: k in the adaptive window formula.
    window_rtt_mult: float = 3.0
    #: EWMA smoothing factor for per-peer RTT estimates (fed from login /
    #: heartbeat arrival latencies and observed query-response latencies).
    rtt_alpha: float = 0.25
    #: Bounded re-query (adaptive mode only): on window expiry with the
    #: epoch deadline still active, re-flood the still-silent subset up to
    #: this many times — each round's window scaled by requery_backoff and
    #: capped at the epoch remainder — before the full-delay fallback.
    requery_limit: int = 1
    #: Window growth factor per re-query round.
    requery_backoff: float = 2.0
    #: Late-response reconciliation: a HaveFile arriving after its anchor
    #: expired still updates V_h *and* releases clients parked on the full
    #: 5 s delay (they are told to keep listening via ``Wait.watch``).
    #: False restores the seed behaviour where late answers help nobody —
    #: the ablation bench E6-wan's "before" row.
    late_release: bool = True
    #: SimSan (repro.analysis.simsan): when True, manager/supervisor cmsds
    #: sweep their cache/queue/membership invariants after every eviction
    #: tick, response-processing batch, and expiry pass.  Sweeps are pure
    #: reads — event streams are identical with it on or off.
    sanitize: bool = False


@dataclass
class CmsdStats:
    locates: int = 0
    redirects: int = 0
    waits_sent: int = 0
    notfounds: int = 0
    queries_sent: int = 0
    haves_sent: int = 0
    haves_received: int = 0
    fast_released: int = 0
    #: Clients released by a response that arrived *after* its window
    #: expired (late-response reconciliation).
    late_released: int = 0
    #: Bounded re-query rounds issued on window expiry (adaptive mode).
    requeries: int = 0
    #: add_waiter rejections (anchor exhaustion): each one parked a client
    #: on the full conservative delay — visible anchor pressure, not noise.
    rq_rejected: int = 0
    logins_handled: int = 0
    #: Login messages sent upward, counted per parent send (a login to two
    #: managers counts twice — it is two wire messages).
    relogins_sent: int = 0
    #: The same, broken down by parent — lets the churn benches tell a
    #: healthy re-login from an orphan storm against one dead host.
    relogins_by_parent: dict[str, int] = field(default_factory=dict)
    #: Successful parent swaps (standby adoptions).
    rehomes: int = 0
    #: Cumulative time this subordinate spent with *every* parent silent
    #: past the re-login horizon (heartbeat-interval granularity).
    orphaned_seconds: float = 0.0
    prepares: int = 0
    refreshes: int = 0


@dataclass
class ChildInfo:
    """Parent-side metadata about one direct subordinate."""

    name: str
    role: Role
    last_seen: float = 0.0
    site: str = ""


@dataclass(frozen=True)
class _ClientWaiter:
    """Fast-response-queue payload for a waiting client.

    ``span`` is the open ``rq.wait`` trace span (None when tracing is off);
    whoever releases the waiter — a server response or the expiry clock —
    closes it with the outcome.
    """

    reply_to: str
    req_id: int
    path: str
    create: bool
    span: object = None


@dataclass(frozen=True)
class _ParentWaiter:
    """Fast-response-queue payload for a parent's pending QueryFile.

    On release the supervisor sends a single compressed ``HaveFile`` up —
    "multiple responses that are sent to a supervisor are compressed into a
    single response" (§II-B2).  On expiry nothing is sent: silence *is* the
    negative answer.
    """

    parent_host: str
    path: str
    hash_val: int


class Cmsd:
    """One node's cluster-management daemon."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: NodeId,
        *,
        parents: tuple[str, ...] = (),  # parent node names
        standbys: tuple[str, ...] = (),  # failover parents, in order
        exports: tuple[str, ...] = ("/store",),
        xrootd: XrootdServer | None = None,
        config: CmsdConfig | None = None,
        rng: random.Random | None = None,
        instance: int = 0,
        obs=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.parents = parents
        self.standbys = standbys
        #: Re-home rotation: the configured standbys first, then the
        #: original parents (so a subordinate driven off its home parent
        #: eventually retries it once the alternatives are exhausted).
        self._standby_pool: tuple[str, ...] = standbys + tuple(
            p for p in parents if p not in standbys
        )
        self._standby_idx = 0
        self.exports = exports
        self.xrootd = xrootd
        self.config = config if config is not None else CmsdConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.instance = instance
        self.host = network.hosts.get(node_id.cmsd) or network.add_host(node_id.cmsd)
        self.stats = CmsdStats()
        # Observability (repro.obs): obs=None keeps every hot path on the
        # uninstrumented branch of a single None check.
        self._obs = obs
        if obs is not None:
            name = node_id.name
            m = obs.metrics
            self._m_msgs = m.counter("cmsd_messages_sent_total", node=name)
            self._m_locates = m.counter("cmsd_locate_requests_total", node=name)
            self._m_redirects = m.counter("cmsd_redirects_total", node=name)
            self._m_waits = m.counter("cmsd_waits_sent_total", node=name)
            self._m_notfounds = m.counter("cmsd_notfounds_total", node=name)
            self._m_queries = m.counter("cmsd_queries_sent_total", node=name)
            self._m_haves_rx = m.counter("cmsd_haves_received_total", node=name)
            self._m_fast_released = m.counter("cmsd_fast_released_total", node=name)
            self._m_requeries = m.counter("rq_requeries_total", node=name)
            self._m_rehomes = m.counter("rehomes_total", node=name)
            self._m_orphaned = m.gauge("orphaned_subtree_seconds", node=name)

        if node_id.role is not Role.SERVER:
            self.membership = ClusterMembership(obs=obs, node=node_id.name)
            self.cache = NameCache(
                self.membership, lifetime=self.config.lifetime, obs=obs, node=node_id.name
            )
            self.rq = ResponseQueue(
                anchors=self.config.anchors,
                period=self.config.fast_period,
                park_ttl=self.config.full_delay if self.config.late_release else 0.0,
                obs=obs,
                node=node_id.name,
            )
            self.deadline = DeadlinePolicy(full_delay=self.config.full_delay)
            self.metrics = ServerMetrics()
            self.children: dict[str, ChildInfo] = {}
        else:
            self.membership = None
            self.cache = None
            self.rq = None
            self.deadline = None
            self.metrics = None
            self.children = {}
        # Every role gets a sanitizer: servers have no cache/queue, but
        # their subordinate half (parents, re-home state) is checkable.
        self.sanitizer = Sanitizer(node=node_id.name) if self.config.sanitize else None

        self._procs: list[Process] = []
        self._rq_wake = None
        self._last_parent_ack: dict[str, float] = {}
        #: Per-parent re-login backoff: parent -> (attempts, earliest next
        #: send).  Populated only while a parent is silent; cleared by the
        #: first ack.
        self._relogin_state: dict[str, tuple[int, float]] = {}
        self._query_serial = 0
        #: Per-child EWMA round-trip estimate (seconds), fed from the
        #: observed one-way delivery delay of logins/heartbeats/responses
        #: and from query-response latencies.  Sizes adaptive windows.
        self._peer_rtt: dict[str, float] = {}

        if node_id.role is Role.SERVER and xrootd is not None:
            # The "newfile" advisory hook: without it, a manager whose cache
            # already concluded "nobody has this file" would never learn the
            # file was just created (its V_q is empty, so nothing re-asks).
            xrootd.on_create_hooks.append(self._advertise_new_file)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._procs = [self.sim.process(self._main_loop(), name=f"cmsd:{self.node_id.name}")]
        if self.node_id.role is not Role.SERVER:
            self._procs.append(
                self.sim.process(self._response_clock(), name=f"cmsd-rq:{self.node_id.name}")
            )
            self._procs.append(
                self.sim.process(self._window_ticker(), name=f"cmsd-tick:{self.node_id.name}")
            )
            self._procs.append(
                self.sim.process(self._liveness_sweep(), name=f"cmsd-sweep:{self.node_id.name}")
            )
        if self.parents:
            self._login_to_parents()
            self._procs.append(
                self.sim.process(self._heartbeat_loop(), name=f"cmsd-hb:{self.node_id.name}")
            )

    def stop(self) -> None:
        for p in self._procs:
            p.interrupt("stop")
        self._procs = []

    # -- outbound helpers -----------------------------------------------------

    def _send(self, to: str, msg: object) -> None:
        if self._obs is not None:
            self._m_msgs.inc()
        self.network.send(self.host.name, to, msg, size=pr.estimate_size(msg))

    def _login_to_parent(self, parent: str) -> None:
        msg = pr.Login(
            node=self.node_id.name,
            role=self.node_id.role.value,
            paths=self.exports,
            instance=self.instance,
        )
        self._send(cmsd_host(parent), msg)
        self.stats.relogins_sent += 1
        self.stats.relogins_by_parent[parent] = (
            self.stats.relogins_by_parent.get(parent, 0) + 1
        )
        # Start the silence clock at the login send: a parent that never
        # acks anything must still trip the re-login horizon (leaving the
        # clock unset made silent_for read as zero forever).
        self._last_parent_ack.setdefault(parent, self.sim.now)

    def _login_to_parents(self) -> None:
        for parent in self.parents:
            self._login_to_parent(parent)

    # -- subordinate half -----------------------------------------------------

    def _heartbeat_loop(self):
        try:
            while True:
                yield self.sim.sleep(self.config.heartbeat_interval)
                load = self.xrootd.load if self.xrootd is not None else 0.0
                space = self.xrootd.free_space if self.xrootd is not None else 0.0
                site = self.network.site_of(self.host.name) or ""
                hb = pr.Heartbeat(node=self.node_id.name, load=load, free_space=space, site=site)
                now = self.sim.now
                silent: list[str] = []
                for parent in tuple(self.parents):
                    self._send(cmsd_host(parent), hb)
                    last = self._last_parent_ack.get(parent, now)
                    if now - last > self.config.relogin_timeout:
                        silent.append(parent)
                if silent and len(silent) == len(self.parents):
                    # Every parent unreachable: the whole subtree below us
                    # is orphaned until a re-home or re-login lands.
                    self.stats.orphaned_seconds += self.config.heartbeat_interval
                    if self._obs is not None:
                        self._m_orphaned.set(self.stats.orphaned_seconds)
                for parent in silent:
                    self._handle_silent_parent(parent, now)
                if self.sanitizer is not None and self.parents:
                    self.sanitizer.check_subordinate(self)
        except Interrupt:
            return

    def _handle_silent_parent(self, parent: str, now: float) -> None:
        """A parent blew the re-login horizon: re-home, or back off and
        re-login.

        Silence past ``relogin_timeout`` means the parent is *unreachable*
        — a restarted state-less parent still answers heartbeats (with
        ``known=False``), which the ordinary re-login in
        ``_on_heartbeat_ack`` covers without ever reaching this path.
        """
        attempts, next_at = self._relogin_state.get(parent, (0, 0.0))
        if now < next_at:
            return
        if self.config.rehome and self._rehome(parent, now):
            return
        # Nowhere to re-home (or re-homing disabled): keep re-introducing
        # ourselves, with capped jittered exponential backoff so a dead
        # manager is not buried under a 64-wide re-login storm when it
        # finally returns.
        self._login_to_parent(parent)
        delay = min(
            self.config.relogin_backoff_cap,
            self.config.relogin_timeout * (2.0**attempts),
        )
        delay *= 1.0 + self.config.relogin_jitter * self.rng.random()
        self._relogin_state[parent] = (attempts + 1, now + delay)

    def _rehome(self, dead_parent: str, now: float) -> bool:
        """Adopt the next standby in place of *dead_parent*.

        Rotates through the standby pool — sibling supervisors first, then
        the grandparent/manager level, then the original parent again — and
        swaps the first candidate we are not already logged into in place
        of the dead one.  The adopter treats our Login as an ordinary
        §III-A4 "server added" membership event (fresh slot, C-counter
        stamp), so every cached location above stays correctable with zero
        cache walks.  Returns False when there is nowhere to go (e.g. a
        top-level subordinate already logged into every manager).
        """
        pool = self._standby_pool
        if not pool:
            return False
        for _ in range(len(pool)):
            candidate = pool[self._standby_idx % len(pool)]
            self._standby_idx += 1
            if candidate != dead_parent and candidate not in self.parents:
                break
        else:
            return False
        self.parents = tuple(p for p in self.parents if p != dead_parent) + (candidate,)
        self._last_parent_ack.pop(dead_parent, None)
        self._relogin_state.pop(dead_parent, None)
        self.stats.rehomes += 1
        self._login_to_parent(candidate)
        if self._obs is not None:
            self._m_rehomes.inc()
            self._obs.tracer.cluster_event(
                "cmsd.rehome",
                time=now,
                node=self.node_id.name,
                old=dead_parent,
                new=candidate,
            )
        if self.sanitizer is not None:
            self.sanitizer.check_subordinate(self)
        return True

    # -- parent-side background processes ----------------------------------------

    def _response_clock(self):
        """The fast-response 'thread': expire anchors past their window.

        An expired client waiter is, in order of preference: ridden through
        a bounded re-query round (adaptive mode, epoch still active), or
        told to wait the full delay — watched, so a late response can still
        turn into a redirect (late-response reconciliation).  Expired
        parent waiters get nothing (non-response = negative).
        """
        try:
            while True:
                if self.rq.active_anchors == 0:
                    self._rq_wake = self.sim.event()
                    yield self._rq_wake
                nxt = self.rq.next_expiry()
                if nxt is None:
                    continue
                # The 1 µs slack guards against float round-off leaving the
                # oldest anchor infinitesimally younger than the cutoff,
                # which would spin this loop on zero-length timeouts.
                yield self.sim.sleep(max(0.0, nxt - self.sim.now) + 1e-6)
                expired = self.rq.expire(self.sim.now)
                if self.sanitizer is not None and expired:
                    self.sanitizer.check_queue(self.rq)
                for waiter in expired:
                    payload = waiter.payload
                    if isinstance(payload, _ClientWaiter):
                        if self._try_requery(waiter, payload):
                            continue
                        self._close_wait_span(payload.span, outcome="timeout")
                        self._send(
                            payload.reply_to,
                            pr.Wait(
                                payload.req_id,
                                payload.path,
                                self.config.full_delay,
                                watch=self.config.late_release,
                            ),
                        )
                        self.stats.waits_sent += 1
                        if self._obs is not None:
                            self._m_waits.inc()
        except Interrupt:
            return

    def _try_requery(self, waiter, payload: "_ClientWaiter") -> bool:
        """Give an expired waiter one more fast-response round, maybe.

        Returns True when the waiter was re-queued (joining a re-query
        round already armed by an earlier waiter of the same batch, or
        arming a fresh one: re-flood the still-silent online subset and
        open a backoff-scaled window capped at the epoch remainder).
        False condemns it to the full conservative delay.
        """
        cfg = self.config
        if not cfg.adaptive_window or cfg.requery_limit <= 0:
            return False
        now = self.sim.now
        ref, _ = self.cache.lookup(payload.path, now, add=False)
        if ref is None:
            return False
        obj = ref.get()
        if not self.deadline.active(obj, now):
            return False
        if not self.rq.has_anchor(obj, waiter.mode):
            # First expired waiter of this batch decides; co-waiters join.
            if obj.rq_retries >= cfg.requery_limit:
                return False
            obj.rq_retries += 1
            silent = (
                self.membership.eligible(payload.path)
                & self.membership.v_online
                & ~(obj.v_h | obj.v_p)
                & bitvec.FULL_MASK
            )
            if silent:
                obj.v_q |= silent
                self._flood_queries(obj, payload.path, ref.hash_val, waiter.mode)
            self.stats.requeries += 1
            if self._obs is not None:
                self._m_requeries.inc()
                self._obs.tracer.event(
                    payload.path,
                    "rq.requery",
                    node=self.node_id.name,
                    round=obj.rq_retries,
                    fanout=bitvec.count(silent),
                )
        base = self._fast_window() or cfg.fast_period
        window = min(
            base * (cfg.requery_backoff**obj.rq_retries),
            self.deadline.remaining(obj, now),
        )
        outcome = self.rq.add_waiter(obj, waiter.mode, payload, now, window=window)
        if outcome.accepted:
            # The expiry pass already parked this waiter; withdraw that copy
            # or the late answer would release the client twice.
            self.rq.unpark(obj, waiter)
            if outcome.queue_was_empty:
                self._wake_response_clock()
        if not outcome.accepted:
            self.stats.rq_rejected += 1
            if self._obs is not None:
                self._obs.tracer.event(payload.path, "rq.rejected", node=self.node_id.name)
        return outcome.accepted

    def _wake_response_clock(self) -> None:
        if self._rq_wake is not None and not self._rq_wake.triggered:
            self._rq_wake.succeed()

    def _window_ticker(self):
        try:
            while True:
                yield self.sim.sleep(self.cache.tick_interval)
                self.cache.tick()
                self.cache.run_background_removal()
                if self.sanitizer is not None:
                    self.sanitizer.sweep(
                        cache=self.cache, rq=self.rq, membership=self.membership
                    )
        except Interrupt:
            return

    def _liveness_sweep(self):
        """Disconnect children whose heartbeats stopped; drop them later.

        Implements §III-A4's two-phase removal: a silent child first goes
        *offline* (still a member, cached info stays valid), and only after
        ``drop_timeout`` is it dropped (V_m scrubbed, slot freed).
        """
        try:
            while True:
                yield self.sim.sleep(self.config.heartbeat_interval)
                now = self.sim.now
                for name, info in list(self.children.items()):
                    slot = self.membership.slot_of(name)
                    if slot is None:
                        del self.children[name]
                        continue
                    silent_for = now - info.last_seen
                    entry = self.membership.slot(slot)
                    if entry.online and silent_for > self.config.disconnect_timeout:
                        self.membership.disconnect(name)
                    elif not entry.online and silent_for > self.config.drop_timeout:
                        self.membership.drop(name)
                        del self.children[name]
        except Interrupt:
            return

    # -- main dispatch ---------------------------------------------------------

    def _main_loop(self):
        try:
            while True:
                env = yield self.host.inbox.get()
                yield self.sim.sleep(self.config.service_time.sample(self.rng))
                self._dispatch(env.payload, env.src, env.sent_at)
        except Interrupt:
            return

    def _dispatch(self, msg: object, src: str, sent_at: float = 0.0) -> None:
        role = self.node_id.role
        if isinstance(msg, pr.Heartbeat) and role is not Role.SERVER:
            self._on_heartbeat(msg, src, sent_at)
        elif isinstance(msg, pr.Login) and role is not Role.SERVER:
            self._on_login(msg, src, sent_at)
        elif isinstance(msg, pr.QueryFile):
            if role is Role.SERVER:
                self._on_query_server(msg, src)
            else:
                self._on_query_supervisor(msg, src)
        elif isinstance(msg, pr.HaveFile) and role is not Role.SERVER:
            self._on_have(msg, sent_at)
        elif isinstance(msg, pr.Locate) and role is not Role.SERVER:
            self._on_locate(msg)
        elif isinstance(msg, pr.Prepare) and role is not Role.SERVER:
            self._on_prepare(msg)
        elif isinstance(msg, pr.HeartbeatAck):
            self._on_heartbeat_ack(msg, src)
        # Anything else: drop (e.g. QueryFile racing a role change).

    # -- per-peer RTT estimation (adaptive window sizing) ---------------------------

    def _observe_peer(self, node: str, rtt: float) -> None:
        """Fold one round-trip observation into *node*'s EWMA estimate.

        Sim time is globally consistent, so any child message stamps its
        own one-way delivery delay (``now - sent_at``, inbox queueing and
        our service time included — exactly the delays a response must
        survive); doubled, that is a conservative RTT sample.
        """
        prev = self._peer_rtt.get(node)
        if prev is None:
            self._peer_rtt[node] = rtt
        else:
            self._peer_rtt[node] = prev + self.config.rtt_alpha * (rtt - prev)

    def _fast_window(self) -> float | None:
        """Adaptive anchor window, or None for the flat configured period.

        ``max(fast_period, k x slowest expected responder RTT)``: the
        window must outlive a query round trip to the slowest site that
        might answer, and never undercuts the paper's default.
        """
        if not self.config.adaptive_window:
            return None
        slowest = 0.0
        for slot in bitvec.iter_bits(self.membership.v_online):
            name = self.membership.server_name(slot)
            if name is None:
                continue
            rtt = self._peer_rtt.get(name)
            if rtt is not None and rtt > slowest:
                slowest = rtt
        return max(self.config.fast_period, self.config.window_rtt_mult * slowest)

    # -- membership handling -----------------------------------------------------

    def _on_login(self, msg: pr.Login, src: str, sent_at: float = 0.0) -> None:
        self._observe_peer(msg.node, 2.0 * (self.sim.now - sent_at))
        try:
            slot = self.membership.login(msg.node, msg.paths)
        except OverflowError:
            # All 64 slots occupied: ignore the login.  No ack means the
            # subordinate's silence clock keeps running and it rotates on
            # to its next standby instead of wedging a full parent.
            return
        self.children[msg.node] = ChildInfo(
            name=msg.node, role=Role(msg.role), last_seen=self.sim.now
        )
        self.metrics.selections[slot] = 0
        self.stats.logins_handled += 1
        self._send(src, pr.LoginAck(slot))

    def _on_heartbeat(self, msg: pr.Heartbeat, src: str, sent_at: float = 0.0) -> None:
        self._observe_peer(msg.node, 2.0 * (self.sim.now - sent_at))
        info = self.children.get(msg.node)
        slot = self.membership.slot_of(msg.node)
        if info is None or slot is None:
            # We do not know this child (we probably restarted): tell it so.
            self._send(src, pr.HeartbeatAck(node=self.node_id.name, known=False))
            return
        info.last_seen = self.sim.now
        info.site = msg.site
        entry = self.membership.slot(slot)
        if not entry.online:
            # Reconnection within the drop window (case 3 of §III-A4).
            self.membership.login(msg.node, entry.paths)
        self.metrics.load[slot] = msg.load
        self.metrics.free_space[slot] = msg.free_space
        self._send(src, pr.HeartbeatAck(node=self.node_id.name, known=True))

    def _on_heartbeat_ack(self, msg: pr.HeartbeatAck, src: str) -> None:
        parent = msg.node
        if parent not in self.parents:
            return  # stale ack from a parent we already re-homed away from
        self._last_parent_ack[parent] = self.sim.now
        self._relogin_state.pop(parent, None)
        if not msg.known:
            # Parent restarted state-less: re-introduce ourselves to it
            # alone (the other parents still know us).
            self._login_to_parent(parent)

    # -- server-side query handling (the request-rarely-respond leaf) --------------

    def _on_query_server(self, msg: pr.QueryFile, src: str) -> None:
        """Answer only positively; silence is the negative (§III-B)."""
        assert self.xrootd is not None, "server cmsd needs its xrootd"
        if self.xrootd.fs.exists(msg.path):
            reply = pr.HaveFile(
                path=msg.path,
                hash_val=msg.hash_val,
                node=self.node_id.name,
                pending=False,
                write_capable=True,
            )
        elif self.xrootd.mss is not None and self.xrootd.mss.has(msg.path):
            reply = pr.HaveFile(
                path=msg.path,
                hash_val=msg.hash_val,
                node=self.node_id.name,
                pending=True,
                write_capable=True,
            )
        else:
            if self._obs is not None:
                # Silence IS the protocol's negative answer — the trace is
                # the only place it becomes a visible fact.
                self._obs.tracer.event(
                    msg.path, "server.silent", node=self.node_id.name
                )
            return
        self.stats.haves_sent += 1
        if self._obs is not None:
            self._obs.tracer.event(
                msg.path, "server.have", node=self.node_id.name, pending=reply.pending
            )
        self._send(src, reply)

    def _advertise_new_file(self, path: str) -> None:
        """Unsolicited HaveFile to all parents after a local create."""
        msg = pr.HaveFile(
            path=path,
            hash_val=hash_name(path),
            node=self.node_id.name,
            pending=False,
            write_capable=True,
        )
        for parent in self.parents:
            self._send(cmsd_host(parent), msg)
            self.stats.haves_sent += 1

    # -- supervisor/manager logic ---------------------------------------------------

    def _flood_queries(
        self, obj, path: str, hash_val: int, mode: str, *, refresh: bool = False
    ) -> None:
        """Send QueryFile to every *online* server in V_q; V_q keeps the
        unreachable remainder (resolution step 6)."""
        targets = obj.v_q & self.membership.v_online
        if not targets:
            return
        self._query_serial += 1
        q = pr.QueryFile(
            path=path,
            hash_val=hash_val,
            mode=mode,
            serial=self._query_serial,
            refresh=refresh,
        )
        fanout = 0
        for slot in bitvec.iter_bits(targets):
            name = self.membership.server_name(slot)
            if name is not None:
                self._send(cmsd_host(name), q)
                self.stats.queries_sent += 1
                fanout += 1
        if self._obs is not None and fanout:
            self._m_queries.inc(fanout)
            self._obs.tracer.event(path, "query.flood", node=self.node_id.name, fanout=fanout)
        obj.v_q &= ~targets & bitvec.FULL_MASK

    def _enqueue_waiter(self, obj, mode: str, payload, path: str = "") -> bool:
        outcome = self.rq.add_waiter(
            obj, mode, payload, self.sim.now, window=self._fast_window()
        )
        if outcome.accepted and outcome.queue_was_empty:
            self._wake_response_clock()
        if not outcome.accepted:
            # Anchor exhaustion: this client just got condemned to the full
            # conservative delay.  Make the pressure visible.
            self.stats.rq_rejected += 1
            if self._obs is not None and path:
                self._obs.tracer.event(path, "rq.rejected", node=self.node_id.name)
        return outcome.accepted

    def _candidates(
        self, obj, avoid: tuple[str, ...], client_site: str = ""
    ) -> tuple[int, bool]:
        """Selectable (online) holders, preferring V_h over V_p.

        Returns (vector, pending) after excluding avoided node names.  With
        locality awareness enabled and a known client site, holders at that
        site are preferred when any exist (extension; see CmsdConfig).
        """
        avoid_mask = 0
        for name in avoid:
            slot = self.membership.slot_of(name)
            if slot is not None:
                avoid_mask |= bitvec.bit(slot)
        usable = ~avoid_mask & self.membership.v_online & bitvec.FULL_MASK
        holders = obj.v_h & usable
        if holders:
            return self._prefer_local(holders, client_site), False
        preparing = obj.v_p & usable
        if preparing:
            return self._prefer_local(preparing, client_site), True
        return 0, False

    def _prefer_local(self, candidates: int, client_site: str) -> int:
        if not self.config.locality_aware or not client_site:
            return candidates
        local = 0
        for slot in bitvec.iter_bits(candidates):
            info = self.children.get(self.membership.server_name(slot) or "")
            if info is not None and info.site == client_site:
                local |= bitvec.bit(slot)
        return local or candidates

    def _redirect(self, msg: pr.Locate, slot: int, pending: bool) -> None:
        name = self.membership.server_name(slot)
        info = self.children.get(name)
        role = info.role.value if info is not None else Role.SERVER.value
        self._send(
            msg.reply_to,
            pr.Redirect(msg.req_id, msg.path, target=name, target_role=role, pending=pending),
        )
        self.stats.redirects += 1
        if self._obs is not None:
            self._m_redirects.inc()

    def _send_wait(self, msg: pr.Locate) -> None:
        self._send(msg.reply_to, pr.Wait(msg.req_id, msg.path, self.config.full_delay))
        self.stats.waits_sent += 1
        if self._obs is not None:
            self._m_waits.inc()

    def _on_locate(self, msg: pr.Locate) -> None:
        """Handle a client Locate; the traced wrapper around the resolution.

        When observability is on, the whole dispatch becomes one
        ``cmsd.locate`` span on the client's resolution trace, tagged with
        the verdict this cmsd reached (redirect / enqueued / wait-full /
        notfound / create-redirect).
        """
        obs = self._obs
        if obs is None:
            self._do_locate(msg)
            return
        self._m_locates.inc()
        trace = obs.tracer.active(msg.path)
        span = (
            trace.begin("cmsd.locate", obs.now(), node=self.node_id.name, refresh=msg.refresh)
            if trace is not None
            else None
        )
        outcome = self._do_locate(msg)
        if span is not None:
            trace.end(span, obs.now(), outcome=outcome)

    def _do_locate(self, msg: pr.Locate) -> str:
        self.stats.locates += 1
        now = self.sim.now
        if msg.refresh:
            existing, _ = self.cache.lookup(msg.path, now, add=False)
            if existing is not None:
                self.cache.refresh(existing, now)
                self.stats.refreshes += 1
        ref, _is_new = self.cache.lookup(msg.path, now)
        obj = ref.get()
        mode = AccessMode.WRITE if msg.create or msg.mode == AccessMode.WRITE else AccessMode.READ

        # Step 3: somebody already has it -> redirect (even for creates:
        # the open-with-create will fail there with 'exists', the honest
        # POSIX outcome).
        candidates, pending = self._candidates(obj, msg.avoid, msg.client_site)
        if candidates:
            policy = self.config.read_policy
            slot = policy.choose(candidates, self.metrics)
            self._redirect(msg, slot, pending)
            return "redirect"

        # Steps 1/5/6: flood whoever still needs asking, under the
        # deadline-based single-querier rule (§III-C2).
        if self.deadline.i_should_query(obj, now):
            self.deadline.arm(obj, now)
            self._flood_queries(obj, msg.path, ref.hash_val, mode, refresh=msg.refresh)
        elif not self.config.deadline_sync and self.deadline.active(obj, now):
            # Ablation: with synchronization off, this thread cannot tell a
            # flood is already in flight, so it re-queries every eligible
            # server itself — the duplicated work the deadline exists to
            # prevent.
            obj.v_q = self.membership.eligible(msg.path)
            self.deadline.arm(obj, now)
            self._flood_queries(obj, msg.path, ref.hash_val, mode, refresh=msg.refresh)

        if self.deadline.active(obj, now):
            # Queries (ours or another thread's) may still be answered:
            # wait on the fast response queue (steps 2/4) — unless the
            # fast-response ablation is on, in which case the client simply
            # eats the full conservative delay.
            if not self.config.fast_response:
                self._send_wait(msg)
                return "wait-full"
            payload = _ClientWaiter(
                msg.reply_to, msg.req_id, msg.path, msg.create, span=self._open_wait_span(msg.path)
            )
            if not self._enqueue_waiter(obj, mode, payload, msg.path):
                self._close_wait_span(payload.span, outcome="rejected")
                self._send_wait(msg)
                return "wait-full-rejected"
            return "enqueued"

        # Deadline passed and nothing turned up: the file does not exist
        # anywhere below us.
        if msg.create:
            return self._place_create(msg, obj)
        self._send(msg.reply_to, pr.NotFound(msg.req_id, msg.path))
        self.stats.notfounds += 1
        if self._obs is not None:
            self._m_notfounds.inc()
        return "notfound"

    def _open_wait_span(self, path: str):
        """Open an async ``rq.wait`` span on the active trace for *path*."""
        if self._obs is None:
            return None
        trace = self._obs.tracer.active(path)
        if trace is None:
            return None
        return trace.open_span("rq.wait", self._obs.now(), node=self.node_id.name)

    def _close_wait_span(self, span, *, outcome: str) -> None:
        if span is not None:
            span.end = self._obs.now()
            span.attrs["outcome"] = outcome

    def _place_create(self, msg: pr.Locate, obj) -> str:
        """Pick a node for a brand-new file (non-existence now confirmed)."""
        eligible = self.membership.eligible(msg.path) & self.membership.v_online
        avoid_mask = 0
        for name in msg.avoid:
            slot = self.membership.slot_of(name)
            if slot is not None:
                avoid_mask |= bitvec.bit(slot)
        eligible &= ~avoid_mask & bitvec.FULL_MASK
        if not eligible:
            self._send(msg.reply_to, pr.NotFound(msg.req_id, msg.path))
            self.stats.notfounds += 1
            if self._obs is not None:
                self._m_notfounds.inc()
            return "notfound"
        slot = self.config.create_policy.choose(eligible, self.metrics)
        self._redirect(msg, slot, pending=False)
        return "create-redirect"

    def _on_prepare(self, msg: pr.Prepare) -> None:
        """Spawn the parallel background look-ups of §III-B2.

        Each path is processed exactly like a cold Locate, minus any client
        to answer: flood now, let responses populate the cache.  The
        client's later individual requests then hit warm (or
        deadline-expired) objects.
        """
        self.stats.prepares += 1
        now = self.sim.now
        for path in msg.paths:
            ref, _ = self.cache.lookup(path, now)
            obj = ref.get()
            if self.deadline.i_should_query(obj, now):
                self.deadline.arm(obj, now)
                self._flood_queries(obj, path, ref.hash_val, AccessMode.READ)
        self._send(msg.reply_to, pr.PrepareAck(msg.req_id, scheduled=len(msg.paths)))

    def _on_query_supervisor(self, msg: pr.QueryFile, src: str) -> None:
        """A parent asks us; answer from cache or flood our own children.

        This is where response compression happens: however many of our
        children respond, the parent receives at most one HaveFile naming
        *us*.
        """
        now = self.sim.now
        if self._obs is not None:
            self._obs.tracer.event(msg.path, "supervisor.query", node=self.node_id.name)
        if msg.refresh:
            existing, _ = self.cache.lookup(msg.path, now, add=False)
            if existing is not None:
                # Propagated §III-C1 refresh: forget the aggregate we told
                # the parent before (it may rest on queries that never
                # arrived) and re-derive it from our own children.
                self.cache.refresh(existing, now)
                self.stats.refreshes += 1
        ref, _ = self.cache.lookup(msg.path, now)
        obj = ref.get()
        if obj.v_h & self.membership.v_online:
            self._send_have_up(src, msg.path, msg.hash_val, pending=False)
            return
        if obj.v_p & self.membership.v_online:
            self._send_have_up(src, msg.path, msg.hash_val, pending=True)
            return
        if self.deadline.i_should_query(obj, now):
            self.deadline.arm(obj, now)
            self._flood_queries(obj, msg.path, msg.hash_val, msg.mode, refresh=msg.refresh)
        if self.deadline.active(obj, now):
            payload = _ParentWaiter(parent_host=src, path=msg.path, hash_val=msg.hash_val)
            self._enqueue_waiter(obj, AccessMode.READ, payload, msg.path)
        # Deadline passed and empty: stay silent — that IS the answer.

    def _send_have_up(self, parent_host: str, path: str, hash_val: int, *, pending: bool) -> None:
        self._send(
            parent_host,
            pr.HaveFile(
                path=path,
                hash_val=hash_val,
                node=self.node_id.name,
                pending=pending,
                write_capable=True,
            ),
        )
        self.stats.haves_sent += 1

    def _on_have(self, msg: pr.HaveFile, sent_at: float = 0.0) -> None:
        """A subordinate reported holding the file: update cache, release
        every waiter the fast response queue holds for it (§III-B1) — and
        every waiter *parked* after its window expired (late-response
        reconciliation): a slow-link answer beats the full delay instead of
        evaporating."""
        now = self.sim.now
        self.stats.haves_received += 1
        if self._obs is not None:
            self._m_haves_rx.inc()
            self._obs.tracer.event(
                msg.path, "have.received", node=self.node_id.name, holder=msg.node
            )
        self._observe_peer(msg.node, 2.0 * (now - sent_at))
        slot = self.membership.slot_of(msg.node)
        if slot is None:
            return  # responder was dropped while the answer was in flight
        prior_ref, _ = self.cache.lookup(msg.path, now, add=False)
        prior_known = prior_ref is not None and (
            prior_ref.get().v_h | prior_ref.get().v_p
        ) != 0
        obj = self.cache.update_holder(msg.path, msg.hash_val, slot, pending=msg.pending)
        if obj is not None and self.deadline.active(obj, now):
            # Full query->response latency (epoch arm to answer arrival) is
            # a direct RTT sample for the responder — the very delay an
            # adaptive window must cover.
            self._observe_peer(msg.node, now - (obj.deadline - self.deadline.full_delay))
        released = (
            []
            if obj is None
            else self.rq.on_response(obj, slot, write_capable=msg.write_capable, now=now)
        )
        late = (
            []
            if obj is None
            else self.rq.on_late_response(obj, slot, write_capable=msg.write_capable, now=now)
        )
        if self.sanitizer is not None:
            # Mutation batch just completed: vectors changed and (possibly)
            # an anchor was reclaimed — check both sides of the coupling.
            if obj is not None:
                self.sanitizer.check_object(obj)
            self.sanitizer.check_queue(self.rq)
        answered_parents = {
            w.payload.parent_host
            for w in released + late
            if isinstance(w.payload, _ParentWaiter)
        }
        # Forward one compressed advisory to parents not already answered via
        # the response queue — but only when this response is *news* (we had
        # no known holder).  Suppressing the rest is exactly the response
        # compression of §II-B2: N child answers, at most one message up.
        if not prior_known:
            for parent in self.parents:
                phost = cmsd_host(parent)
                if phost not in answered_parents:
                    self._send_have_up(phost, msg.path, msg.hash_val, pending=msg.pending)
        if obj is None or not (released or late):
            return
        self.stats.fast_released += len(released)
        self.stats.late_released += len(late)
        if self._obs is not None:
            if released:
                self._m_fast_released.inc(len(released))
            if late:
                self._obs.tracer.event(
                    msg.path,
                    "rq.late_release",
                    node=self.node_id.name,
                    holder=msg.node,
                    waiters=len(late),
                )
        name = self.membership.server_name(slot)
        info = self.children.get(name)
        role = info.role.value if info is not None else Role.SERVER.value
        for waiter in released + late:
            payload = waiter.payload
            if isinstance(payload, _ClientWaiter):
                self._close_wait_span(payload.span, outcome="released")
                self.metrics.record_selection(slot)
                self._send(
                    payload.reply_to,
                    pr.Redirect(
                        payload.req_id,
                        payload.path,
                        target=name,
                        target_role=role,
                        pending=msg.pending,
                    ),
                )
                self.stats.redirects += 1
            elif isinstance(payload, _ParentWaiter):
                self._send_have_up(
                    payload.parent_host, payload.path, payload.hash_val, pending=msg.pending
                )
