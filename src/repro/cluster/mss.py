"""Simulated Mass Storage System (tape archive).

The paper's V_p vector exists because HEP sites front a tape archive with
disk servers: a requested file may be *offline* (only on tape) and must be
staged, which "is typically on the order of minutes" (§III-B2).  We model
the archive as a catalog of (path → size) plus a staging delay; a server
whose MSS holds a file answers queries with a *pending* response (→ V_p)
and completes the open only after the stage finishes.

One MSS instance may back many servers (a site archive) or one (a node-local
tape drive); the cluster builder decides.
"""

from __future__ import annotations

import random

from repro.sim.kernel import Event, Simulator
from repro.sim.latency import Fixed, LatencyModel

__all__ = ["MassStorage"]


class MassStorage:
    """A stage-on-demand archive with configurable staging latency."""

    def __init__(
        self,
        sim: Simulator,
        *,
        stage_latency: LatencyModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.sim = sim
        # Default 120 s: "order of minutes", scaled benches override it.
        self.stage_latency = stage_latency if stage_latency is not None else Fixed(120.0)
        self.rng = rng if rng is not None else random.Random(0)
        self._catalog: dict[str, int] = {}
        self._staging: dict[str, Event] = {}
        self.stages_started = 0
        self.stages_completed = 0

    def archive(self, path: str, size: int) -> None:
        """Register *path* as available on tape."""
        self._catalog[path] = size

    def has(self, path: str) -> bool:
        return path in self._catalog

    def size_of(self, path: str) -> int:
        return self._catalog[path]

    def stage(self, path: str) -> Event:
        """Begin (or join) staging *path*; the event fires when it is on disk.

        Concurrent requests for the same file share one stage operation —
        tape drives are precious.  The event's value is the file size.
        """
        if path not in self._catalog:
            raise KeyError(f"not archived: {path!r}")
        existing = self._staging.get(path)
        if existing is not None and not existing.processed:
            return existing
        done = Event(self.sim)
        self._staging[path] = done
        self.stages_started += 1

        def run():
            yield self.sim.sleep(self.stage_latency.sample(self.rng))
            self.stages_completed += 1
            done.succeed(self._catalog[path])

        self.sim.process(run(), name=f"stage:{path}")
        return done

    def catalog_paths(self) -> list[str]:
        return sorted(self._catalog)
