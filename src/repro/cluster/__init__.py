"""The simulated Scalla cluster: nodes, daemons, protocol, and facade.

Layers (bottom-up): per-server filesystem and mass storage, the xrootd
data daemon, the cmsd cluster-management daemon wrapping
:mod:`repro.core`'s cache, the redirection-following client, the cnsd
global-namespace daemon, and the :class:`~repro.cluster.scalla.ScallaCluster`
facade that builds the 64-ary tree.
"""

from repro.cluster.client import (
    ClientConfig,
    ClientStats,
    ClusterUnreachable,
    FileExists,
    NoSuchFile,
    OpenResult,
    ScallaClient,
    ScallaError,
)
from repro.cluster.cmsd import ChildInfo, Cmsd, CmsdConfig, CmsdStats
from repro.cluster.cnsd import CNSD_HOST, CnsDaemon
from repro.cluster.fs import FileData, FSError, ServerFS
from repro.cluster.ids import NodeId, Role, cmsd_host, xrootd_host
from repro.cluster.mss import MassStorage
from repro.cluster.node import ScallaNode
from repro.cluster.posix import DirEntry, PosixView
from repro.cluster.scalla import ScallaCluster, ScallaConfig
from repro.cluster.topology import FANOUT, NodeSpec, Topology, build_topology
from repro.cluster.xrootd import XrootdConfig, XrootdServer

__all__ = [
    "ScallaCluster",
    "ScallaConfig",
    "ScallaClient",
    "ClientConfig",
    "ClientStats",
    "OpenResult",
    "ScallaError",
    "NoSuchFile",
    "FileExists",
    "ClusterUnreachable",
    "Cmsd",
    "CmsdConfig",
    "CmsdStats",
    "ChildInfo",
    "CnsDaemon",
    "CNSD_HOST",
    "ServerFS",
    "FileData",
    "FSError",
    "NodeId",
    "Role",
    "cmsd_host",
    "xrootd_host",
    "MassStorage",
    "ScallaNode",
    "PosixView",
    "DirEntry",
    "Topology",
    "NodeSpec",
    "build_topology",
    "FANOUT",
    "XrootdServer",
    "XrootdConfig",
]
