"""The Cluster Name Space daemon (cnsd).

Scalla deliberately omits cluster-wide ``ls`` from the low-latency path;
footnote 3 of the paper notes full POSIX semantics are provided by a
separate Cluster Name Space daemon (plus FUSE).  This module is that
daemon: servers push ``NamespaceUpdate`` notifications on create/remove,
and the cnsd maintains an eventually-consistent global view that can be
listed by prefix — off the critical path, exactly as designed.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cluster import protocol as pr
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network

__all__ = ["CnsDaemon", "CNSD_HOST"]

CNSD_HOST = "cnsd"


class CnsDaemon:
    """Global namespace aggregator."""

    def __init__(self, sim: Simulator, network: Network, host_name: str = CNSD_HOST) -> None:
        self.sim = sim
        self.network = network
        self.host = network.add_host(host_name)
        #: path -> node names currently holding a copy.
        self._holders: dict[str, set[str]] = defaultdict(set)
        self.updates = 0
        self._proc: Process | None = None

    def start(self) -> None:
        self._proc = self.sim.process(self._main_loop(), name="cnsd")

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.interrupt("stop")
            self._proc = None

    def _main_loop(self):
        while True:
            env = yield self.host.inbox.get()
            msg = env.payload
            if isinstance(msg, pr.NamespaceUpdate):
                self.apply(msg.node, msg.path, msg.op)
            elif isinstance(msg, pr.List):
                names = tuple(self.list(msg.prefix))
                reply = pr.ListAck(msg.req_id, names)
                self.network.send(
                    self.host.name, msg.reply_to, reply, size=pr.estimate_size(reply)
                )

    # -- namespace maintenance ----------------------------------------------------

    def apply(self, node: str, path: str, op: str) -> None:
        """Apply one update (also used out-of-band when populating clusters)."""
        self.updates += 1
        if op == "create":
            self._holders[path].add(node)
        elif op == "remove":
            holders = self._holders.get(path)
            if holders is not None:
                holders.discard(node)
                if not holders:
                    del self._holders[path]
        else:
            raise ValueError(f"unknown namespace op {op!r}")

    # -- queries -------------------------------------------------------------

    def list(self, prefix: str = "/") -> list[str]:
        """Sorted global listing under *prefix* — the ls Scalla itself
        refuses to do on the fast path."""
        return sorted(p for p in self._holders if p.startswith(prefix))

    def holders(self, path: str) -> set[str]:
        return set(self._holders.get(path, ()))

    def file_count(self) -> int:
        return len(self._holders)
