"""Per-server in-memory filesystem.

"At a data server level, the namespace conforms to full POSIX semantics
since each data server uses the host's native file system" (§II-B4).  This
module is that native file system, reduced to what the experiments exercise:
hierarchical paths, create/read/write/remove/stat/list, and byte contents.

Contents are stored sparsely (dict of extents would be overkill — files here
are small synthetic payloads); reads of unwritten ranges return zero bytes,
like a sparse POSIX file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FileData", "ServerFS", "FSError"]


class FSError(Exception):
    """Filesystem operation failure (missing file, duplicate create...)."""


@dataclass
class FileData:
    """One stored file."""

    path: str
    data: bytearray = field(default_factory=bytearray)
    created_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.data)


class ServerFS:
    """A single data server's local store."""

    def __init__(self) -> None:
        self._files: dict[str, FileData] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def __len__(self) -> int:
        return len(self._files)

    def exists(self, path: str) -> bool:
        return path in self._files

    def create(self, path: str, now: float = 0.0) -> FileData:
        if not path.startswith("/"):
            raise FSError(f"path must be absolute: {path!r}")
        if path in self._files:
            raise FSError(f"file exists: {path!r}")
        f = FileData(path=path, created_at=now)
        self._files[path] = f
        return f

    def put(self, path: str, data: bytes, now: float = 0.0) -> FileData:
        """Create-or-replace with contents (cluster population helper)."""
        f = FileData(path=path, data=bytearray(data), created_at=now)
        self._files[path] = f
        return f

    def stat(self, path: str) -> FileData:
        try:
            return self._files[path]
        except KeyError:
            raise FSError(f"no such file: {path!r}") from None

    def read(self, path: str, offset: int, length: int) -> bytes:
        f = self.stat(path)
        if offset < 0 or length < 0:
            raise FSError("negative offset/length")
        chunk = bytes(f.data[offset : offset + length])
        # Sparse semantics: reads inside the file size but beyond written
        # data yield zeros; reads past EOF are short (POSIX).
        self.bytes_read += len(chunk)
        return chunk

    def write(self, path: str, offset: int, data: bytes) -> int:
        f = self.stat(path)
        if offset < 0:
            raise FSError("negative offset")
        end = offset + len(data)
        if end > len(f.data):
            f.data.extend(b"\x00" * (end - len(f.data)))
        f.data[offset:end] = data
        self.bytes_written += len(data)
        return len(data)

    def remove(self, path: str) -> None:
        if path not in self._files:
            raise FSError(f"no such file: {path!r}")
        del self._files[path]

    def list(self, prefix: str = "/") -> list[str]:
        """All paths under *prefix*, sorted (POSIX-ish directory walk)."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def paths(self) -> list[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())
