"""64-ary tree construction.

"Nodes ... are clustered in sets of 64 and the sets are arranged in a
64-ary tree" (§II-B1).  This module turns a server count into an explicit
tree of node specifications: one (or more, when replicated) manager at the
root, however many supervisor layers the count requires, and the data
servers at the leaves.

"Every node in the cluster can be replicated to provide an arbitrary level
of reliability" — we support the case that matters for availability
experiments: replicated managers, where every top-level subordinate logs
into all manager replicas and clients fail over between them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.ids import NodeId, Role

__all__ = ["NodeSpec", "Topology", "build_topology", "FANOUT"]

#: Paper-mandated cluster fanout.  Configurable for ablations only; the
#: 64-bit vectors in the cache genuinely cap it at 64.
FANOUT = 64


@dataclass
class NodeSpec:
    """One node in the tree (pre-instantiation)."""

    node_id: NodeId
    parents: tuple[str, ...]  # parent node names ("" level for managers)
    children: tuple[str, ...] = ()
    exports: tuple[str, ...] = ("/store",)
    #: Failover parents, in preference order: the parent's sibling
    #: supervisors first, then the grandparent level (managers at the
    #: top).  A subordinate whose parent goes silent past the re-login
    #: horizon re-homes to the first reachable standby instead of
    #: heartbeating into the void (§III-A4 treats the adoption as an
    #: ordinary "server added" membership event on the new parent).
    standbys: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.node_id.name

    @property
    def role(self) -> Role:
        return self.node_id.role


@dataclass
class Topology:
    """A validated tree of node specs."""

    nodes: dict[str, NodeSpec] = field(default_factory=dict)
    managers: tuple[str, ...] = ()
    fanout: int = FANOUT

    @property
    def servers(self) -> list[str]:
        return [n for n, s in self.nodes.items() if s.role is Role.SERVER]

    @property
    def supervisors(self) -> list[str]:
        return [n for n, s in self.nodes.items() if s.role is Role.SUPERVISOR]

    def depth(self) -> int:
        """Number of cmsd levels above the servers (1 = flat cluster)."""
        d = 0
        node = self.nodes[self.servers[0]]
        while node.parents:
            d += 1
            node = self.nodes[node.parents[0]]
        return d

    def validate(self) -> None:
        for name, spec in self.nodes.items():
            assert len(spec.children) <= self.fanout, (
                f"{name} has {len(spec.children)} children, fanout is {self.fanout}"
            )
            for child in spec.children:
                assert name in self.nodes[child].parents, f"{child} not linked to parent {name}"
            if spec.role is Role.SERVER:
                assert not spec.children, f"server {name} cannot have children"
            if spec.role is Role.MANAGER:
                assert not spec.parents, f"manager {name} cannot have parents"


def build_topology(
    n_servers: int,
    *,
    fanout: int = FANOUT,
    exports: tuple[str, ...] = ("/store",),
    manager_replicas: int = 1,
    managers: int | None = None,
) -> Topology:
    """Build the shallowest tree holding *n_servers* leaves.

    Levels are filled bottom-up: servers are grouped into sets of
    ``fanout``, each set under a supervisor, supervisor sets under further
    supervisors, until one set remains — that set's parent is the manager
    (replicated ``manager_replicas`` times; replicas share all
    subordinates).  ``managers=N`` is the preferred spelling of
    ``manager_replicas=N``: N shared-nothing peer managers that each
    receive every top-level login and unsolicited HaveFile advisory, so
    any one of them can serve clients while the others are down.

    Every interior node also gets a ``standbys`` list (see
    :class:`NodeSpec`) so its subtree can re-home when it dies.
    """
    if managers is not None:
        manager_replicas = managers
    if n_servers < 1:
        raise ValueError("need at least one server")
    if not 2 <= fanout <= FANOUT:
        raise ValueError(f"fanout must be in [2, {FANOUT}] (64-bit vectors)")
    if manager_replicas < 1:
        raise ValueError("need at least one manager")

    topo = Topology(fanout=fanout)
    manager_names = tuple(f"mgr{i}" for i in range(manager_replicas))
    topo.managers = manager_names

    # Current level being grouped, bottom-up.
    level_nodes = [f"srv{i:05d}" for i in range(n_servers)]
    for name in level_nodes:
        topo.nodes[name] = NodeSpec(
            node_id=NodeId(name, Role.SERVER), parents=(), exports=exports
        )

    depth = 0
    while len(level_nodes) > fanout:
        depth += 1
        groups = [level_nodes[i : i + fanout] for i in range(0, len(level_nodes), fanout)]
        next_level = []
        for gi, group in enumerate(groups):
            sup_name = f"sup{depth}-{gi:04d}"
            topo.nodes[sup_name] = NodeSpec(
                node_id=NodeId(sup_name, Role.SUPERVISOR),
                parents=(),
                children=tuple(group),
                exports=exports,
            )
            for child in group:
                topo.nodes[child].parents = (sup_name,)
            next_level.append(sup_name)
        level_nodes = next_level

    for mname in manager_names:
        topo.nodes[mname] = NodeSpec(
            node_id=NodeId(mname, Role.MANAGER),
            parents=(),
            children=tuple(level_nodes),
            exports=exports,
        )
    for child in level_nodes:
        topo.nodes[child].parents = manager_names

    _assign_standbys(topo)
    topo.validate()
    return topo


def _assign_standbys(topo: Topology) -> None:
    """Compute per-node standby lists: parent's siblings, then grandparents.

    A top-level subordinate already logs into every manager, so its list is
    empty — there is nowhere else to go, and the capped-backoff re-login
    loop covers a manager restart instead.
    """
    for spec in topo.nodes.values():
        if not spec.parents:
            continue
        pool: list[str] = []
        grandparents: list[str] = []
        for p in spec.parents:
            pspec = topo.nodes[p]
            for gp in pspec.parents:
                for sib in topo.nodes[gp].children:
                    if sib != p and sib not in spec.parents and sib not in pool:
                        pool.append(sib)
                if gp not in spec.parents and gp not in grandparents:
                    grandparents.append(gp)
        for gp in grandparents:
            if gp not in pool:
                pool.append(gp)
        spec.standbys = tuple(pool)


def expected_depth(n_servers: int, fanout: int = FANOUT) -> int:
    """Closed-form depth for cross-checking: ceil(log_fanout(n))."""
    return max(1, math.ceil(math.log(n_servers, fanout))) if n_servers > 1 else 1
