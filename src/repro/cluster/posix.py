"""POSIX-style namespace view — footnote 3's higher-level layer.

Scalla's fast path deliberately omits semantics that conflict with low
latency, notably "an ls-type function across all nodes in a cluster"
(§II-B4).  Footnote 3: "full POSIX semantics can be implemented in higher
level functions ... with a Cluster Name Space daemon and the Linux FUSE
file system."

:class:`PosixView` is that higher level: a directory-tree lens over the
cnsd's flat global namespace plus Scalla-routed data operations.  It is
what a FUSE mount would call into; exposing it as an actual kernel mount is
out of scope (no kernel here), but every operation a FUSE handler needs —
``listdir``, ``stat``, ``walk``, ``read_file``, ``write_file``, ``unlink``
— is provided, with listings answered *off* the cluster's fast path, by the
cnsd, exactly as designed.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass

from repro.cluster.client import NoSuchFile, ScallaClient
from repro.cluster.cnsd import CnsDaemon

__all__ = ["DirEntry", "PosixView"]


@dataclass(frozen=True)
class DirEntry:
    """One ``listdir`` result."""

    name: str
    is_dir: bool


class PosixView:
    """Directory-tree semantics over (cnsd namespace, Scalla data plane).

    Directories are implicit (they exist iff some file lives under them),
    matching how the flat prefix namespace really behaves; asking for a
    directory listing never touches a manager or data server.
    """

    def __init__(self, cnsd: CnsDaemon, client: ScallaClient) -> None:
        self.cnsd = cnsd
        self.client = client

    # -- namespace (cnsd-backed, off the fast path) ------------------------------

    def listdir(self, directory: str) -> list[DirEntry]:
        """Immediate children of *directory*, files and subdirectories."""
        prefix = directory.rstrip("/") + "/"
        if prefix == "//":
            prefix = "/"
        files: set[str] = set()
        dirs: set[str] = set()
        for path in self.cnsd.list(prefix):
            rest = path[len(prefix):]
            if not rest:
                continue
            head, sep, _tail = rest.partition("/")
            (dirs if sep else files).add(head)
        return sorted(
            [DirEntry(d, True) for d in sorted(dirs)] + [DirEntry(f, False) for f in sorted(files)],
            key=lambda e: e.name,
        )

    def exists(self, path: str) -> bool:
        """True for a known file or an implicit directory."""
        if self.cnsd.holders(path):
            return True
        return bool(self.cnsd.list(path.rstrip("/") + "/"))

    def isdir(self, path: str) -> bool:
        return not self.cnsd.holders(path) and bool(self.cnsd.list(path.rstrip("/") + "/"))

    def walk(self, top: str):
        """Yield ``(dirpath, dirnames, filenames)`` like :func:`os.walk`."""
        entries = self.listdir(top)
        dirnames = [e.name for e in entries if e.is_dir]
        filenames = [e.name for e in entries if not e.is_dir]
        yield top, dirnames, filenames
        for d in dirnames:
            yield from self.walk(posixpath.join(top, d))

    def glob_count(self, prefix: str) -> int:
        """Number of files under *prefix* — the bulk query ls exists for."""
        return len(self.cnsd.list(prefix))

    # -- data plane (Scalla-routed, coroutines) -----------------------------------

    def stat(self, path: str):
        """Coroutine: (exists, size) resolved through the cluster."""
        return (yield from self.client.stat(path))

    def read_file(self, path: str):
        """Coroutine: the file's full contents."""
        return (yield from self.client.fetch(path))

    def write_file(self, path: str, data: bytes):
        """Coroutine: create (or open) *path* and write *data* at offset 0."""
        try:
            res = yield from self.client.open(path, mode="w", create=True)
        except Exception:
            res = yield from self.client.open(path, mode="w")
        written = yield from self.client.write(res, 0, data)
        yield from self.client.close(res)
        return written

    def unlink(self, path: str):
        """Coroutine: remove one replica of *path*; False when absent."""
        try:
            return (yield from self.client.remove(path))
        except NoSuchFile:
            return False
