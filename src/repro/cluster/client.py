"""The redirection-following Scalla client.

Implements the client half of the protocol (§II-B2/B3 and §III-C1):

* contact a manager (failing over among replicas), follow ``Redirect``
  hops down through supervisors until a data server is reached, then open
  there;
* honour ``Wait`` verdicts by sleeping the indicated delay and retrying;
* on a failed open ("the client is vectored to a server that, in fact,
  cannot serve the requested file") reissue the locate with
  ``refresh=True`` and the failing host in ``avoid`` — the paper's general
  client recovery mechanism;
* ``prepare()`` for bulk pre-location (§III-B2).

All operations are generator coroutines to be driven by the simulator::

    result = sim.run_until_process(sim.process(client.open("/store/x")))
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster import protocol as pr
from repro.cluster.ids import Role, cmsd_host, xrootd_host
from repro.core.response_queue import AccessMode
from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = [
    "ClientConfig",
    "ClientStats",
    "OpenResult",
    "ScallaError",
    "NoSuchFile",
    "FileExists",
    "ClusterUnreachable",
    "ScallaClient",
]


class ScallaError(Exception):
    """Base class for client-visible failures."""


class NoSuchFile(ScallaError):
    """The cluster confirmed (after the full wait) the file exists nowhere."""


class FileExists(ScallaError):
    """Create failed: some server already holds the file."""


class ClusterUnreachable(ScallaError):
    """No manager replica answered within the failover budget."""


@dataclass
class ClientConfig:
    #: Per-request response timeout before failing over to another manager.
    locate_timeout: float = 2.0
    #: Data-plane response timeout (server death detection).
    op_timeout: float = 2.0
    #: Open timeout when the target is still staging the file from an MSS.
    #: Staging legitimately takes minutes — but it must stay *finite*: a
    #: server crashing mid-stage would otherwise strand the client on the
    #: old 1e6 s sentinel instead of entering the recovery loop.
    pending_open_timeout: float = 300.0
    #: Redirect-hop budget per open (tree depth is <= 4 in practice).
    max_hops: int = 16
    #: Wait/retry budget per open.
    max_retries: int = 10
    #: Full manager failover cycles before giving up.
    max_failover_cycles: int = 3
    #: Base delay for the exponential backoff between *consecutive*
    #: manager failovers.  The first rotation in a streak is immediate —
    #: the timeout that triggered it already cost seconds, and with a
    #: healthy replica next in line an extra sleep is pure added latency.
    failover_backoff: float = 0.25
    #: Cap on the failover backoff delay.
    failover_backoff_cap: float = 2.0
    #: Jitter fraction on failover backoff (decorrelates a client herd
    #: cycling through the same dead manager list in lockstep).
    failover_jitter: float = 0.25


@dataclass
class ClientStats:
    locates: int = 0
    redirects: int = 0
    waits: int = 0
    refreshes: int = 0
    failovers: int = 0
    opens: int = 0


@dataclass
class OpenResult:
    """A successfully opened file."""

    path: str
    node: str  # data-server node name
    handle: int
    size: int
    latency: float  # first locate to OpenAck, in simulated seconds
    redirects: int
    waits: int


class ScallaClient:
    """One analysis client (one Root job, one Qserv master channel, ...)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        managers: tuple[str, ...],
        *,
        config: ClientConfig | None = None,
        rng: random.Random | None = None,
        obs=None,
    ) -> None:
        if not managers:
            raise ValueError("need at least one manager")
        self.sim = sim
        self.network = network
        self.name = name
        self.managers = managers
        self.config = config if config is not None else ClientConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.host = network.add_host(name)
        self.stats = ClientStats()
        # Observability (repro.obs): the client is where a resolution
        # trace is born (locate issued) and where it dies (verdict known).
        self._obs = obs
        if obs is not None:
            m = obs.metrics
            self._m_locates = m.counter("client_locates_total", node=name)
            self._m_redirects = m.counter("client_redirects_total", node=name)
            self._m_waits = m.counter("client_waits_total", node=name)
            self._m_opens = m.counter("client_opens_total", node=name)
            self._m_failovers = m.counter("failovers_total", node=name)
            self._m_resolve = m.histogram("client_resolve_seconds", node=name)
        self._next_req = 1
        self._pending: dict[int, object] = {}
        self._proc = sim.process(self._inbox_loop(), name=f"client:{name}")
        self._manager_idx = 0

    # -- plumbing ---------------------------------------------------------

    def _inbox_loop(self):
        while True:
            env = yield self.host.inbox.get()
            req_id = getattr(env.payload, "req_id", None)
            ev = self._pending.pop(req_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed(env.payload)

    def _request(self, to_host: str, msg, timeout: float):
        """Send *msg*, wait for its reply or *timeout*; returns reply or None."""
        ev = self.sim.event()
        self._pending[msg.req_id] = ev
        self.network.send(self.host.name, to_host, msg, size=pr.estimate_size(msg))
        yield self.sim.any_of([ev, self.sim.timeout(timeout)])
        if ev.triggered:
            return ev.value
        self._pending.pop(msg.req_id, None)
        return None

    def _req_id(self) -> int:
        rid = self._next_req
        self._next_req += 1
        return rid

    def _current_manager_cmsd(self) -> str:
        return cmsd_host(self.managers[self._manager_idx])

    def _failover(self, streak: int = 0):
        """Rotate to the next manager replica; generator.

        *streak* is how many consecutive failovers preceded this one: 0
        rotates immediately, anything higher sleeps a capped, jittered
        exponential backoff first — when *every* replica is dark, the
        client should probe gently instead of spinning through the list
        at timeout speed.
        """
        self._manager_idx = (self._manager_idx + 1) % len(self.managers)
        self.stats.failovers += 1
        if self._obs is not None:
            self._m_failovers.inc()
            self._obs.tracer.cluster_event(
                "client.mgr_failover",
                client=self.name,
                manager=self.managers[self._manager_idx],
                streak=streak,
            )
        if streak > 0:
            delay = min(
                self.config.failover_backoff_cap,
                self.config.failover_backoff * (2.0 ** (streak - 1)),
            )
            delay *= 1.0 + self.config.failover_jitter * self.rng.random()
            yield self.sim.sleep(delay)

    # -- the protocol ---------------------------------------------------------

    def locate(self, path: str, *, mode: str = AccessMode.READ, create: bool = False):
        """Resolve *path* to a data-server node name (follows supervisors).

        Generator; returns ``(node_name, pending)``.  Raises
        :class:`NoSuchFile` / :class:`ClusterUnreachable`.
        """
        node, pending, _, _ = yield from self._locate_full(path, mode, create, False, ())
        return node, pending

    def _locate_full(self, path, mode, create, refresh, avoid):
        """One full resolution walk, wrapped in a resolution trace."""
        obs = self._obs
        if obs is None:
            return (yield from self._locate_walk(path, mode, create, refresh, avoid, None))
        self._m_locates.inc()
        trace = obs.tracer.start(path, client=self.name, mode=mode, create=create)
        t0 = obs.now()
        try:
            result = yield from self._locate_walk(path, mode, create, refresh, avoid, trace)
        except BaseException as exc:
            obs.tracer.finish(trace, outcome=type(exc).__name__)
            raise
        self._m_resolve.record(obs.now() - t0)
        obs.tracer.finish(
            trace, outcome="resolved", server=result[0], redirects=result[2], waits=result[3]
        )
        return result

    def _locate_walk(self, path, mode, create, refresh, avoid, trace):
        contact = self._current_manager_cmsd()
        at_manager = True
        redirects = waits = 0
        timeouts = 0
        retries = 0
        #: Consecutive fruitless full-delay Waits at one interior node.
        interior_waits = 0
        #: A verdict that arrived *during* a watched Wait (late-response
        #: reconciliation) — processed on the next loop pass in place of a
        #: fresh Locate.
        early_resp = None
        while True:
            if early_resp is not None:
                resp, early_resp = early_resp, None
            else:
                msg = pr.Locate(
                    req_id=self._req_id(),
                    reply_to=self.host.name,
                    path=path,
                    mode=mode,
                    create=create,
                    refresh=refresh and at_manager,
                    avoid=tuple(avoid),
                    client_site=self.network.site_of(self.host.name) or "",
                )
                self.stats.locates += 1
                # A refresh is a one-shot directive: re-sending it on every
                # Wait-retry would reset the query deadline each time and spin
                # forever on a genuinely deleted file.
                refresh = False
                resp = yield from self._request(contact, msg, self.config.locate_timeout)
            if resp is None:
                timeouts += 1
                if timeouts > self.config.max_failover_cycles * len(self.managers):
                    raise ClusterUnreachable(f"no manager answered for {path!r}")
                yield from self._failover(timeouts - 1)
                contact = self._current_manager_cmsd()
                at_manager = True
                if trace is not None:
                    trace.event("client.mgr_failover", self._obs.now(), node=self.name)
                continue
            if isinstance(resp, pr.Redirect):
                redirects += 1
                interior_waits = 0
                self.stats.redirects += 1
                if trace is not None:
                    self._m_redirects.inc()
                    trace.event(
                        "client.redirect",
                        self._obs.now(),
                        node=self.name,
                        target=resp.target,
                        pending=resp.pending,
                    )
                if redirects > self.config.max_hops:
                    raise ScallaError(f"redirect loop resolving {path!r}")
                if resp.target_role == Role.SERVER.value:
                    return resp.target, resp.pending, redirects, waits
                # Interior node: re-issue the locate one level down.
                contact = cmsd_host(resp.target)
                at_manager = False
                refresh = False
                continue
            if isinstance(resp, pr.Wait):
                waits += 1
                self.stats.waits += 1
                if trace is not None:
                    self._m_waits.inc()
                    trace.event("client.wait", self._obs.now(), node=self.name, delay=resp.delay)
                retries += 1
                if retries > self.config.max_retries:
                    raise ScallaError(f"retry budget exhausted for {path!r}")
                if resp.watch:
                    # The sender parked our request for late-response
                    # reconciliation: keep the req_id registered so an
                    # unsolicited Redirect can cut the wait short.
                    ev = self.sim.event()
                    self._pending[msg.req_id] = ev
                    yield self.sim.any_of([ev, self.sim.timeout(resp.delay)])
                    if ev.triggered and isinstance(ev.value, (pr.Redirect, pr.NotFound)):
                        if trace is not None:
                            trace.event(
                                "client.late_release", self._obs.now(), node=self.name
                            )
                        early_resp = ev.value
                    else:
                        self._pending.pop(msg.req_id, None)
                else:
                    yield self.sim.sleep(resp.delay)
                if not at_manager:
                    # A subtree that makes us wait out a full epoch twice
                    # and still has nothing is the wrong subtree: the
                    # manager's aggregate pointing here is stale (its
                    # supervisor can't say "not below me" — silence is its
                    # only negative).  Restart from the top with a refresh,
                    # the same §III-C1 recovery used for mis-vectoring.
                    interior_waits += 1
                    if interior_waits >= 2:
                        interior_waits = 0
                        contact = self._current_manager_cmsd()
                        at_manager = True
                        refresh = True
                continue
            if isinstance(resp, pr.NotFound):
                if at_manager:
                    raise NoSuchFile(path)
                # A supervisor lost the file between our hops (timing edge,
                # §III-C1): restart from the top with a refresh.
                contact = self._current_manager_cmsd()
                at_manager = True
                refresh = True
                continue
            raise ScallaError(f"unexpected locate reply {resp!r}")

    def open(self, path: str, *, mode: str = AccessMode.READ, create: bool = False):
        """Open *path* somewhere in the cluster; returns :class:`OpenResult`.

        Generator.  Handles the full recovery loop: servers that fail the
        open get avoided and the locate is refreshed, per §III-C1.
        """
        start = self.sim.now
        avoid: list[str] = []
        refresh = False
        refreshed_notfound = False
        total_redirects = total_waits = 0
        fo_streak = 0
        for _attempt in range(self.config.max_retries):
            try:
                node, pending, redirects, waits = yield from self._locate_full(
                    path, mode, create, refresh, tuple(avoid)
                )
            except NoSuchFile:
                # A negative verdict can rest on queries the network ate
                # (silence is indistinguishable from "doesn't have it").
                # Verify it once with a refresh — the same §III-C1 recovery
                # used for mis-vectoring — before telling the caller.
                if refreshed_notfound:
                    raise
                refreshed_notfound = True
                self.stats.refreshes += 1
                refresh = True
                continue
            total_redirects += redirects
            total_waits += waits
            omsg = pr.Open(
                req_id=self._req_id(),
                reply_to=self.host.name,
                path=path,
                mode=mode,
                create=create,
            )
            resp = yield from self._request(xrootd_host(node), omsg, self._open_timeout(pending))
            if isinstance(resp, pr.OpenAck):
                self.stats.opens += 1
                if self._obs is not None:
                    self._m_opens.inc()
                return OpenResult(
                    path=path,
                    node=node,
                    handle=resp.handle,
                    size=resp.size,
                    latency=self.sim.now - start,
                    redirects=total_redirects,
                    waits=total_waits,
                )
            if isinstance(resp, pr.OpenFail) and resp.reason == "exists":
                raise FileExists(path)
            if resp is None:
                # Open timed out — the server (possibly mid-stage) is gone.
                # Rotate managers before re-locating: the redirect that sent
                # us here may reflect a manager's stale view of that host.
                yield from self._failover(fo_streak)
                fo_streak += 1
            else:
                fo_streak = 0
            # ENOENT, bad handle, or server death: general recovery — ask
            # for a cache refresh and avoid the failing host.
            self.stats.refreshes += 1
            refresh = True
            if node not in avoid:
                avoid.append(node)
        raise ScallaError(f"open retry budget exhausted for {path!r}")

    def _open_timeout(self, pending: bool) -> float:
        # A pending (staging) open legitimately takes minutes: wait longer
        # than the data-plane timeout, but never forever — the bounded wait
        # is what lets the §III-C1 recovery loop engage when the staging
        # server dies underneath us.
        return self.config.pending_open_timeout if pending else self.config.op_timeout

    # -- data-plane convenience -----------------------------------------------------

    def read(self, result: OpenResult, offset: int, length: int):
        """Generator; returns the bytes read."""
        msg = pr.Read(self._req_id(), self.host.name, result.handle, offset, length)
        resp = yield from self._request(xrootd_host(result.node), msg, self.config.op_timeout)
        if not isinstance(resp, pr.ReadAck):
            raise ScallaError(f"read failed on {result.node}: {resp!r}")
        return resp.data

    def write(self, result: OpenResult, offset: int, data: bytes):
        """Generator; returns bytes written."""
        msg = pr.Write(self._req_id(), self.host.name, result.handle, offset, data)
        resp = yield from self._request(xrootd_host(result.node), msg, self.config.op_timeout)
        if not isinstance(resp, pr.WriteAck):
            raise ScallaError(f"write failed on {result.node}: {resp!r}")
        return resp.written

    def close(self, result: OpenResult):
        """Generator; returns None."""
        msg = pr.Close(self._req_id(), self.host.name, result.handle)
        resp = yield from self._request(xrootd_host(result.node), msg, self.config.op_timeout)
        if not isinstance(resp, pr.CloseAck):
            raise ScallaError(f"close failed on {result.node}: {resp!r}")

    def stat(self, path: str):
        """Generator; returns (exists, size) resolved through the cluster."""
        try:
            node, _pending = yield from self.locate(path)
        except NoSuchFile:
            return False, 0
        msg = pr.Stat(self._req_id(), self.host.name, path)
        resp = yield from self._request(xrootd_host(node), msg, self.config.op_timeout)
        if not isinstance(resp, pr.StatAck):
            raise ScallaError(f"stat failed on {node}: {resp!r}")
        return resp.exists, resp.size

    def remove(self, path: str):
        """Generator; returns True when a copy was removed somewhere."""
        try:
            node, _pending = yield from self.locate(path)
        except NoSuchFile:
            return False
        msg = pr.Remove(self._req_id(), self.host.name, path)
        resp = yield from self._request(xrootd_host(node), msg, self.config.op_timeout)
        return isinstance(resp, pr.RemoveAck) and resp.removed

    def prepare(self, paths):
        """Generator; schedules background look-ups for *paths* (§III-B2)."""
        msg = pr.Prepare(self._req_id(), self.host.name, tuple(paths))
        resp = yield from self._request(
            self._current_manager_cmsd(), msg, self.config.locate_timeout
        )
        if not isinstance(resp, pr.PrepareAck):
            raise ScallaError(f"prepare failed: {resp!r}")
        return resp.scheduled

    def fetch(self, path: str, *, chunk: int = 1 << 20):
        """Generator; opens, reads the whole file, closes; returns bytes."""
        result = yield from self.open(path)
        data = bytearray()
        offset = 0
        while offset < result.size:
            part = yield from self.read(result, offset, min(chunk, result.size - offset))
            if not part:
                break
            data.extend(part)
            offset += len(part)
        yield from self.close(result)
        return bytes(data)
