"""A Scalla node: the xrootd + cmsd pair, with crash/restart lifecycle.

Restart semantics follow the paper's recoverability argument: daemon state
(the name cache, membership, response queue) is purely in-memory and is
**lost** on crash — a restarted node builds fresh daemons.  Only the
server's filesystem (disk) and MSS catalog survive, as they would in
reality.  "No permanent state information is maintained and whatever state
information is needed ... can be quickly constructed or reconstructed in
real time" (§VI).
"""

from __future__ import annotations

import random

from repro.cluster.cmsd import Cmsd, CmsdConfig
from repro.cluster.fs import ServerFS
from repro.cluster.ids import Role
from repro.cluster.mss import MassStorage
from repro.cluster.topology import NodeSpec
from repro.cluster.xrootd import XrootdConfig, XrootdServer
from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = ["ScallaNode"]


class ScallaNode:
    """Lifecycle wrapper around one node's daemons."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        spec: NodeSpec,
        *,
        cmsd_config: CmsdConfig,
        xrootd_config: XrootdConfig | None = None,
        mss: MassStorage | None = None,
        cnsd_host: str | None = None,
        rng: random.Random | None = None,
        obs=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.spec = spec
        self.cmsd_config = cmsd_config
        self.xrootd_config = xrootd_config if xrootd_config is not None else XrootdConfig()
        self.mss = mss
        self.cnsd_host = cnsd_host
        self.rng = rng if rng is not None else random.Random(0)
        #: Observability hub shared cluster-wide; survives crash/restart
        #: (metrics are per-node series, a rebooted daemon keeps counting).
        self.obs = obs

        # Persistent across restarts: the disk.
        self.fs = ServerFS() if spec.role is Role.SERVER else None

        # Network endpoints exist up front so crash/restart only toggles
        # liveness (names stay stable for everyone else).
        network.add_host(spec.node_id.cmsd)
        if spec.role is Role.SERVER:
            network.add_host(spec.node_id.xrootd)

        self.cmsd: Cmsd | None = None
        self.xrootd: XrootdServer | None = None
        self.instance = 0
        self.running = False

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def role(self) -> Role:
        return self.spec.role

    @property
    def current_parents(self) -> tuple[str, ...]:
        """The running cmsd's parent set — differs from ``spec.parents``
        after a re-home.  A crashed node forgets its adoption (in-memory
        state only) and boots back onto the static parents."""
        if self.running and self.cmsd is not None:
            return self.cmsd.parents
        return self.spec.parents

    def start(self) -> None:
        """Boot fresh daemons (in-memory state starts empty)."""
        if self.running:
            raise RuntimeError(f"{self.name} already running")
        # Stale messages delivered before a crash are gone after a reboot.
        self.network.host(self.spec.node_id.cmsd).inbox.drain()
        self.network.revive(self.spec.node_id.cmsd)
        if self.spec.role is Role.SERVER:
            self.network.host(self.spec.node_id.xrootd).inbox.drain()
            self.network.revive(self.spec.node_id.xrootd)
            self.xrootd = XrootdServer(
                self.sim,
                self.network,
                self.spec.node_id,
                self.fs,
                mss=self.mss,
                cnsd_host=self.cnsd_host,
                config=self.xrootd_config,
                rng=random.Random(self.rng.random()),
                obs=self.obs,
            )
            self.xrootd.start()
        self.cmsd = Cmsd(
            self.sim,
            self.network,
            self.spec.node_id,
            parents=self.spec.parents,
            standbys=self.spec.standbys,
            exports=self.spec.exports,
            xrootd=self.xrootd,
            config=self.cmsd_config,
            rng=random.Random(self.rng.random()),
            instance=self.instance,
            obs=self.obs,
        )
        self.cmsd.start()
        self.instance += 1
        self.running = True

    def crash(self) -> None:
        """Power loss: daemons die, hosts stop receiving."""
        if not self.running:
            return
        if self.cmsd is not None:
            self.cmsd.stop()
        if self.xrootd is not None:
            self.xrootd.stop()
        self.network.kill(self.spec.node_id.cmsd)
        if self.spec.role is Role.SERVER:
            self.network.kill(self.spec.node_id.xrootd)
        self.running = False

    def restart(self) -> None:
        """Crash recovery: bring fresh daemons up on the surviving disk."""
        if self.running:
            self.crash()
        self.start()
