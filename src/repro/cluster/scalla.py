"""The ScallaCluster facade: build, populate, and drive a whole cluster.

This is the top of the public API: one object that wires the simulator,
network, 64-ary tree of nodes, cnsd, and per-server mass storage together,
with the paper's latency constants as defaults.

Typical use::

    cluster = ScallaCluster(n_servers=64, config=ScallaConfig(seed=1))
    cluster.populate([f"/store/run1/f{i}.root" for i in range(100)])
    cluster.settle()

    client = cluster.client()
    data = cluster.run_process(client.fetch("/store/run1/f0.root"))
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace

from repro.cluster.client import ClientConfig, ScallaClient
from repro.cluster.cmsd import Cmsd, CmsdConfig
from repro.cluster.cnsd import CNSD_HOST, CnsDaemon
from repro.cluster.ids import Role
from repro.cluster.mss import MassStorage
from repro.cluster.node import ScallaNode
from repro.cluster.topology import Topology, build_topology
from repro.cluster.xrootd import XrootdConfig
from repro.obs import Observability
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.network import Network

__all__ = ["ScallaConfig", "ScallaCluster"]


def _sanitize_default() -> bool:
    """SimSan default: off, unless SCALLA_SANITIZE is set in the environment.

    The env hook lets the whole test suite run sanitized without touching a
    line of test code: ``SCALLA_SANITIZE=1 pytest`` (CI's determinism job
    does exactly that).
    """
    return os.environ.get("SCALLA_SANITIZE", "").lower() in ("1", "true", "yes", "on")


@dataclass
class ScallaConfig:
    """Cluster-wide tunables.

    Latency defaults model the paper's hardware: ~10 µs per LAN hop, ~80 µs
    of server-side query handling (so a query round trip lands at the
    paper's "servers respond within 100us"), 5 µs of manager CPU per
    message, 1 Gb/s data links.
    """

    exports: tuple[str, ...] = ("/store",)
    fanout: int = 64
    manager_replicas: int = 1
    #: Preferred spelling of ``manager_replicas``: N shared-nothing peer
    #: managers, each receiving every top-level login and HaveFile
    #: advisory.  Wins over ``manager_replicas`` when set.
    managers: int | None = None
    seed: int = 0

    #: One-way wire latency between any two hosts.
    network_latency: LatencyModel = field(default_factory=lambda: Fixed(10e-6))
    #: Manager/supervisor per-message processing cost.
    manager_service: LatencyModel = field(default_factory=lambda: Fixed(5e-6))
    #: Server cmsd per-message processing cost (query handling).
    server_service: LatencyModel = field(default_factory=lambda: Fixed(80e-6))
    #: xrootd per-request service time (open/read bookkeeping + seek).
    xrootd_service: LatencyModel = field(default_factory=lambda: Fixed(50e-6))
    #: Data transfer cost per byte (1 Gb/s ≈ 8 ns/byte).
    per_byte: float = 8e-9
    #: MSS staging time ("order of minutes"; tests shrink this).
    stage_latency: LatencyModel = field(default_factory=lambda: Fixed(120.0))

    full_delay: float = 5.0
    lifetime: float = 8 * 3600.0
    fast_period: float = 0.133
    heartbeat_interval: float = 1.0
    disconnect_timeout: float = 3.5
    drop_timeout: float = 600.0
    relogin_timeout: float = 3.5
    #: Supervisor failover: subordinates of a dead parent re-home to a
    #: standby (sibling supervisor, else grandparent/manager) instead of
    #: heartbeating into the void; see CmsdConfig.rehome.  False restores
    #: the seed behaviour (a crashed interior node strands its subtree).
    rehome: bool = True
    relogin_backoff_cap: float = 30.0
    relogin_jitter: float = 0.25
    #: Chaos injection (gray failures): probabilistic message loss,
    #: duplication, and delay spikes on every link; see
    #: :class:`repro.sim.network.ChaosConfig`.  None means no chaos and
    #: zero extra RNG draws — event streams stay bit-identical.
    chaos: "object | None" = None
    #: Ablation switches (benches E6/E10); see CmsdConfig.
    fast_response: bool = True
    deadline_sync: bool = True
    #: Extension: prefer same-site replicas when redirecting (see CmsdConfig).
    locality_aware: bool = False
    #: Extension (WAN federations): adaptive fast-response window sizing +
    #: bounded re-query; see CmsdConfig.adaptive_window.
    adaptive_window: bool = False
    window_rtt_mult: float = 3.0
    rtt_alpha: float = 0.25
    requery_limit: int = 1
    requery_backoff: float = 2.0
    #: Late-response reconciliation (see CmsdConfig.late_release).  False
    #: restores the seed behaviour where an answer arriving after the
    #: fast-response window helps nobody — kept as the E6-wan "before" row.
    late_release: bool = True
    #: Observability (repro.obs): when True the cluster carries one shared
    #: :class:`~repro.obs.Observability` hub — metrics on every daemon's
    #: hot path plus per-request resolution traces, all stamped with sim
    #: time.  Off by default: the uninstrumented path stays fast.
    observability: bool = False
    #: SimSan (repro.analysis.simsan): runtime invariant sweeps on every
    #: manager/supervisor cmsd.  Pure reads — turning it on costs time but
    #: changes no event stream.  Defaults from the SCALLA_SANITIZE env var.
    sanitize: bool = field(default_factory=_sanitize_default)

    client: ClientConfig = field(default_factory=ClientConfig)

    def cmsd_config(self, role: Role) -> CmsdConfig:
        service = self.server_service if role is Role.SERVER else self.manager_service
        return CmsdConfig(
            full_delay=self.full_delay,
            lifetime=self.lifetime,
            fast_period=self.fast_period,
            service_time=service,
            heartbeat_interval=self.heartbeat_interval,
            disconnect_timeout=self.disconnect_timeout,
            drop_timeout=self.drop_timeout,
            relogin_timeout=self.relogin_timeout,
            rehome=self.rehome,
            relogin_backoff_cap=self.relogin_backoff_cap,
            relogin_jitter=self.relogin_jitter,
            fast_response=self.fast_response,
            deadline_sync=self.deadline_sync,
            locality_aware=self.locality_aware,
            adaptive_window=self.adaptive_window,
            window_rtt_mult=self.window_rtt_mult,
            rtt_alpha=self.rtt_alpha,
            requery_limit=self.requery_limit,
            requery_backoff=self.requery_backoff,
            late_release=self.late_release,
            sanitize=self.sanitize,
        )

    def xrootd_config(self) -> XrootdConfig:
        return XrootdConfig(service_time=self.xrootd_service, per_byte=self.per_byte)


class ScallaCluster:
    """A fully wired simulated Scalla deployment."""

    def __init__(
        self,
        n_servers: int,
        *,
        config: ScallaConfig | None = None,
        start: bool = True,
    ) -> None:
        self.config = config if config is not None else ScallaConfig()
        self.sim = Simulator()
        self.obs: Observability | None = None
        if self.config.observability:
            self.obs = Observability()
            self.sim.attach_observability(self.obs)
        self.rng = random.Random(self.config.seed)
        self.network = Network(
            self.sim,
            default_latency=self.config.network_latency,
            rng=random.Random(self.rng.random()),
            chaos=self.config.chaos,
            obs=self.obs,
        )
        self.topology: Topology = build_topology(
            n_servers,
            fanout=self.config.fanout,
            exports=self.config.exports,
            manager_replicas=self.config.manager_replicas,
            managers=self.config.managers,
        )
        self.cnsd = CnsDaemon(self.sim, self.network)
        self.cnsd.start()

        self.nodes: dict[str, ScallaNode] = {}
        for name, spec in self.topology.nodes.items():
            mss = (
                MassStorage(
                    self.sim,
                    stage_latency=self.config.stage_latency,
                    rng=random.Random(self.rng.random()),
                )
                if spec.role is Role.SERVER
                else None
            )
            self.nodes[name] = ScallaNode(
                self.sim,
                self.network,
                spec,
                cmsd_config=self.config.cmsd_config(spec.role),
                xrootd_config=self.config.xrootd_config(),
                mss=mss,
                cnsd_host=CNSD_HOST,
                rng=random.Random(self.rng.random()),
                obs=self.obs,
            )
        self._clients = 0
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for node in self.nodes.values():
            if not node.running:
                node.start()

    def settle(self, duration: float = 0.01) -> None:
        """Run long enough for logins/acks to complete (LAN microseconds)."""
        self.sim.run(until=self.sim.now + duration)

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)

    def run_process(self, gen, *, limit: float | None = None):
        """Drive a client coroutine to completion; return its value."""
        return self.sim.run_until_process(self.sim.process(gen), limit=limit)

    def obs_snapshot(self, **kwargs) -> dict:
        """JSON-serializable metrics+traces snapshot (see repro.obs.export).

        Requires ``ScallaConfig(observability=True)``.
        """
        if self.obs is None:
            raise RuntimeError("observability is off; pass ScallaConfig(observability=True)")
        from repro.obs import export

        return export.snapshot(self.obs, **kwargs)

    # -- accessors ---------------------------------------------------------

    @property
    def managers(self) -> tuple[str, ...]:
        return self.topology.managers

    def node(self, name: str) -> ScallaNode:
        return self.nodes[name]

    def manager_cmsd(self, idx: int = 0) -> Cmsd:
        cmsd = self.nodes[self.managers[idx]].cmsd
        assert cmsd is not None
        return cmsd

    @property
    def servers(self) -> list[str]:
        return self.topology.servers

    def client(self, name: str | None = None, *, config: ClientConfig | None = None) -> ScallaClient:
        if name is None:
            name = f"client{self._clients:04d}"
        self._clients += 1
        return ScallaClient(
            self.sim,
            self.network,
            name,
            self.managers,
            config=config if config is not None else replace(self.config.client),
            rng=random.Random(self.rng.random()),
            obs=self.obs,
        )

    # -- data placement (out-of-band, like pre-existing disk contents) -------------

    def place(self, path: str, server: str, *, data: bytes | None = None, size: int = 1024) -> None:
        """Put *path* on *server*'s disk directly (no protocol traffic)."""
        node = self.nodes[server]
        if node.role is not Role.SERVER:
            raise ValueError(f"{server} is not a data server")
        node.fs.put(path, data if data is not None else b"\x00" * size, now=self.sim.now)
        self.cnsd.apply(server, path, "create")

    def archive(self, path: str, server: str, *, size: int = 1024) -> None:
        """Register *path* in *server*'s mass storage (offline file)."""
        node = self.nodes[server]
        if node.mss is None:
            raise ValueError(f"{server} has no MSS")
        node.mss.archive(path, size)

    def populate(
        self,
        paths,
        *,
        copies: int = 1,
        size: int = 1024,
        rng: random.Random | None = None,
    ) -> dict[str, list[str]]:
        """Spread *paths* over the data servers; returns path -> holders.

        Placement is round-robin with *copies* replicas each (random with
        an explicit *rng*), modelling a pre-loaded production federation.
        """
        servers = self.servers
        placement: dict[str, list[str]] = {}
        for i, path in enumerate(paths):
            if rng is None:
                chosen = [servers[(i + c) % len(servers)] for c in range(copies)]
            else:
                chosen = rng.sample(servers, min(copies, len(servers)))
            for s in chosen:
                self.place(path, s, size=size)
            placement[path] = chosen
        return placement
