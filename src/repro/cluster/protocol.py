"""Wire messages of the simulated Scalla protocol.

Plain dataclasses; the network treats them as opaque payloads.  Sizes (in
bytes) approximate the real cms/xroot protocol framing closely enough for
the registration-cost experiment (E11), where *what* is transmitted (path
prefixes vs full manifests) is the entire point.

Naming follows the paper: queries flood down, ``Have`` responses come back
only from holders (request-rarely-respond), clients get ``Redirect`` /
``Wait`` / ``NotFound`` verdicts exactly as xrootd's client protocol does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Login",
    "LoginAck",
    "Heartbeat",
    "HeartbeatAck",
    "QueryFile",
    "HaveFile",
    "Locate",
    "Redirect",
    "Wait",
    "NotFound",
    "Prepare",
    "PrepareAck",
    "Open",
    "OpenAck",
    "OpenFail",
    "Read",
    "ReadAck",
    "Write",
    "WriteAck",
    "Close",
    "CloseAck",
    "Stat",
    "StatAck",
    "Remove",
    "RemoveAck",
    "List",
    "ListAck",
    "NamespaceUpdate",
    "estimate_size",
]

# -- cmsd control plane -------------------------------------------------------


@dataclass(frozen=True)
class Login:
    """Subordinate cmsd announces itself to its parent.

    Carries only the exported path *prefixes* — never a file manifest.
    This is the design §V contrasts with GFS: "nodes need only identify
    path prefixes for their hosted data".
    """

    node: str  # node name (not host)
    role: str  # Role.value of the subordinate
    paths: tuple[str, ...]
    instance: int = 0  # restart counter, diagnostics only


@dataclass(frozen=True)
class LoginAck:
    slot: int


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness + metrics report from subordinate to parent.

    ``load`` and ``free_space`` feed the parent's selection policy
    (§II-B3's "load, selection frequency, space" criteria).
    """

    node: str
    load: float = 0.0
    free_space: float = 0.0
    site: str = ""


@dataclass(frozen=True)
class HeartbeatAck:
    """Parent's liveness reply; a run of missed acks makes the subordinate
    re-login, which is how a restarted (state-less) parent rebuilds its
    membership "within seconds" (§V)."""

    node: str
    known: bool  # False: parent does not know the sender -> re-login now


@dataclass(frozen=True)
class QueryFile:
    """Parent asks a subordinate whether it has *path* (flood, §II-B2)."""

    path: str
    hash_val: int  # streamed along so nobody rehashes (§III-B1)
    mode: str  # AccessMode.READ / .WRITE
    serial: int  # parent-side epoch, for diagnostics
    #: Client-initiated refresh (§III-C1), propagated down the tree: an
    #: interior node receiving it resets its cached entry before
    #: answering.  Without propagation a supervisor's stale negative —
    #: e.g. a query that was lost on the wire, leaving silence that looks
    #: exactly like "nobody has it" — would survive the manager's own
    #: refresh forever.
    refresh: bool = False


@dataclass(frozen=True)
class HaveFile:
    """Positive response: the sender has (or is preparing) *path*.

    Non-responses ARE the negative responses — there is no NotHave message
    anywhere in this protocol, by design.
    """

    path: str
    hash_val: int
    node: str
    pending: bool  # True: staging from MSS (goes to V_p, not V_h)
    write_capable: bool


# -- client-facing location plane ----------------------------------------------


@dataclass(frozen=True)
class Locate:
    """Client asks a manager/supervisor for a server holding *path*.

    ``refresh`` and ``avoid`` implement the recovery path of §III-C1: a
    client vectored to a server that failed reissues the request "asking
    for a cache refresh along with the name of the host that failed".
    ``create`` marks a new-file request, which needs the non-existence
    full wait (§III-B2).
    """

    req_id: int
    reply_to: str  # client's host
    path: str
    mode: str
    create: bool = False
    refresh: bool = False
    avoid: tuple[str, ...] = ()
    #: Requesting client's site, for locality-aware selection (extension:
    #: production cmsd derives this from the client's address).
    client_site: str = ""


@dataclass(frozen=True)
class Redirect:
    req_id: int
    path: str
    target: str  # node name to contact next
    target_role: str  # server -> open there; supervisor -> locate again
    pending: bool = False  # target is still staging the file


@dataclass(frozen=True)
class Wait:
    """Back off *delay* seconds and reissue the request.

    ``watch`` True means the sender parked this request for late-response
    reconciliation: a server answer landing after the fast-response window
    closed (slow WAN links, stragglers) may still turn into an unsolicited
    :class:`Redirect` under the *same* ``req_id``, so the client should
    keep listening while it waits instead of sleeping blind.  False is the
    paper's plain back-off (ablations, anchor exhaustion).
    """

    req_id: int
    path: str
    delay: float
    watch: bool = False


@dataclass(frozen=True)
class NotFound:
    req_id: int
    path: str


@dataclass(frozen=True)
class Prepare:
    """Bulk pre-location: spawn parallel background look-ups (§III-B2)."""

    req_id: int
    reply_to: str
    paths: tuple[str, ...]


@dataclass(frozen=True)
class PrepareAck:
    req_id: int
    scheduled: int


# -- xrootd data plane ---------------------------------------------------------


@dataclass(frozen=True)
class Open:
    req_id: int
    reply_to: str
    path: str
    mode: str
    create: bool = False


@dataclass(frozen=True)
class OpenAck:
    req_id: int
    handle: int
    size: int


@dataclass(frozen=True)
class OpenFail:
    req_id: int
    path: str
    reason: str


@dataclass(frozen=True)
class Read:
    req_id: int
    reply_to: str
    handle: int
    offset: int
    length: int


@dataclass(frozen=True)
class ReadAck:
    req_id: int
    data: bytes


@dataclass(frozen=True)
class Write:
    req_id: int
    reply_to: str
    handle: int
    offset: int
    data: bytes


@dataclass(frozen=True)
class WriteAck:
    req_id: int
    written: int


@dataclass(frozen=True)
class Close:
    req_id: int
    reply_to: str
    handle: int


@dataclass(frozen=True)
class CloseAck:
    req_id: int


@dataclass(frozen=True)
class Stat:
    req_id: int
    reply_to: str
    path: str


@dataclass(frozen=True)
class StatAck:
    req_id: int
    exists: bool
    size: int


@dataclass(frozen=True)
class Remove:
    req_id: int
    reply_to: str
    path: str


@dataclass(frozen=True)
class RemoveAck:
    req_id: int
    removed: bool


@dataclass(frozen=True)
class List:
    """Server-local listing (full POSIX semantics exist only at leaves)."""

    req_id: int
    reply_to: str
    prefix: str


@dataclass(frozen=True)
class ListAck:
    req_id: int
    names: tuple[str, ...]


@dataclass(frozen=True)
class NamespaceUpdate:
    """Server -> cnsd notification keeping the global namespace (§II-B4
    footnote 3) eventually consistent."""

    node: str
    path: str
    op: str  # "create" | "remove"


# -- size model ---------------------------------------------------------------

_BASE_OVERHEAD = 24  # rough header: lengths, opcodes, stream ids


def estimate_size(msg: object) -> int:
    """Approximate on-the-wire size of a message, in bytes.

    Strings cost their UTF-8 length, byte payloads their length, everything
    else a flat 8 bytes.  Exactness doesn't matter; *scaling* does (E11
    compares prefix registration against full manifests).
    """
    size = _BASE_OVERHEAD
    for value in vars(msg).values():
        if isinstance(value, str):
            size += len(value.encode("utf-8"))
        elif isinstance(value, bytes):
            size += len(value)
        elif isinstance(value, tuple):
            size += sum(len(str(v).encode("utf-8")) for v in value)
        else:
            size += 8
    return size
