"""SimSan — the runtime invariant sanitizer for the cluster simulation.

Static analysis (:mod:`repro.analysis.lint`) catches code that *could*
corrupt the simulation; SimSan catches state that *did*.  When
``ScallaConfig.sanitize`` is on, every manager/supervisor cmsd owns a
:class:`Sanitizer` and sweeps it

* after each eviction tick plus its background-removal batch,
* after each cache mutation batch (a server response and the waiter
  releases it triggers), and
* after each fast-response-queue expiry pass.

A sweep walks every location object in the node's cache and cross-checks
the structures against each other: vector disjointness (``V_q`` against
``V_h | V_p`` and ``V_h`` against ``V_p``), the 80% load-factor bound that
must hold after every completed table operation, window-slot accounting
(every chained object in the right chain, chained exactly once, every
visible object chained somewhere, every chained object still in the
table), connection-counter ordering (``C[i] <= N_c``, distinct positive
stamps, no object snapshot from the future), and response-queue anchor
accounting (free/active partition the anchor array, every in-use anchor is
reachable from the expiry timeline with a matching stamp — an unreachable
anchor would never expire, the exact leak the 133 ms clock exists to
prevent — and carries at least one waiter), plus late-response parking
accounting (no empty or already-released entries in the parked registry).

Sweeps are pure reads: no RNG, no events, no mutation.  Turning SimSan on
changes *nothing* about a run except wall-clock cost, so a sanitized run
produces bit-identical event streams to an unsanitized one — which the
determinism harness (:mod:`repro.analysis.determinism`) relies on.

All failures raise the typed errors of :mod:`repro.analysis.violations`
(``AssertionError`` subclasses) tagged with the owning node's name.
"""

from __future__ import annotations

from repro.analysis.violations import (
    AnchorLeakViolation,
    CorrectionCounterViolation,
    InvariantViolation,
    VectorInvariantViolation,
)
from repro.core import bitvec
from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.core.location import LocationObject
from repro.core.response_queue import ResponseQueue

__all__ = ["Sanitizer"]


class Sanitizer:
    """Runtime invariant sweeper for one node's cache/queue/membership.

    Stateless apart from counters; one instance per sanitized cmsd.  The
    ``sweeps`` / ``objects_checked`` counters let tests assert that
    sanitization actually ran (a sanitizer that never sweeps would pass
    every suite).
    """

    def __init__(self, *, node: str = "") -> None:
        self.node = node
        #: Number of full sweeps performed.
        self.sweeps = 0
        #: Location objects individually checked across all sweeps.
        self.objects_checked = 0

    # -- entry points -----------------------------------------------------

    def sweep(
        self,
        cache: NameCache | None = None,
        rq: ResponseQueue | None = None,
        membership: ClusterMembership | None = None,
    ) -> None:
        """Full consistency sweep over whatever structures are passed."""
        self.sweeps += 1
        if membership is None and cache is not None:
            membership = cache.membership
        if membership is not None:
            self.check_membership(membership)
        if cache is not None:
            self.check_cache(cache)
        if rq is not None:
            self.check_queue(rq)

    def check_object(self, obj: LocationObject) -> None:
        """Per-object vector invariants, including ``V_h & V_p == 0``."""
        self.objects_checked += 1
        try:
            obj.check_invariants()
        except InvariantViolation as exc:
            raise self._tag(exc) from None
        if obj.v_h & obj.v_p != 0:
            raise VectorInvariantViolation(
                "v_h overlaps v_p (a server cannot hold and stage at once)",
                invariant="vh-vp-disjoint",
                node=self.node,
                path=obj.key,
                v_h=f"{obj.v_h:#x}",
                v_p=f"{obj.v_p:#x}",
            )

    # -- structure checks -------------------------------------------------

    def check_cache(self, cache: NameCache) -> None:
        """Table, windows, load factor, and cross-structure accounting."""
        try:
            # Covers bucket placement, count sync, Fibonacci size, the 80%
            # load-factor bound, chain_window/chain agreement, double
            # chaining, and visible-objects-have-a-window.
            cache.check_invariants()
        except InvariantViolation as exc:
            raise self._tag(exc) from None
        table_ids = set()
        for obj in cache.table:
            table_ids.add(id(obj))
            if not obj.hidden:
                self.check_object(obj)
                if obj.c_n > cache.membership.n_c:
                    raise CorrectionCounterViolation(
                        "cached C_n snapshot is from the future",
                        invariant="cn-order",
                        node=self.node,
                        path=obj.key,
                        c_n=obj.c_n,
                        n_c=cache.membership.n_c,
                    )
        # Every physically chained object must still be table storage: an
        # object leaves its window chain before (tick sweep) or at the same
        # step as (background removal) leaving the table, never after.
        for w in range(len(cache.windows._chains)):
            for obj in cache.windows._chains[w]:
                if id(obj) not in table_ids:
                    raise self._tag(
                        InvariantViolation(
                            "window-chained object is not in the hash table",
                            invariant="chain-table-sync",
                            path=obj.key,
                            window=w,
                        )
                    )

    def check_membership(self, membership: ClusterMembership) -> None:
        """Connection-clock and membership-mask consistency."""
        if membership.v_offline & ~membership.v_members & bitvec.FULL_MASK:
            raise self._tag(
                InvariantViolation(
                    "offline mask names unoccupied slots",
                    invariant="offline-subset",
                    v_offline=f"{membership.v_offline:#x}",
                    v_members=f"{membership.v_members:#x}",
                )
            )
        stamps: dict[int, int] = {}
        for i in range(bitvec.MAX_SERVERS):
            c_i = membership.c[i]
            if c_i > membership.n_c:
                raise CorrectionCounterViolation(
                    "slot counter exceeds master counter",
                    invariant="ci-order",
                    node=self.node,
                    slot=i,
                    c_i=c_i,
                    n_c=membership.n_c,
                )
            occupied = membership.slot(i) is not None
            if occupied != bool(membership.v_members & bitvec.bit(i)):
                raise self._tag(
                    InvariantViolation(
                        "v_members disagrees with slot occupancy",
                        invariant="members-mask",
                        slot=i,
                    )
                )
            if occupied:
                if c_i <= 0:
                    raise CorrectionCounterViolation(
                        "occupied slot never stamped a connection",
                        invariant="ci-stamped",
                        node=self.node,
                        slot=i,
                    )
                other = stamps.setdefault(c_i, i)
                if other != i:
                    raise CorrectionCounterViolation(
                        "two slots share one connection stamp",
                        invariant="ci-distinct",
                        node=self.node,
                        slots=(other, i),
                        stamp=c_i,
                    )

    def check_queue(self, rq: ResponseQueue) -> None:
        """Anchor free/active partition, timeline reachability, waiters."""
        anchors = rq._anchors
        in_use = [a for a in anchors if a.in_use]
        if len(in_use) != rq._active:
            raise AnchorLeakViolation(
                "active count disagrees with in-use anchors",
                invariant="active-count",
                node=self.node,
                active=rq._active,
                in_use=len(in_use),
            )
        free = rq._free
        if len(free) != len(set(free)):
            raise AnchorLeakViolation(
                "free list holds duplicate anchor indices",
                invariant="free-distinct",
                node=self.node,
            )
        if len(free) + rq._active != len(anchors):
            raise AnchorLeakViolation(
                "free + active do not partition the anchor array",
                invariant="anchor-partition",
                node=self.node,
                free=len(free),
                active=rq._active,
                anchors=len(anchors),
            )
        for idx in free:
            if anchors[idx].in_use:
                raise AnchorLeakViolation(
                    "in-use anchor sits on the free list",
                    invariant="free-in-use",
                    node=self.node,
                    anchor=idx,
                )
        # Reachability: an in-use anchor with no live timeline entry will
        # never be expired by the response clock — a waiter leak.
        reachable = set()
        for _enq, idx, stamp in rq._timeline:
            if anchors[idx].in_use and anchors[idx].stamp == stamp:
                reachable.add(idx)
        for a in in_use:
            if a.index not in reachable:
                raise AnchorLeakViolation(
                    "in-use anchor unreachable from the expiry timeline",
                    invariant="timeline-reach",
                    node=self.node,
                    anchor=a.index,
                    stamp=a.stamp,
                )
            if not a.waiters:
                raise AnchorLeakViolation(
                    "in-use anchor has no waiters",
                    invariant="anchor-waiters",
                    node=self.node,
                    anchor=a.index,
                )
        # Late-response parking: registry entries must hold waiters (empty
        # lists are deleted eagerly, a survivor means a purge bug) and a
        # parked waiter must still be awaiting its answer (server filled in
        # means on_late_response released it but left it parked — it could
        # be released a second time by the next late response).
        for (key, generation), entry in rq._parked.items():
            if not entry:
                raise AnchorLeakViolation(
                    "parked registry holds an empty waiter list",
                    invariant="parked-nonempty",
                    node=self.node,
                    path=key,
                    generation=generation,
                )
            for _purge_at, w in entry:
                if w.server != -1:
                    raise AnchorLeakViolation(
                        "released waiter still sits in the parked registry",
                        invariant="parked-unreleased",
                        node=self.node,
                        path=key,
                        generation=generation,
                        server=w.server,
                    )

    def check_subordinate(self, cmsd) -> None:
        """Re-home path invariants on a subordinate cmsd.

        A subordinate may be logged into several parents (manager
        replicas), but never into the *same* parent twice; its silence
        clocks and backoff state must only name current parents (a stale
        key would re-login to a host we already re-homed away from); and
        re-homing must never shrink the parent set or strand a node whose
        standby pool still has somewhere to point.
        """
        self.sweeps += 1
        parents = cmsd.parents
        if len(set(parents)) != len(parents):
            raise self._tag(
                InvariantViolation(
                    "subordinate logged into the same parent twice",
                    invariant="parents-distinct",
                    parents=parents,
                )
            )
        for key in cmsd._last_parent_ack:
            if key not in parents:
                raise self._tag(
                    InvariantViolation(
                        "silence clock names a node that is not a parent",
                        invariant="ack-keys-subset",
                        stale=key,
                        parents=parents,
                    )
                )
        for key in cmsd._relogin_state:
            if key not in parents:
                raise self._tag(
                    InvariantViolation(
                        "re-login backoff names a node that is not a parent",
                        invariant="relogin-keys-subset",
                        stale=key,
                        parents=parents,
                    )
                )
        if cmsd.standbys and not cmsd._standby_pool:
            raise self._tag(
                InvariantViolation(
                    "standby pool empty although standbys are configured",
                    invariant="standby-pool-nonempty",
                    standbys=cmsd.standbys,
                )
            )
        if not parents and cmsd._standby_pool:
            raise self._tag(
                InvariantViolation(
                    "subordinate has no parents while standbys remain",
                    invariant="parents-nonempty",
                    pool=cmsd._standby_pool,
                )
            )

    # -- internals --------------------------------------------------------

    def _tag(self, exc: InvariantViolation) -> InvariantViolation:
        """Attach this sanitizer's node name to *exc* (attribute only; the
        rendered message was built at raise time in node-agnostic core
        code, and rebuilding it would duplicate the prefix)."""
        if not exc.node:
            exc.node = self.node
        return exc
