"""``scalla-lint`` — the AST lint engine and command-line front end.

The engine walks the given files/directories, parses each Python file
once, runs every registered rule from :mod:`repro.analysis.rules` whose
scope covers the file, filters suppressed findings, and reports the rest
in human-readable or JSON form::

    python -m repro.analysis.lint src tests benchmarks
    python -m repro.analysis.lint --format json src
    python -m repro.analysis.lint --select SIM001,SCA001 src
    python -m repro.analysis.lint --list-rules

Exit status: 0 when clean, 1 when violations (or unparsable files) were
found, 2 on usage errors.

Suppressions
------------

* ``# scalla-lint: disable=SIM003`` on the offending line suppresses the
  named rule(s) there (comma-separate several ids; ``all`` disables every
  rule for that line).
* ``# scalla-lint: disable-file=SCA002`` anywhere in a file suppresses the
  named rule(s) for the whole file.

Suppressions are deliberately loud in the diff: grepping for
``scalla-lint: disable`` inventories every accepted exception.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import pathlib
import re
import sys
from typing import Iterable, Iterator

from repro.analysis.rules import REGISTRY, Rule

__all__ = ["LintViolation", "FileContext", "lint_source", "lint_paths", "main"]

_SUPPRESS_RE = re.compile(r"#\s*scalla-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")

#: Directories never descended into when walking a tree.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "results"})


@dataclasses.dataclass(frozen=True, order=True)
class LintViolation:
    """One finding: where, which rule, and what."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class FileContext:
    """Per-file state handed to every rule: the path plus a report sink."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.violations: list[LintViolation] = []
        self._line_disables: dict[int, set[str]] = {}
        self._file_disables: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            ids = {r.strip().upper() for r in match.group(2).split(",") if r.strip()}
            if match.group(1) == "disable-file":
                self._file_disables |= ids
            else:
                self._line_disables.setdefault(lineno, set()).update(ids)

    def suppressed(self, rule_id: str, line: int) -> bool:
        file_level = self._file_disables
        line_level = self._line_disables.get(line, ())
        return (
            rule_id in file_level
            or "ALL" in file_level
            or rule_id in line_level
            or "ALL" in line_level
        )

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(rule.id, line):
            return
        self.violations.append(LintViolation(self.path, line, col, rule.id, message))


# -- running rules ------------------------------------------------------------


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return list(REGISTRY)
    wanted = {s.strip().upper() for s in select if s.strip()}
    rules = [r for r in REGISTRY if r.id in wanted]
    missing = wanted - {r.id for r in rules}
    if missing:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(missing))}")
    return rules


def lint_source(
    source: str, path: str, *, rules: Iterable[Rule] | None = None
) -> list[LintViolation]:
    """Lint one source text as though it lived at *path*."""
    path = _normalize(path)
    active = list(rules) if rules is not None else list(REGISTRY)
    ctx = FileContext(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(path, exc.lineno or 1, (exc.offset or 1) - 1, "PARSE", f"syntax error: {exc.msg}")
        ]
    for rule in active:
        if rule.applies_to(path):
            rule.check(tree, ctx)
    return sorted(ctx.violations)


def _iter_python_files(paths: Iterable[str]) -> Iterator[pathlib.Path]:
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub
        else:
            # Explicit file arguments are linted regardless of extension —
            # that is how fixture files with violations are exercised.
            yield p


def lint_paths(
    paths: Iterable[str], *, rules: Iterable[Rule] | None = None
) -> tuple[list[LintViolation], int]:
    """Lint files/trees; returns ``(violations, files_checked)``."""
    violations: list[LintViolation] = []
    checked = 0
    for file in _iter_python_files(paths):
        try:
            source = file.read_text()
        except OSError as exc:
            violations.append(LintViolation(_normalize(str(file)), 1, 0, "PARSE", str(exc)))
            continue
        checked += 1
        violations.extend(lint_source(source, str(file), rules=rules))
    return sorted(violations), checked


# -- CLI ----------------------------------------------------------------------


def _list_rules() -> str:
    lines = []
    for rule in REGISTRY:
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="scalla-lint: repo-specific static analysis for the Scalla reproduction",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated rule ids to run (default: all)"
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    try:
        rules = _select_rules(args.select.split(",")) if args.select else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    violations, checked = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "tool": "scalla-lint",
                    "files_checked": checked,
                    "violations": [v.to_dict() for v in violations],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for v in violations:
            print(v.render())
        print(
            f"scalla-lint: {len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
