"""The repo-specific lint rules of ``scalla-lint``.

Each rule is a class with an ``id``, a one-line ``title``, a ``rationale``
(rendered by ``--list-rules`` and quoted in ``docs/static_analysis.md``),
a path ``scope``, and a ``check(tree, ctx)`` method that walks the AST and
reports violations through the context.  Rules register themselves in
:data:`REGISTRY` via the :func:`register` decorator; the engine in
:mod:`repro.analysis.lint` discovers them there.

The rules encode the determinism and faithfulness contract of the
reproduction:

* the simulation must never read the wall clock (SIM001) or an unseeded
  global RNG (SIM002) — both would make two runs with the same seed
  diverge;
* protocol and kernel code must never iterate a ``set``/``frozenset``
  directly (SIM003) — with string keys, iteration order depends on
  ``PYTHONHASHSEED`` and varies across interpreter runs;
* simulation processes (generators driven by the event kernel) must never
  block on real sleep or I/O (SIM004) — virtual time is the only time;
* 64-bit server-vector bit construction goes through
  :mod:`repro.core.bitvec` (SCA001) so range checking and masking stay in
  one audited place;
* hash-table sizes come from the :mod:`repro.core.fibonacci` ladder
  (SCA002) — a hard-coded non-Fibonacci size silently reintroduces the
  power-of-two clustering the paper's footnote 4 measured;
* the kernel's dispatch path never allocates event objects (SCA003) —
  ``Simulator.step()``/``run()`` must route immediate wakeups through the
  deferred-resume ring and recycled timeout storage, or the allocation
  rate the ``benchmarks/perf`` suite gates on silently creeps back.

Every rule supports per-line suppression with ``# scalla-lint:
disable=RULE`` and per-file suppression with ``# scalla-lint:
disable-file=RULE`` (see :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.core.fibonacci import is_fibonacci

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint import FileContext

__all__ = ["Rule", "REGISTRY", "register", "rule_by_id"]


class Rule:
    """Base class for one lint rule."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether *path* (posix-style, repo-relative) is in scope."""
        return True

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        raise NotImplementedError


REGISTRY: list[Rule] = []


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add the rule to the registry."""
    REGISTRY.append(cls())
    return cls


def rule_by_id(rule_id: str) -> Rule | None:
    for rule in REGISTRY:
        if rule.id == rule_id:
            return rule
    return None


# -- shared helpers -----------------------------------------------------------


def _is_sim_source(path: str) -> bool:
    """True for reproduction source files (``src/repro/**`` or ``repro/**``)."""
    return "src/repro/" in path or path.startswith("repro/")


def _root_name(node: ast.expr) -> str | None:
    """The leftmost ``Name`` of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _call_target(node: ast.Call) -> str | None:
    """Terminal callee name: ``foo()`` -> ``foo``, ``a.b.foo()`` -> ``foo``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# -- SIM001: no wall clock in simulation code ---------------------------------


@register
class NoWallClock(Rule):
    id = "SIM001"
    title = "no wall clock in simulation code"
    rationale = (
        "Simulated time (`sim.now`) is the only time there is; `time.time()`, "
        "`time.monotonic()`, `datetime.now()` and friends tie behaviour to the "
        "host clock and break run-to-run reproducibility.  Wall-clock reads "
        "belong in benchmarks, never in `src/repro`."
    )

    _TIME_FUNCS = frozenset(
        {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns", "perf_counter_ns"}
    )
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, path: str) -> bool:
        return _is_sim_source(path)

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        banned_locals: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self._TIME_FUNCS:
                            banned_locals.add(alias.asname or alias.name)
                            ctx.report(
                                self,
                                node,
                                f"import of wall-clock function time.{alias.name}",
                            )
                elif node.module == "datetime":
                    # `from datetime import datetime` is only a type import;
                    # calling .now() on it is caught below.
                    pass
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    root = _root_name(func)
                    if root == "time" and func.attr in self._TIME_FUNCS:
                        ctx.report(self, node, f"wall-clock call time.{func.attr}()")
                    elif root in ("datetime", "date") and func.attr in self._DATETIME_FUNCS:
                        ctx.report(self, node, f"wall-clock call {root}...{func.attr}()")
                elif isinstance(func, ast.Name) and func.id in banned_locals:
                    ctx.report(self, node, f"wall-clock call {func.id}()")


# -- SIM002: no module-level random.* calls -----------------------------------


@register
class NoGlobalRandom(Rule):
    id = "SIM002"
    title = "no calls on the global `random` module"
    rationale = (
        "The shared module-level RNG is seeded (or not) globally, so any call "
        "through it couples unrelated components and defeats per-component "
        "seeding.  All randomness must flow through an explicitly seeded "
        "`random.Random` instance owned and passed by the caller."
    )

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        ctx.report(
                            self,
                            node,
                            f"`from random import {alias.name}` pulls a global-RNG "
                            "function; import random.Random and seed it",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr != "Random"
                ):
                    ctx.report(
                        self,
                        node,
                        f"call on the global RNG: random.{func.attr}(); "
                        "use a caller-seeded random.Random",
                    )


# -- SIM003: no iteration over bare sets in protocol/kernel code -----------------


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        value = annotation.value
        if isinstance(value, ast.Name):
            return value.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
        if isinstance(value, ast.Attribute):
            return value.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text.startswith(("set[", "frozenset[", "Set[", "FrozenSet[")) or text in (
            "set",
            "frozenset",
        )
    return False


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class NoSetIteration(Rule):
    id = "SIM003"
    title = "no iteration over bare set/frozenset in protocol or kernel code"
    rationale = (
        "Set iteration order over strings depends on PYTHONHASHSEED, so a "
        "`for` over a set of paths or node names makes message order differ "
        "between interpreter runs even with identical seeds.  Iterate "
        "`sorted(the_set)` (or a list/tuple/dict, which preserve order)."
    )

    def applies_to(self, path: str) -> bool:
        return _is_sim_source(path)

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        set_names = self._collect_set_names(tree)
        for node in ast.walk(tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_valued(it, set_names):
                    ctx.report(
                        self,
                        it,
                        f"iteration over set-valued {ast.unparse(it)!r}; "
                        "order is hash-dependent — iterate sorted(...) instead",
                    )

    @staticmethod
    def _collect_set_names(tree: ast.Module) -> set[str]:
        """Names/attributes the module declares or assigns as sets.

        This is a module-wide, name-based inference — deliberately simple
        (no scopes, no cross-module types).  A false positive on a name
        that merely *shadows* a set name elsewhere in the module is the
        price, paid with a one-line suppression.
        """
        found: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
                target = node.target
                if isinstance(target, ast.Name):
                    found.add(target.id)
                elif isinstance(target, ast.Attribute):
                    found.add(target.attr)
            elif isinstance(node, ast.Assign) and _is_set_expression(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        found.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        found.add(target.attr)
        return found

    @staticmethod
    def _is_set_valued(node: ast.expr, set_names: set[str]) -> bool:
        if _is_set_expression(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Attribute):
            return node.attr in set_names
        return False


# -- SIM004: no blocking sleep/IO inside simulation processes --------------------


@register
class NoBlockingInProcess(Rule):
    id = "SIM004"
    title = "no blocking sleep or real I/O inside simulation generators"
    rationale = (
        "Simulation processes are generators driven by the event kernel; a "
        "`time.sleep`, `open()`, socket or subprocess call inside one stalls "
        "the single-threaded scheduler in *real* time and smuggles "
        "external state into the deterministic run.  Wait on "
        "`sim.timeout(...)` and keep I/O outside the kernel."
    )

    _BLOCKING_MODULES = frozenset({"socket", "subprocess", "requests", "urllib", "http"})
    _BLOCKING_BUILTINS = frozenset({"open", "input"})

    def applies_to(self, path: str) -> bool:
        return _is_sim_source(path)

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        sleep_aliases = {
            alias.asname or alias.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module == "time"
            for alias in node.names
            if alias.name == "sleep"
        }
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_generator(func):
                continue
            for node in self._walk_own_body(func):
                if isinstance(node, ast.Call):
                    self._check_call(node, ctx, sleep_aliases)

    def _check_call(self, node: ast.Call, ctx: "FileContext", sleep_aliases: set[str]) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            root = _root_name(func)
            if root == "time" and func.attr == "sleep":
                ctx.report(self, node, "time.sleep() inside a simulation process")
            elif root == "os" and func.attr in ("system", "popen"):
                ctx.report(self, node, f"os.{func.attr}() inside a simulation process")
            elif root in self._BLOCKING_MODULES:
                ctx.report(
                    self, node, f"blocking {root}.{func.attr}() inside a simulation process"
                )
        elif isinstance(func, ast.Name):
            if func.id in sleep_aliases:
                ctx.report(self, node, "time.sleep() inside a simulation process")
            elif func.id in self._BLOCKING_BUILTINS:
                ctx.report(self, node, f"{func.id}() inside a simulation process")

    @staticmethod
    def _is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in NoBlockingInProcess._walk_own_body(func):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    @staticmethod
    def _walk_own_body(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterable[ast.AST]:
        """Walk *func*'s statements without descending into nested defs."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))


# -- SCA001: server-bit construction goes through core.bitvec --------------------


@register
class BitvecHelpers(Rule):
    id = "SCA001"
    title = "construct server bits with bitvec.bit(), not raw `1 << i`"
    rationale = (
        "`1 << i` with a computed index silently builds vectors wider than 64 "
        "bits when the index is out of range; `bitvec.bit(i)` range-checks and "
        "keeps every bit-twiddling idiom in one audited module.  Literal "
        "shifts (`1 << 20` as a size constant) are fine."
    )

    def applies_to(self, path: str) -> bool:
        return _is_sim_source(path) and not path.endswith("core/bitvec.py")

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.LShift)
                and isinstance(node.left, ast.Constant)
                and node.left.value == 1
                and not isinstance(node.right, ast.Constant)
            ):
                ctx.report(
                    self,
                    node,
                    f"raw server-bit construction `1 << {ast.unparse(node.right)}`; "
                    "use repro.core.bitvec.bit(...)",
                )


# -- SCA002: table sizes come from the Fibonacci ladder --------------------------


@register
class FibonacciTableSizes(Rule):
    id = "SCA002"
    title = "location-table sizes only from the core.fibonacci ladder"
    rationale = (
        "The cache's collision behaviour depends on the table size being a "
        "Fibonacci number (paper footnote 4); a hard-coded non-Fibonacci size "
        "fails at construction time in the best case and skews every chain-"
        "length measurement in the worst.  Take sizes from "
        "`repro.core.fibonacci` (or pass a literal that is on the ladder)."
    )

    _TABLE_TYPES = frozenset({"LocationTable", "NameCache"})

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target not in self._TABLE_TYPES:
                continue
            candidates: list[ast.expr] = []
            if target == "LocationTable" and node.args:
                candidates.append(node.args[0])
            for kw in node.keywords:
                if kw.arg == "initial_size":
                    candidates.append(kw.value)
            for value in candidates:
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                    and not is_fibonacci(value.value)
                ):
                    ctx.report(
                        self,
                        value,
                        f"table size {value.value} is not a Fibonacci number; "
                        "sizes must come from repro.core.fibonacci",
                    )


# -- SCA003: no event allocation on the kernel dispatch path ---------------------


@register
class NoDispatchAllocation(Rule):
    id = "SCA003"
    title = "no Event/Timeout/Process construction inside Simulator.step()/run()"
    rationale = (
        "The dispatch loop runs once per simulated event — the hottest path "
        "in the repo, tracked by `benchmarks/perf` and gated by "
        "`scripts/check_perf.py`.  Allocating an `Event` (or `Timeout`/"
        "`Process`) there reintroduces the per-event bootstrap/poke garbage "
        "the deferred-resume ring and the pooled-timeout free list were "
        "built to remove.  Immediate wakeups go through `Simulator._defer`; "
        "delays come from the recycled `sleep()` storage."
    )

    _EVENT_TYPES = frozenset({"Event", "Timeout", "Process"})
    _DISPATCH_METHODS = frozenset({"step", "run"})

    def check(self, tree: ast.Module, ctx: "FileContext") -> None:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef) or cls.name != "Simulator":
                continue
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if fn.name not in self._DISPATCH_METHODS:
                    continue
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and _call_target(node) in self._EVENT_TYPES
                    ):
                        ctx.report(
                            self,
                            node,
                            f"`{ast.unparse(node.func)}(...)` allocated inside "
                            f"Simulator.{fn.name}(); the dispatch path must use "
                            "the deferred-resume ring / pooled timeouts instead",
                        )
