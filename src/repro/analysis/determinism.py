"""The determinism harness: run the same workload twice, diff everything.

The simulation kernel promises bit-identical runs for identical seeds — no
wall clock, no global RNG, no hash-order-dependent iteration (the lint
rules SIM001-SIM003 police the code side of that promise).  This module
checks the promise end to end: it builds a cluster, drives an E1-style
locate workload (hits, misses, a membership disconnect, enough sim time
for eviction ticks and queue expiries), freezes the full observability
snapshot — every metric series and every resolution trace, all stamped
with sim time — and compares two runs field by field.

Any divergence means nondeterminism leaked in somewhere, and the diff
pinpoints the first diverging metric or trace event.

Used three ways:

* ``python -m repro.analysis.determinism`` — CI's ``determinism`` job and
  ``scripts/check.sh``; exit 0 on identical runs, 1 on divergence;
* :func:`run_workload` / :func:`diff_snapshots` from tests;
* with ``--sanitize`` the second run sweeps SimSan, doubling as a check
  that sanitization really is a pure read (identical streams with it on).
"""

from __future__ import annotations

import argparse
import json
import random
from typing import Any

from repro.cluster.client import NoSuchFile
from repro.cluster.scalla import ScallaCluster, ScallaConfig
from repro.obs import export

__all__ = ["run_workload", "diff_snapshots", "main"]


def run_workload(
    seed: int = 51,
    *,
    n_servers: int = 12,
    fanout: int = 12,
    files: int = 30,
    lookups: int = 60,
    misses: int = 8,
    sanitize: bool = False,
) -> dict[str, Any]:
    """Run one deterministic locate workload; return its full snapshot.

    The workload exercises every subsystem whose iteration order could
    leak nondeterminism: cache lookups and adds (hash table), fast
    response queue waits and releases, query flooding over membership
    vectors, a server disconnect mid-run (correction machinery), and two
    window ticks (eviction sweep + background removal).
    """
    config = ScallaConfig(
        seed=seed,
        fanout=fanout,
        observability=True,
        sanitize=sanitize,
        lifetime=1200.0,  # tick every 18.75 s: the run crosses several ticks
    )
    cluster = ScallaCluster(n_servers, config=config)
    paths = [f"/store/d{i % 5}/f{i:03d}.root" for i in range(files)]
    cluster.populate(paths)
    cluster.settle()

    rng = random.Random(seed ^ 0xD5)
    client = cluster.client()
    resolved = 0
    notfound = 0
    for i in range(lookups):
        path = rng.choice(paths)
        node, _pending = cluster.run_process(client.locate(path))
        assert node, f"locate returned no node for {path}"
        resolved += 1
        if i == lookups // 2:
            # Membership churn mid-run: silence one server long enough for
            # the liveness sweep to mark it offline, then let it re-login,
            # forcing the lazy-correction path on later fetches.
            victim = cluster.servers[rng.randrange(len(cluster.servers))]
            cluster.nodes[victim].cmsd.stop()
            cluster.run(until=cluster.sim.now + 5.0)
            cluster.nodes[victim].cmsd.start()
            cluster.settle()
    for i in range(misses):
        try:
            cluster.run_process(client.locate(f"/store/nowhere/g{i}.root"))
        except NoSuchFile:
            notfound += 1
    # Cross a few eviction ticks and queue-expiry periods with the cluster
    # otherwise idle, then freeze.
    cluster.run(until=cluster.sim.now + 2.5 * cluster.config.lifetime / 64)
    snap = cluster.obs_snapshot()
    snap["extra"] = {"seed": seed, "resolved": resolved, "notfound": notfound}
    return snap


def diff_snapshots(a: dict[str, Any], b: dict[str, Any], *, limit: int = 20) -> list[str]:
    """Human-readable differences between two snapshots (empty = identical).

    Compares the canonical JSON renderings line by line, so a diff names
    the exact metric value or trace field that diverged rather than just
    saying "not equal".
    """
    ja, jb = export.to_json(a), export.to_json(b)
    if ja == jb:
        return []
    diffs: list[str] = []
    la, lb = ja.splitlines(), jb.splitlines()
    for i in range(max(len(la), len(lb))):
        left = la[i] if i < len(la) else "<missing>"
        right = lb[i] if i < len(lb) else "<missing>"
        if left != right:
            diffs.append(f"line {i + 1}: {left.strip()!r} != {right.strip()!r}")
            if len(diffs) >= limit:
                diffs.append("... (diff truncated)")
                break
    return diffs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.determinism",
        description="Run the reference workload twice with one seed and "
        "fail on any event-stream divergence.",
    )
    parser.add_argument("--seed", type=int, default=51)
    parser.add_argument("--runs", type=int, default=2, help="how many runs to compare")
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable SimSan on all runs after the first (also proves "
        "sanitization is a pure read)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)
    if args.runs < 2:
        parser.error("--runs must be at least 2")

    reference = run_workload(args.seed)
    all_diffs: list[str] = []
    for run in range(1, args.runs):
        snap = run_workload(args.seed, sanitize=args.sanitize)
        all_diffs.extend(f"run {run + 1}: {d}" for d in diff_snapshots(reference, snap))

    if args.format == "json":
        print(
            json.dumps(
                {
                    "tool": "scalla-determinism",
                    "seed": args.seed,
                    "runs": args.runs,
                    "resolved": reference["extra"]["resolved"],
                    "identical": not all_diffs,
                    "diffs": all_diffs,
                },
                indent=2,
            )
        )
    else:
        if all_diffs:
            for d in all_diffs:
                print(d)
            print(f"determinism: FAILED — {len(all_diffs)} divergence(s) over {args.runs} runs")
        else:
            print(
                f"determinism: OK — {args.runs} runs of seed {args.seed} identical "
                f"({reference['extra']['resolved']} resolutions, "
                f"{len(reference.get('traces', []))} traces)"
            )
    return 1 if all_diffs else 0


if __name__ == "__main__":
    raise SystemExit(main())
