"""Static analysis and runtime invariant checking for the reproduction.

Two complementary tools live here, both born of the same observation: the
paper's guarantees are *machine-checkable* — 64-bit vector disjointness,
Fibonacci table sizing at 80% load, hide-then-remove eviction, O(1)
correction math, and a deterministic event kernel — so nothing should rely
on review alone to keep them true.

* :mod:`repro.analysis.lint` — ``scalla-lint``, an AST-based custom lint
  pass with repo-specific rules (no wall clock in simulation code, no
  unseeded randomness, no set-order iteration in protocol code, bitvec
  mutations through :mod:`repro.core.bitvec`, table sizes from
  :mod:`repro.core.fibonacci`).  Run it as::

      python -m repro.analysis.lint src tests benchmarks

* :mod:`repro.analysis.simsan` — SimSan, a runtime sanitizer
  (``ScallaConfig(sanitize=True)``, or ``SCALLA_SANITIZE=1``) that sweeps
  every structural invariant across a live cluster's caches, response
  queues, and membership state after each eviction tick and cache mutation
  batch, raising typed :mod:`repro.analysis.violations` errors.

* :mod:`repro.analysis.determinism` — a harness that runs the same seeded
  workload twice and diffs the resulting event streams and metric
  snapshots, pinning the kernel's determinism guarantee::

      python -m repro.analysis.determinism

Only :mod:`repro.analysis.violations` is imported eagerly: the core data
structures raise its typed errors, and importing the heavier linter or
sanitizer machinery from there would create an import cycle.
"""

from __future__ import annotations

from repro.analysis.violations import (
    AnchorLeakViolation,
    CorrectionCounterViolation,
    InvariantViolation,
    LoadFactorViolation,
    TableStructureViolation,
    VectorInvariantViolation,
    WindowAccountingViolation,
)

__all__ = [
    "InvariantViolation",
    "VectorInvariantViolation",
    "LoadFactorViolation",
    "TableStructureViolation",
    "WindowAccountingViolation",
    "CorrectionCounterViolation",
    "AnchorLeakViolation",
]
