"""Typed invariant-violation errors.

The core structures used to enforce their invariants with bare ``assert``
statements, which made two things hard: a failing check could not say
*which* paper invariant broke or *where* (node, path, server slot), and
callers could not catch one class of violation without catching every
``AssertionError`` in sight.

Every error here derives from :class:`InvariantViolation`, which itself
derives from ``AssertionError`` — existing callers (and tests) that treat
an invariant failure as an assertion keep working, while new code can
catch, log, and report the typed variants with their structured context.

This module deliberately imports nothing from the rest of the package:
:mod:`repro.core` raises these errors, and :mod:`repro.analysis.simsan`
imports :mod:`repro.core`, so any dependency from here back into either
would be a cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "InvariantViolation",
    "VectorInvariantViolation",
    "LoadFactorViolation",
    "TableStructureViolation",
    "WindowAccountingViolation",
    "CorrectionCounterViolation",
    "AnchorLeakViolation",
]


class InvariantViolation(AssertionError):
    """A structural invariant of the reproduction no longer holds.

    Parameters
    ----------
    message:
        Human-readable description of what broke.
    invariant:
        Short identifier of the violated rule (e.g. ``"vq-disjoint"``),
        stable enough for tests and log scrapers to match on.
    node:
        Name of the cluster node whose state is corrupt, when known.
    path:
        The file path (cache key) involved, when the violation is tied to
        one location object.
    context:
        Any further keyword details (server slot, counter values, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "",
        node: str = "",
        path: str = "",
        **context: Any,
    ) -> None:
        self.invariant = invariant
        self.node = node
        self.path = path
        self.context = context
        prefix = []
        if invariant:
            prefix.append(f"[{invariant}]")
        if node:
            prefix.append(f"node={node}")
        if path:
            prefix.append(f"path={path!r}")
        detail = " ".join(f"{k}={v!r}" for k, v in context.items())
        parts = [" ".join(prefix), message, detail]
        super().__init__(" ".join(p for p in parts if p))


class VectorInvariantViolation(InvariantViolation):
    """A 64-bit server vector broke its rules.

    Covers: a vector outside the 64-bit range, ``V_q`` overlapping
    ``V_h | V_p`` (paper §III-A1: a server either answered or still needs
    asking, never both), and ``V_h`` overlapping ``V_p`` (a server cannot
    simultaneously have the file online and be staging it).
    """


class LoadFactorViolation(InvariantViolation):
    """The hash table exceeded its 80% growth threshold.

    Growth happens *before* the insert that would cross the threshold
    (paper §III-A1), so at no observable point may the chained count exceed
    ``size * 0.8``.
    """


class TableStructureViolation(InvariantViolation):
    """Hash-table bookkeeping is inconsistent.

    An object chained in the wrong bucket for its hash, a count that does
    not match the chains, or a table size that is not a Fibonacci number.
    """


class WindowAccountingViolation(InvariantViolation):
    """Eviction-window bookkeeping is inconsistent.

    An object whose ``chain_window`` disagrees with the chain it physically
    sits in, an object chained twice, a visible cache object chained
    nowhere, or a window stamp outside ``[0, 64)``.
    """


class CorrectionCounterViolation(InvariantViolation):
    """The connection-clock counters broke their ordering rules.

    Every per-slot counter ``C[i]`` records the master counter ``N_c`` at
    that slot's last connection, so ``C[i] <= N_c`` always, occupied slots
    carry distinct positive stamps, and no cached object may snapshot a
    ``C_n`` from the future.
    """


class AnchorLeakViolation(InvariantViolation):
    """Fast-response-queue anchor accounting leaked.

    Active/free counts that do not partition the 1024 anchors, an in-use
    anchor unreachable from the expiry timeline (it would wait forever —
    the leak the 133 ms clock exists to prevent), or waiters parked on a
    reclaimed anchor.
    """
