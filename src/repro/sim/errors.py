"""Exceptions for the discrete-event simulation kernel."""

from __future__ import annotations

__all__ = ["SimError", "Interrupt", "StopSimulation"]


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed — failure injection
    uses it to say *why* (e.g. ``"crash"``), letting node processes
    distinguish a simulated power loss from an orderly shutdown.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""
