"""Discrete-event simulation substrate (built from scratch for this repo).

Provides the deterministic virtual-time world the cluster experiments run
in: a generator-based process kernel, mailboxes and semaphores, a message
network with latency models and partitions, failure injection, and
measurement helpers.
"""

from repro.sim.errors import Interrupt, SimError, StopSimulation
from repro.sim.failures import (
    FailureEvent,
    FailureInjector,
    random_chaos_schedule,
    random_crash_schedule,
)
from repro.sim.kernel import AllOf, AnyOf, Event, Process, Simulator, Timeout
from repro.sim.latency import Empirical, Fixed, LatencyModel, LogNormal, Uniform
from repro.sim.monitor import Histogram, Summary, TimeSeries
from repro.sim.network import ChaosConfig, Envelope, Host, Network, NetworkStats
from repro.sim.sync import Resource, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimError",
    "StopSimulation",
    "Store",
    "Resource",
    "Network",
    "Host",
    "Envelope",
    "NetworkStats",
    "ChaosConfig",
    "LatencyModel",
    "Fixed",
    "Uniform",
    "LogNormal",
    "Empirical",
    "Histogram",
    "TimeSeries",
    "Summary",
    "FailureEvent",
    "FailureInjector",
    "random_crash_schedule",
    "random_chaos_schedule",
]
