"""Synchronization primitives for simulation processes.

Two primitives cover everything the cluster layer needs:

* :class:`Store` — an unbounded FIFO mailbox.  Every daemon (cmsd, xrootd,
  client) is a process looping on ``msg = yield inbox.get()``.
* :class:`Resource` — a counting semaphore used to model finite server
  capacity (disk streams, CPU slots) so load experiments produce queueing
  rather than infinite parallelism.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.kernel import Event, Simulator
from repro.sim.kernel import _heappush, _PENDING  # hot-path handoff (see Store)

__all__ = ["Store", "Resource"]

_new_event = Event.__new__


class Store:
    """Unbounded FIFO of items; ``get`` events fire in request order.

    Items put while getters wait are handed over immediately (at the same
    simulated time); otherwise they queue.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit *item*; wakes the oldest waiting getter, if any.

        This is the cmsd-inbox hot path (one put per protocol message), so
        the wakeup inlines ``Event.succeed`` on the getter we just proved
        pending rather than re-checking through the public method.
        """
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._value is not _PENDING or getter._exception is not None:
                continue  # getter was interrupted/abandoned
            getter._value = item
            sim = getter.sim
            _heappush(sim._heap, (sim._now, sim._seq, getter))
            sim._seq += 1
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event yielding the next item (immediately if one is queued)."""
        # Event(...) flattened (one get per consumed message): skip the
        # class-call/__init__ round trip for a plain slot fill.
        ev = _new_event(Event)
        ev.callbacks = []
        ev._exception = None
        sim = ev.sim = self.sim
        items = self._items
        if items:
            # Inlined ev.succeed(...): the event is fresh, provably pending.
            ev._value = items.popleft()
            _heappush(sim._heap, (sim._now, sim._seq, ev))
            sim._seq += 1
        else:
            ev._value = _PENDING
            self._getters.append(ev)
        return ev

    def drain(self) -> list[Any]:
        """Remove and return all queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items


class Resource:
    """Counting semaphore with FIFO granting.

    Usage::

        grant = yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return sum(1 for w in self._waiters if not w.triggered)

    @property
    def utilization(self) -> float:
        return self._in_use / self.capacity

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release without acquire")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed()  # hand the slot straight over
            return
        self._in_use -= 1
