"""Failure injection schedules.

Recoverability is one of Scalla's three design objectives, so the
integration tests and churn experiment (E12) drive clusters through scripted
and randomized failure schedules: host crashes (process interrupted, network
delivery stops), restarts, and link partitions.

The injector is deliberately dumb: it executes a schedule against the
network and a callback table.  Deciding *what the cluster should do about
it* (disconnect → drop timers, re-login) belongs to the cluster layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = ["FailureEvent", "FailureInjector", "random_crash_schedule"]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled action.

    ``kind`` is one of ``crash``, ``restart``, ``partition``, ``heal``;
    ``target`` is a host name (crash/restart) or an ``(a, b)`` pair.
    """

    at: float
    kind: str
    target: object

    KINDS = ("crash", "restart", "partition", "heal")


class FailureInjector:
    """Executes :class:`FailureEvent` schedules as simulation processes.

    ``on_crash`` / ``on_restart`` hooks let the cluster layer interrupt the
    node's daemon processes and re-run its login sequence — the network
    alone cannot know which processes animate a host.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        on_crash: Callable[[str], None] | None = None,
        on_restart: Callable[[str], None] | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.on_crash = on_crash
        self.on_restart = on_restart
        self.executed: list[FailureEvent] = []

    def schedule(self, events: list[FailureEvent]) -> None:
        for ev in sorted(events, key=lambda e: e.at):
            if ev.kind not in FailureEvent.KINDS:
                raise ValueError(f"unknown failure kind {ev.kind!r}")
            self.sim.process(self._execute(ev), name=f"failure:{ev.kind}@{ev.at}")

    def _execute(self, ev: FailureEvent):
        yield self.sim.sleep(ev.at - self.sim.now)
        if ev.kind == "crash":
            self.network.kill(ev.target)
            if self.on_crash is not None:
                self.on_crash(ev.target)
        elif ev.kind == "restart":
            self.network.revive(ev.target)
            if self.on_restart is not None:
                self.on_restart(ev.target)
        elif ev.kind == "partition":
            a, b = ev.target
            self.network.partition(a, b)
        elif ev.kind == "heal":
            a, b = ev.target
            self.network.heal(a, b)
        self.executed.append(ev)


def random_crash_schedule(
    rng: random.Random,
    hosts: list[str],
    *,
    horizon: float,
    crashes: int,
    min_downtime: float,
    max_downtime: float,
) -> list[FailureEvent]:
    """Generate crash/restart pairs for random hosts over [0, horizon].

    Restart times are clamped to the horizon so every crashed host comes
    back before the scenario ends — the churn experiment asserts full
    recovery, which needs all servers eventually online.

    Windows are non-overlapping *per host*: a host picked twice gets two
    disjoint [crash, restart] intervals.  Overlap would be nonsense — the
    earlier pair's ``restart`` would revive the host mid-way through the
    later pair's downtime, so the schedule would claim N crash windows but
    deliver fewer, and property tests over downtime accounting would lie.
    Candidate windows colliding with a host's existing ones are re-sampled
    (bounded), so the schedule always contains exactly *crashes* pairs.
    """
    if min_downtime > max_downtime:
        raise ValueError("min_downtime > max_downtime")
    events: list[FailureEvent] = []
    taken: dict[str, list[tuple[float, float]]] = {}
    for _ in range(crashes):
        for _attempt in range(1000):
            host = rng.choice(hosts)
            at = rng.uniform(0, horizon * 0.7)
            downtime = rng.uniform(min_downtime, max_downtime)
            back = min(at + downtime, horizon)
            if all(back < s or e < at for s, e in taken.get(host, [])):
                break
        else:
            raise ValueError(
                "could not place non-overlapping crash windows; "
                "lower crashes or downtime relative to the horizon"
            )
        taken.setdefault(host, []).append((at, back))
        events.append(FailureEvent(at=at, kind="crash", target=host))
        events.append(FailureEvent(at=back, kind="restart", target=host))
    return sorted(events, key=lambda e: e.at)
