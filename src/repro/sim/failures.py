"""Failure injection schedules.

Recoverability is one of Scalla's three design objectives, so the
integration tests and churn experiment (E12) drive clusters through scripted
and randomized failure schedules: host crashes (process interrupted, network
delivery stops), restarts, and link partitions.

The injector is deliberately dumb: it executes a schedule against the
network and a callback table.  Deciding *what the cluster should do about
it* (disconnect → drop timers, re-login) belongs to the cluster layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = [
    "FailureEvent",
    "FailureInjector",
    "random_crash_schedule",
    "random_chaos_schedule",
]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled action.

    ``target`` is a host name for the host kinds (``crash``, ``restart``,
    ``isolate``, ``unisolate``) or an ``(a, b)`` host pair for the link
    kinds (``partition``/``heal`` symmetric, ``partition_oneway``/
    ``heal_oneway`` directional: a -> b is severed, b -> a still flows).
    """

    at: float
    kind: str
    target: object

    KINDS = (
        "crash",
        "restart",
        "partition",
        "heal",
        "isolate",
        "unisolate",
        "partition_oneway",
        "heal_oneway",
    )
    #: Kinds whose target is an (a, b) pair rather than one host.
    PAIR_KINDS = ("partition", "heal", "partition_oneway", "heal_oneway")


class FailureInjector:
    """Executes :class:`FailureEvent` schedules as simulation processes.

    ``on_crash`` / ``on_restart`` hooks let the cluster layer interrupt the
    node's daemon processes and re-run its login sequence — the network
    alone cannot know which processes animate a host.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        on_crash: Callable[[str], None] | None = None,
        on_restart: Callable[[str], None] | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.on_crash = on_crash
        self.on_restart = on_restart
        self.executed: list[FailureEvent] = []

    def schedule(self, events: list[FailureEvent]) -> None:
        """Validate and arm *events*.

        Validation happens here, at schedule time, not deep inside
        ``_execute`` hours of simulated time later: a typo'd host name or
        a partition target that is not an ``(a, b)`` pair is a bug in the
        *schedule*, and the traceback should say so while the caller is
        still on the stack.
        """
        for ev in sorted(events, key=lambda e: e.at):
            self._validate(ev)
            self.sim.process(self._execute(ev), name=f"failure:{ev.kind}@{ev.at}")

    def _validate(self, ev: FailureEvent) -> None:
        if ev.kind not in FailureEvent.KINDS:
            raise ValueError(f"unknown failure kind {ev.kind!r}")
        if ev.kind in FailureEvent.PAIR_KINDS:
            if not (isinstance(ev.target, tuple) and len(ev.target) == 2):
                raise ValueError(
                    f"{ev.kind} target must be an (a, b) host pair, got {ev.target!r}"
                )
            for h in ev.target:
                if h not in self.network.hosts:
                    raise ValueError(f"{ev.kind} names unknown host {h!r}")
        else:
            if not isinstance(ev.target, str):
                raise ValueError(
                    f"{ev.kind} target must be a host name, got {ev.target!r}"
                )
            if ev.target not in self.network.hosts:
                raise ValueError(f"{ev.kind} names unknown host {ev.target!r}")

    def _execute(self, ev: FailureEvent):
        yield self.sim.sleep(ev.at - self.sim.now)
        if ev.kind == "crash":
            self.network.kill(ev.target)
            if self.on_crash is not None:
                self.on_crash(ev.target)
        elif ev.kind == "restart":
            self.network.revive(ev.target)
            if self.on_restart is not None:
                self.on_restart(ev.target)
        elif ev.kind == "isolate":
            self.network.isolate(ev.target)
        elif ev.kind == "unisolate":
            self.network.unisolate(ev.target)
        elif ev.kind == "partition":
            a, b = ev.target
            self.network.partition(a, b)
        elif ev.kind == "heal":
            a, b = ev.target
            self.network.heal(a, b)
        elif ev.kind == "partition_oneway":
            a, b = ev.target
            self.network.partition_oneway(a, b)
        elif ev.kind == "heal_oneway":
            a, b = ev.target
            self.network.heal_oneway(a, b)
        self.executed.append(ev)


def random_crash_schedule(
    rng: random.Random,
    hosts: list[str],
    *,
    horizon: float,
    crashes: int,
    min_downtime: float,
    max_downtime: float,
) -> list[FailureEvent]:
    """Generate crash/restart pairs for random hosts over [0, horizon].

    Restart times are clamped to the horizon so every crashed host comes
    back before the scenario ends — the churn experiment asserts full
    recovery, which needs all servers eventually online.

    Windows are non-overlapping *per host*: a host picked twice gets two
    disjoint [crash, restart] intervals.  Overlap would be nonsense — the
    earlier pair's ``restart`` would revive the host mid-way through the
    later pair's downtime, so the schedule would claim N crash windows but
    deliver fewer, and property tests over downtime accounting would lie.
    Candidate windows colliding with a host's existing ones are re-sampled
    (bounded), so the schedule always contains exactly *crashes* pairs.
    """
    if min_downtime > max_downtime:
        raise ValueError("min_downtime > max_downtime")
    events: list[FailureEvent] = []
    taken: dict[str, list[tuple[float, float]]] = {}
    for _ in range(crashes):
        for _attempt in range(1000):
            host = rng.choice(hosts)
            at = rng.uniform(0, horizon * 0.7)
            downtime = rng.uniform(min_downtime, max_downtime)
            back = min(at + downtime, horizon)
            if all(back < s or e < at for s, e in taken.get(host, [])):
                break
        else:
            raise ValueError(
                "could not place non-overlapping crash windows; "
                "lower crashes or downtime relative to the horizon"
            )
        taken.setdefault(host, []).append((at, back))
        events.append(FailureEvent(at=at, kind="crash", target=host))
        events.append(FailureEvent(at=back, kind="restart", target=host))
    return sorted(events, key=lambda e: e.at)


#: begin kind -> the kind that undoes it.
_RECOVERY = {
    "crash": "restart",
    "isolate": "unisolate",
    "partition": "heal",
    "partition_oneway": "heal_oneway",
}


def random_chaos_schedule(
    rng: random.Random,
    hosts: list[str],
    *,
    horizon: float,
    events: int,
    min_duration: float,
    max_duration: float,
    kinds: tuple[str, ...] = ("crash", "isolate", "partition_oneway"),
) -> list[FailureEvent]:
    """Generate *events* begin/recover pairs mixing failure modes.

    Each event picks a kind from *kinds*, a target (one host, or an
    ordered pair for the one-way partition), and a bounded outage window
    clamped to the horizon — so, as in :func:`random_crash_schedule`,
    every injected failure is eventually undone and a soak test can
    assert full recovery.  Windows are non-overlapping per involved host,
    which keeps the begin/recover pairing sound (an overlapping window's
    recovery would undo the wrong outage).
    """
    if min_duration > max_duration:
        raise ValueError("min_duration > max_duration")
    for kind in kinds:
        if kind not in _RECOVERY:
            raise ValueError(f"kind {kind!r} has no recovery action")
    if "partition_oneway" in kinds or "partition" in kinds:
        if len(hosts) < 2:
            raise ValueError("partition kinds need at least two hosts")
    out: list[FailureEvent] = []
    taken: dict[str, list[tuple[float, float]]] = {}

    def _free(host: str, at: float, back: float) -> bool:
        return all(back < s or e < at for s, e in taken.get(host, []))

    for _ in range(events):
        for _attempt in range(1000):
            kind = kinds[rng.randrange(len(kinds))]
            at = rng.uniform(0, horizon * 0.7)
            back = min(at + rng.uniform(min_duration, max_duration), horizon)
            if kind in FailureEvent.PAIR_KINDS:
                a, b = rng.sample(hosts, 2)
                target: object = (a, b)
                involved = [a, b]
            else:
                target = rng.choice(hosts)
                involved = [target]
            if all(_free(h, at, back) for h in involved):
                break
        else:
            raise ValueError(
                "could not place non-overlapping chaos windows; "
                "lower events or duration relative to the horizon"
            )
        for h in involved:
            taken.setdefault(h, []).append((at, back))
        out.append(FailureEvent(at=at, kind=kind, target=target))
        out.append(FailureEvent(at=back, kind=_RECOVERY[kind], target=target))
    return sorted(out, key=lambda e: e.at)
