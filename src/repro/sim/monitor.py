"""Measurement utilities: histograms, time series, summaries.

Every experiment reports through these so EXPERIMENTS.md rows share one
vocabulary (count / mean / p50 / p95 / p99 / max).  Percentiles use the
nearest-rank method on the sorted sample — simple, exact, and adequate for
the sample sizes the benches produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Histogram", "TimeSeries", "Summary"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def format(self, scale: float = 1.0, unit: str = "") -> str:
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean * scale:.2f}{unit} "
            f"p50={self.p50 * scale:.2f}{unit} p95={self.p95 * scale:.2f}{unit} "
            f"p99={self.p99 * scale:.2f}{unit} max={self.maximum * scale:.2f}{unit}"
        )


class Histogram:
    """An accumulating sample with percentile queries."""

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        self._values.append(value)
        self._sorted = False

    def extend(self, values) -> None:
        self._values.extend(values)
        self._sorted = False

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s samples into this histogram (returns self).

        The aggregation path for per-node histograms: an exporter merges
        every node's series into a fresh cluster-total histogram whose
        percentiles are exact over the union sample.
        """
        if other._values:
            self._values.extend(other._values)
            self._sorted = False
        return self

    def __len__(self) -> int:
        return len(self._values)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self._values:
            raise ValueError("empty histogram")
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        self._ensure_sorted()
        if p == 0:
            return self._values[0]
        rank = math.ceil(p / 100 * len(self._values))
        return self._values[rank - 1]

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty histogram")
        return sum(self._values) / len(self._values)

    def summary(self) -> Summary:
        """Snapshot summary of the current sample.

        The empty case consistently carries ``count=0`` with zeroed fields
        (not NaN) so summaries stay strict-JSON-serializable and mergeable.
        The computation works on a single snapshot of the sample taken up
        front, so a ``record()`` landing between the emptiness check and
        the percentile reads (the concurrent-mutation case) cannot make
        the size observed by ``count`` disagree with the ranks used for
        the percentiles — let alone raise.
        """
        values = self._values
        n = len(values)
        if n == 0:
            return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if not self._sorted and n == len(self._values):
            values.sort()
            self._sorted = True
        else:
            values = sorted(values[:n])

        def rank(p: float) -> float:
            return values[max(0, math.ceil(p / 100 * n) - 1)]

        return Summary(
            count=n,
            mean=sum(values) / n,
            p50=rank(50),
            p95=rank(95),
            p99=rank(99),
            minimum=values[0],
            maximum=values[n - 1],
        )


@dataclass
class TimeSeries:
    """(time, value) pairs — cache population over time, load curves, etc."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError("empty series")
        return self.values[-1]

    def max(self) -> float:
        return max(self.values)

    def steady_state_mean(self, skip_fraction: float = 0.5) -> float:
        """Mean of the tail of the series (warm-up skipped)."""
        if not self.values:
            raise ValueError("empty series")
        start = int(len(self.values) * skip_fraction)
        tail = self.values[start:] or self.values[-1:]
        return sum(tail) / len(tail)
