"""A deterministic discrete-event simulation kernel.

The cluster experiments need thousand-client concurrency, microsecond
latencies and reproducible failure schedules — none of which are practical
(or convincing) with real threads and real sockets in Python.  No DES
library is available offline, so this module implements one from scratch in
the style of SimPy: *processes* are plain generators that ``yield`` the
events they wait on, and a single-threaded scheduler advances a virtual
clock from event to event.

Design rules:

* **Determinism.**  The event heap is ordered by ``(time, sequence)``;
  simultaneous events fire in scheduling order.  All randomness enters
  through explicitly seeded ``random.Random`` instances owned by the caller.
* **No wall clock.**  ``sim.now`` is the only time there is.  Virtual time
  advances instantaneously between events, so an 8-hour cache lifetime costs
  nothing to simulate.
* **Small surface.**  Processes wait on: a :class:`Timeout`, another
  :class:`Process` (join), a bare :class:`Event` (signal), or the composite
  :class:`AnyOf` / :class:`AllOf`.  That is enough to express every protocol
  in the paper.

Example::

    sim = Simulator()

    def pinger():
        yield sim.timeout(1.0)
        return "pong"

    def waiter():
        result = yield sim.process(pinger())
        assert sim.now == 1.0 and result == "pong"

    sim.process(waiter())
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.sim.errors import Interrupt, SimError, StopSimulation

__all__ = ["Event", "Timeout", "Process", "AnyOf", "AllOf", "Simulator"]

_PENDING = object()


class Event:
    """A one-shot occurrence processes can wait on.

    Events start *pending*; :meth:`succeed` or :meth:`fail` triggers them,
    after which every waiting callback runs at the current simulation time.
    Triggering twice is an error — it would mean two owners disagree about
    what happened.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._exception: BaseException | None = None

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimError("event value read before trigger")
        return self._value

    @property
    def ok(self) -> bool:
        """True when triggered successfully (safe to read ``value``)."""
        return self._value is not _PENDING and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimError("event already triggered")
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._exception = exception
        self.sim._enqueue(self)
        return self

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None, "event fired twice"
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout {delay}")
        super().__init__(sim)
        self.delay = delay
        # The value is deferred until the heap pops us: a Timeout must not
        # look triggered before its time arrives (AnyOf inspects children).
        self._pending_value = value
        sim._enqueue(self, delay)

    def _fire(self) -> None:
        self._value = self._pending_value
        super()._fire()


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields events; when a yielded event triggers, the
    generator resumes with the event's value (or the event's exception is
    thrown into it).  The process's own event value is the generator's
    return value, so ``result = yield sim.process(g())`` both joins and
    collects.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str | None = None) -> None:
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen).__name__}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Event | None = None
        # Kick off at the current time, before any already-scheduled event
        # at a *later* time but after events already queued for now.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A dead process is left alone (interrupting a finished server during
        teardown should be a no-op, not a crash).
        """
        if not self.is_alive:
            return
        poke = Event(self.sim)
        poke.callbacks.append(lambda _e: self._throw(Interrupt(cause)))
        poke.succeed()

    # -- internals ---------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            return  # interrupted to death while this wakeup was in flight
        self._waiting_on = None
        try:
            if trigger._exception is not None:
                target = self.gen.throw(trigger._exception)
            else:
                target = self.gen.send(trigger._value if trigger._value is not _PENDING else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process died; propagate via event
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        # Detach from whatever we were waiting on; its later trigger must
        # not resume us twice.
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(SimError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.sim is not self.sim:
            self._throw(SimError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (at the current time).
            poke = Event(self.sim)
            poke._value = target._value
            poke._exception = target._exception
            poke.callbacks.append(self._resume)
            self.sim._enqueue(poke)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Shared machinery for AnyOf/AllOf."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        self._pending = len(self.events)
        for ev in self.events:
            if ev.callbacks is None:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.ok}

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of its events does (value: dict of done)."""

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all of its events have (value: dict of all values)."""

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.events_processed = 0
        # Observability (repro.obs), off by default.  Instruments are
        # resolved once at attach; step() pays a single None check when
        # disabled — the kernel is the hottest loop in the repo.
        self._obs_events = None
        self._obs_heap = None

    @property
    def now(self) -> float:
        return self._now

    def attach_observability(self, obs) -> None:
        """Bind *obs* (a :class:`repro.obs.Observability`) to this kernel.

        The hub's clock becomes sim time and the kernel starts counting
        processed events and sampling its event-heap depth.
        """
        obs.bind_clock(lambda: self._now)
        self._obs_events = obs.metrics.counter("sim_events_total")
        self._obs_heap = obs.metrics.gauge("sim_heap_depth")

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str | None = None) -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- running -----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _seq, event = heapq.heappop(self._heap)
        assert when >= self._now, "time went backwards"
        self._now = when
        self.events_processed += 1
        if self._obs_events is not None:
            self._obs_events.inc()
            self._obs_heap.value = len(self._heap)
        event._fire()

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains or the clock passes *until*.

        With *until* given, the clock is left exactly at *until* (events
        scheduled later stay queued), which makes staged test scenarios
        ("run 5 simulated seconds, assert, run more") straightforward.
        """
        try:
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                self.step()
        except StopSimulation:
            return
        if until is not None and until > self._now:
            self._now = until

    def run_until_process(self, proc: Process, limit: float | None = None) -> Any:
        """Run until *proc* finishes; return its value (raising its error).

        ``limit`` bounds simulated time as a safety net against deadlocked
        protocols in tests.
        """
        while not proc.triggered:
            if not self._heap:
                raise SimError(f"deadlock: {proc.name!r} waits but no events remain")
            if limit is not None and self._heap[0][0] > limit:
                raise SimError(f"time limit {limit} exceeded waiting for {proc.name!r}")
            self.step()
        return proc.value
