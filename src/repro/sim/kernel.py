"""A deterministic discrete-event simulation kernel.

The cluster experiments need thousand-client concurrency, microsecond
latencies and reproducible failure schedules — none of which are practical
(or convincing) with real threads and real sockets in Python.  No DES
library is available offline, so this module implements one from scratch in
the style of SimPy: *processes* are plain generators that ``yield`` the
events they wait on, and a single-threaded scheduler advances a virtual
clock from event to event.

Design rules:

* **Determinism.**  The event heap is ordered by ``(time, sequence)``;
  simultaneous events fire in scheduling order.  All randomness enters
  through explicitly seeded ``random.Random`` instances owned by the caller.
* **No wall clock.**  ``sim.now`` is the only time there is.  Virtual time
  advances instantaneously between events, so an 8-hour cache lifetime costs
  nothing to simulate.
* **Small surface.**  Processes wait on: a :class:`Timeout`, another
  :class:`Process` (join), a bare :class:`Event` (signal), or the composite
  :class:`AnyOf` / :class:`AllOf`.  That is enough to express every protocol
  in the paper.
* **Never allocate on the dispatch path.**  This is the hottest loop in the
  repo (``benchmarks/perf`` tracks it), so the kernel follows the paper's
  allocation discipline: process bootstrap, interrupt delivery and
  already-processed wakeups go through a *deferred-resume ring* — a FIFO of
  ``(seq, fn, value, exc)`` tuples serviced in exact ``(time, seq)`` order
  with the heap — instead of allocating throwaway ``Event`` objects, and
  :meth:`Simulator.sleep` hands out pooled :class:`Timeout` storage that the
  dispatch loop recycles after firing.  scalla-lint rule SCA003 keeps
  per-event allocations out of ``step()``/``run()``.

Example::

    sim = Simulator()

    def pinger():
        yield sim.timeout(1.0)
        return "pong"

    def waiter():
        result = yield sim.process(pinger())
        assert sim.now == 1.0 and result == "pong"

    sim.process(waiter())
    sim.run()
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.sim.errors import Interrupt, SimError, StopSimulation

__all__ = ["Event", "Timeout", "Process", "AnyOf", "AllOf", "Simulator"]

_PENDING = object()

_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A one-shot occurrence processes can wait on.

    Events start *pending*; :meth:`succeed` or :meth:`fail` triggers them,
    after which every waiting callback runs at the current simulation time.
    Triggering twice is an error — it would mean two owners disagree about
    what happened.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._exception: BaseException | None = None

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimError("event value read before trigger")
        return self._value

    @property
    def ok(self) -> bool:
        """True when triggered successfully (safe to read ``value``)."""
        return self._value is not _PENDING and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING or self._exception is not None:
            raise SimError("event already triggered")
        self._value = value
        sim = self.sim
        _heappush(sim._heap, (sim._now, sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not _PENDING or self._exception is not None:
            raise SimError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._exception = exception
        sim = self.sim
        _heappush(sim._heap, (sim._now, sim._seq, self))
        sim._seq += 1
        return self

    def _fire(self) -> None:
        # callbacks is never None here: the heap holds each event exactly
        # once, so _fire runs at most once per trigger.
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay", "_pending_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout {delay}")
        # Event.__init__ and Simulator._enqueue, flattened: a Timeout is
        # born once per simulated delay, squarely on the hot path.
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        self.delay = delay
        # The value is deferred until the heap pops us: a Timeout must not
        # look triggered before its time arrives (AnyOf inspects children).
        self._pending_value = value
        _heappush(sim._heap, (sim._now + delay, sim._seq, self))
        sim._seq += 1

    def _fire(self) -> None:
        self._value = self._pending_value
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)


class _PooledTimeout(Timeout):
    """Kernel-owned :class:`Timeout` storage, recycled after dispatch.

    Handed out by :meth:`Simulator.sleep`; the dispatch loop returns the
    object to the simulator's free list right after its waiter runs, so
    the caller must *only* yield it and never keep a reference past the
    resume (exactly the ``yield sim.sleep(d)`` idiom).

    Because that contract means at most one waiter — the yielding process
    — the waiter lives in the dedicated ``_waiter`` slot and is resumed
    directly, skipping the callback list entirely.  The list machinery
    still works as a fallback (``_wait_on``'s slow path and condition
    children append to ``callbacks`` like any event) so a stray composite
    over a pooled timeout degrades to correct, not silent.
    """

    __slots__ = ("_cb_store", "_waiter")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        Timeout.__init__(self, sim, delay, value)
        self._waiter: Process | None = None

    def _fire(self) -> None:
        value = self._pending_value
        self._value = value
        callbacks = self.callbacks
        self.callbacks = None
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter._resume_core(value, None)
        if callbacks:
            for cb in callbacks:
                cb(self)
            callbacks.clear()
        # Keep the (empty) waiter list for the next lease of this
        # storage — one fewer allocation per recycled sleep.
        self._cb_store = callbacks


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields events; when a yielded event triggers, the
    generator resumes with the event's value (or the event's exception is
    thrown into it).  The process's own event value is the generator's
    return value, so ``result = yield sim.process(g())`` both joins and
    collects.
    """

    __slots__ = ("gen", "_send", "_name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str | None = None) -> None:
        try:
            # Bind send once: every resume uses it, and the fetch doubles
            # as the "is this a generator" check.
            self._send = gen.send
        except AttributeError:
            raise TypeError(
                f"process body must be a generator, got {type(gen).__name__}"
            ) from None
        # Event.__init__ flattened: one process is born per simulated
        # request in the cluster layer, so spawn cost is hot-path cost.
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        self.gen = gen
        self._name = name
        self._waiting_on: Event | None = None
        # Kick off at the current time, before any already-scheduled event
        # at a *later* time but after events already queued for now.  Goes
        # through the deferred-resume ring: same (time, seq) slot a
        # bootstrap Event would occupy, without allocating one.
        sim._ready.append((sim._seq, self._resume_core, None, None))
        sim._seq += 1

    @property
    def name(self) -> str:
        """Diagnostic label; resolved lazily — it only matters in errors."""
        return self._name or getattr(self.gen, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING and self._exception is None

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A dead process is left alone (interrupting a finished server during
        teardown should be a no-op, not a crash).
        """
        if self._value is not _PENDING or self._exception is not None:
            return
        self.sim._defer(self._interrupt_deferred, cause, None)

    # -- internals ---------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        # Mirror of _resume_core with the trigger unpacked inline; kept
        # as a separate body so event callbacks pay one call, not two.
        if self._value is not _PENDING or self._exception is not None:
            return  # interrupted to death while this wakeup was in flight
        self._waiting_on = None
        try:
            exc = trigger._exception
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self._send(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - process died; propagate via event
            self.fail(err)
            return
        if target.__class__ is _PooledTimeout and target.sim is self.sim:
            self._waiting_on = target
            target._waiter = self
        elif isinstance(target, Event) and target.sim is self.sim:
            self._waiting_on = target
            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.append(self._resume)
            else:
                sim = self.sim
                sim._ready.append((sim._seq, self._resume_core, target._value, target._exception))
                sim._seq += 1
        else:
            self._wait_on(target)

    def _resume_core(self, value: Any, exc: BaseException | None) -> None:
        """Advance the generator by one yielded event.

        Entered with the ``(value, exc)`` protocol by the deferred-resume
        ring and by pooled-timeout fires; event callbacks go through the
        inlined twin :meth:`_resume`.  The common wait-on cases are
        inlined below — a pooled timeout parks in its ``_waiter`` slot,
        other same-sim events get the callback — and :meth:`_wait_on`
        remains the slow path for yield errors.
        """
        if self._value is not _PENDING or self._exception is not None:
            return  # interrupted to death while this wakeup was in flight
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                # value is never _PENDING here: a failed trigger carries
                # its exception and takes the throw branch above.
                target = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - process died; propagate via event
            self.fail(err)
            return
        if target.__class__ is _PooledTimeout and target.sim is self.sim:
            self._waiting_on = target
            target._waiter = self
        elif isinstance(target, Event) and target.sim is self.sim:
            self._waiting_on = target
            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.append(self._resume)
            else:
                # Already processed: resume immediately (at the current
                # time), carrying the event's outcome through the ring.
                sim = self.sim
                sim._ready.append((sim._seq, self._resume_core, target._value, target._exception))
                sim._seq += 1
        else:
            self._wait_on(target)

    def _interrupt_deferred(self, cause: object, _exc: BaseException | None) -> None:
        self._throw(Interrupt(cause))

    def _throw(self, exc: BaseException) -> None:
        if self._value is not _PENDING or self._exception is not None:
            return
        # Detach from whatever we were waiting on; its later trigger must
        # not resume us twice.
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None:
            if waiting.__class__ is _PooledTimeout and waiting._waiter is self:
                waiting._waiter = None
            elif waiting.callbacks is not None:
                try:
                    waiting.callbacks.remove(self._resume)
                except ValueError:
                    pass
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(SimError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.sim is not self.sim:
            self._throw(SimError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (at the current time),
            # carrying the event's outcome through the ring.
            self.sim._defer(self._resume_core, target._value, target._exception)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Shared machinery for AnyOf/AllOf."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        self._pending = len(self.events)
        for ev in self.events:
            if ev.callbacks is None:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.ok}

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of its events does (value: dict of done)."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all of its events have (value: dict of all values)."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Simulator:
    """The event loop: a clock, a priority queue, and the deferred ring.

    Two dispatch sources, serviced in exact ``(time, seq)`` order:

    * ``_heap`` — triggered events and timeouts, ordered by
      ``(time, sequence)``;
    * ``_ready`` — the deferred-resume ring: immediate callbacks (process
      bootstrap, interrupts, already-processed wakeups) recorded as
      ``(seq, fn, value, exc)`` tuples.  Ring entries are always stamped
      at the current time, so the ring is FIFO and an entry runs before
      any heap event at a later time and interleaves by sequence number
      with heap events at the same time — bit-identical ordering to the
      throwaway bootstrap/poke ``Event`` objects it replaced, without the
      allocation.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._ready: deque[tuple[int, Callable, Any, BaseException | None]] = deque()
        self._timeout_pool: list[_PooledTimeout] = []
        self._seq = 0
        self.events_processed = 0
        # Observability (repro.obs), off by default.  Instruments are
        # resolved once at attach; the dispatch loop pays a single None
        # check when disabled — the kernel is the hottest loop in the repo.
        self._obs_events = None
        self._obs_heap = None

    @property
    def now(self) -> float:
        return self._now

    def attach_observability(self, obs) -> None:
        """Bind *obs* (a :class:`repro.obs.Observability`) to this kernel.

        The hub's clock becomes sim time and the kernel starts counting
        processed events and sampling its event-heap depth (heap plus
        ring, so the depth matches what a heap-only kernel reported).
        """
        obs.bind_clock(lambda: self._now)
        self._obs_events = obs.metrics.counter("sim_events_total")
        self._obs_heap = obs.metrics.gauge("sim_heap_depth")

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled :class:`Timeout` for the ``yield sim.sleep(d)`` idiom.

        Behaves exactly like :meth:`timeout`, but the returned object is
        kernel-owned storage that is recycled right after its callbacks
        run.  Use it when the timeout is yielded immediately and never
        stored, compared, or combined (no ``AnyOf``/``AllOf`` children,
        no keeping it across a resume) — the pattern of every
        fire-and-forget delay on the hot path.  Owners that need the
        object afterwards keep using :meth:`timeout`.
        """
        pool = self._timeout_pool
        if not pool:
            return _PooledTimeout(self, delay, value)
        if delay < 0:
            raise SimError(f"negative timeout {delay}")
        t = pool.pop()
        t.callbacks = t._cb_store
        t._value = _PENDING
        t._exception = None
        t.delay = delay
        t._pending_value = value
        _heappush(self._heap, (self._now + delay, self._seq, t))
        self._seq += 1
        return t

    def process(self, gen: Generator, name: str | None = None) -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def _defer(self, fn: Callable, value: Any, exc: BaseException | None) -> None:
        """Schedule ``fn(value, exc)`` at the current time, next sequence.

        The ring equivalent of enqueueing an immediately-succeeded Event:
        same position in the global (time, seq) order, no allocation
        beyond the ring tuple itself.
        """
        self._ready.append((self._seq, fn, value, exc))
        self._seq += 1

    # -- running -----------------------------------------------------------

    def _ring_first(self) -> bool:
        """True when the ring head precedes the heap head in (time, seq)."""
        if not self._ready:
            return False
        if not self._heap:
            return True
        top = self._heap[0]
        return top[0] > self._now or top[1] > self._ready[0][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if self._ring_first():
            seq, fn, value, exc = self._ready.popleft()
            self.events_processed += 1
            if self._obs_events is not None:
                self._obs_events.inc()
                self._obs_heap.value = len(self._heap) + len(self._ready)
            fn(value, exc)
            return
        when, _seq, event = heapq.heappop(self._heap)
        assert when >= self._now, "time went backwards"
        self._now = when
        self.events_processed += 1
        if self._obs_events is not None:
            self._obs_events.inc()
            self._obs_heap.value = len(self._heap) + len(self._ready)
        event._fire()
        if event.__class__ is _PooledTimeout:
            self._timeout_pool.append(event)

    def run(self, until: float | None = None) -> None:
        """Run until the queues drain or the clock passes *until*.

        With *until* given, the clock is left exactly at *until* (events
        scheduled later stay queued), which makes staged test scenarios
        ("run 5 simulated seconds, assert, run more") straightforward.

        The loop body is a hand-inlined :meth:`step` with the heap ops,
        queues and pool bound to locals — this is the hot loop the
        ``benchmarks/perf`` kernel suite tracks, so it avoids repeated
        attribute lookups and per-event method-call overhead.
        """
        heap = self._heap
        ready = self._ready
        pool = self._timeout_pool
        pop = _heappop
        popleft = ready.popleft
        # Observability instruments are bound before any run (attach is a
        # setup-time call), so the loop hoists the None check to one load.
        obs_events = self._obs_events
        obs_heap = self._obs_heap
        pooled = _PooledTimeout
        processed = 0
        try:
            if until is None and obs_events is None:
                # The common case — whole-workload runs without metrics —
                # pays for nothing but dispatch itself.
                while heap or ready:
                    if ready and (
                        not heap or heap[0][0] > self._now or heap[0][1] > ready[0][0]
                    ):
                        _seq, fn, value, exc = popleft()
                        processed += 1
                        fn(value, exc)
                        continue
                    when, _seq, event = pop(heap)
                    self._now = when
                    processed += 1
                    if event.__class__ is pooled:
                        # _PooledTimeout._fire + recycle, inlined.
                        value = event._pending_value
                        event._value = value
                        callbacks = event.callbacks
                        event.callbacks = None
                        waiter = event._waiter
                        if waiter is not None:
                            event._waiter = None
                            waiter._resume_core(value, None)
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                            callbacks.clear()
                        event._cb_store = callbacks
                        pool.append(event)
                    else:
                        event._fire()
                return
            while heap or ready:
                if ready and (not heap or heap[0][0] > self._now or heap[0][1] > ready[0][0]):
                    _seq, fn, value, exc = popleft()
                    processed += 1
                    if obs_events is not None:
                        obs_events.inc()
                        obs_heap.value = len(heap) + len(ready)
                    fn(value, exc)
                    continue
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                when, _seq, event = pop(heap)
                self._now = when
                processed += 1
                if obs_events is not None:
                    obs_events.inc()
                    obs_heap.value = len(heap) + len(ready)
                event._fire()
                if event.__class__ is pooled:
                    pool.append(event)  # _fire left it drained and detached
        except StopSimulation:
            return
        finally:
            self.events_processed += processed
        if until is not None and until > self._now:
            self._now = until

    def run_until_process(self, proc: Process, limit: float | None = None) -> Any:
        """Run until *proc* finishes; return its value (raising its error).

        ``limit`` bounds simulated time as a safety net against deadlocked
        protocols in tests.
        """
        while not proc.triggered:
            if not self._heap and not self._ready:
                raise SimError(f"deadlock: {proc.name!r} waits but no events remain")
            if limit is not None:
                next_time = self._now if self._ready else self._heap[0][0]
                if next_time > limit:
                    raise SimError(f"time limit {limit} exceeded waiting for {proc.name!r}")
            self.step()
        return proc.value
