"""Latency distributions for simulated links and services.

The paper quotes its latencies against specific 2012 hardware (1 Gb
Ethernet, "servers respond within 100us").  The experiments therefore
parameterize every delay through a :class:`LatencyModel`, so a bench can
state "per-hop wire latency 10 µs, server think time 90-110 µs" explicitly
and EXPERIMENTS.md can report the parameterization next to the results.

All models draw from a caller-supplied ``random.Random`` — the simulation
owns the seed, the model owns only the shape.
"""

from __future__ import annotations

import math
import random

__all__ = ["LatencyModel", "Fixed", "Uniform", "LogNormal", "Empirical"]


class LatencyModel:
    """A non-negative delay distribution."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Expected value; used for analytical cross-checks in benches."""
        raise NotImplementedError


class Fixed(LatencyModel):
    """A constant delay — the workhorse for deterministic protocol tests."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Fixed({self.value!r})"


class Uniform(LatencyModel):
    """Uniform on [lo, hi] — crude jitter around a nominal wire latency."""

    def __init__(self, lo: float, hi: float) -> None:
        if not 0 <= lo <= hi:
            raise ValueError("need 0 <= lo <= hi")
        self.lo = lo
        self.hi = hi

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2

    def __repr__(self) -> str:
        return f"Uniform({self.lo!r}, {self.hi!r})"


class LogNormal(LatencyModel):
    """Log-normal with given median and sigma — heavy network tails.

    Real RPC latency is right-skewed; the fast-response-queue experiment
    (E6) uses this to show the 133 ms bound comfortably covers the tail the
    paper describes.
    """

    def __init__(self, median: float, sigma: float) -> None:
        if median <= 0 or sigma < 0:
            raise ValueError("median must be positive, sigma non-negative")
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    @property
    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2)

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median!r}, sigma={self.sigma!r})"


class Empirical(LatencyModel):
    """Resamples a measured list of delays (bootstrap-style)."""

    def __init__(self, samples: list[float]) -> None:
        if not samples:
            raise ValueError("need at least one sample")
        if any(s < 0 for s in samples):
            raise ValueError("latencies must be non-negative")
        self.samples = list(samples)

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.samples)})"
