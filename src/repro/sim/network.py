"""The simulated network: hosts, links, partitions, and message delivery.

A :class:`Host` is a named endpoint with an inbox (:class:`~repro.sim.sync.Store`);
daemons loop on the inbox.  The :class:`Network` delivers messages between
hosts after a sampled link latency, drops traffic to dead or partitioned
hosts, and counts everything — message counts are primary data for the
protocol-efficiency experiment (E7) and the registration experiment (E11).

Message payloads are opaque to the network; the cluster layer defines its
own message dataclasses (:mod:`repro.cluster.protocol`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.sync import Store

__all__ = ["Host", "Envelope", "NetworkStats", "Network"]


@dataclass
class Envelope:
    """A message in flight / delivered."""

    src: str
    dst: str
    payload: Any
    sent_at: float
    delivered_at: float = -1.0

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    bytes_sent: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_dead + self.dropped_partition


class Host:
    """A network endpoint.  ``alive`` gates delivery; daemons also watch it."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.inbox = Store(sim)
        self.alive = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Host {self.name} {state}>"


class Network:
    """Delivers messages between registered hosts.

    Per-link latency overrides allow modelling WAN federations (a manager in
    one country, servers in another — §IV-A's deployments); the default
    model applies everywhere else.  Partitions are symmetric: a partitioned
    pair drops traffic both ways, which is how the failure-injection
    experiments model switch failures distinct from host crashes.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        default_latency: LatencyModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.sim = sim
        self.default_latency = default_latency if default_latency is not None else Fixed(10e-6)
        self.rng = rng if rng is not None else random.Random(0)
        self.hosts: dict[str, Host] = {}
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        self._host_site: dict[str, str] = {}
        self._site_latency: dict[frozenset[str], LatencyModel] = {}
        self._partitioned: set[frozenset[str]] = set()
        self.stats = NetworkStats()

    # -- topology management -------------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(self.sim, name)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def set_link_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """Override latency for the (symmetric) link a<->b."""
        self._link_latency[(a, b)] = model
        self._link_latency[(b, a)] = model

    def set_host_site(self, host: str, site: str) -> None:
        """Place *host* at a named site (WAN federation modelling, §IV-A)."""
        if host not in self.hosts:
            raise KeyError(f"unknown host {host!r}")
        self._host_site[host] = site

    def set_site_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """One-way latency between sites *a* and *b* (symmetric)."""
        self._site_latency[frozenset((a, b))] = model

    def site_of(self, host: str) -> str | None:
        return self._host_site.get(host)

    def federate(
        self,
        sites: dict[str, list[str]],
        *,
        wan_latency: LatencyModel,
        pair_latency: dict[frozenset[str], LatencyModel] | None = None,
    ) -> None:
        """Build a WAN federation topology in one call (§IV-A).

        *sites* maps site name -> hosts placed there; every distinct site
        pair gets *wan_latency* one-way unless *pair_latency* overrides
        that specific pair.  Intra-site traffic keeps the default model —
        the paper's deployments are fast LANs joined by slow links.
        """
        for site, hosts in sites.items():
            for h in hosts:
                self.set_host_site(h, site)
        names = sorted(sites)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                model = wan_latency
                if pair_latency is not None:
                    model = pair_latency.get(frozenset((a, b)), wan_latency)
                self.set_site_latency(a, b, model)

    def latency_model(self, src: str, dst: str) -> LatencyModel:
        """Resolution order: explicit link override, then the site pair
        (when both hosts are placed at different sites), then the default."""
        override = self._link_latency.get((src, dst))
        if override is not None:
            return override
        s_src, s_dst = self._host_site.get(src), self._host_site.get(dst)
        if s_src is not None and s_dst is not None and s_src != s_dst:
            site_model = self._site_latency.get(frozenset((s_src, s_dst)))
            if site_model is not None:
                return site_model
        return self.default_latency

    # -- failures ------------------------------------------------------------

    def kill(self, name: str) -> None:
        """Mark a host dead: in-flight and future messages to it vanish."""
        self.hosts[name].alive = False

    def revive(self, name: str) -> None:
        self.hosts[name].alive = True

    def partition(self, a: str, b: str) -> None:
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitioned

    # -- the data path ---------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, *, size: int = 0) -> bool:
        """Queue *payload* for delivery; returns False when dropped now.

        Drops are silent to the sender (as on a real network); the return
        value exists only for tests.  A message to a host that dies while
        the message is in flight is also lost — checked again at delivery.
        """
        self.stats.sent += 1
        self.stats.bytes_sent += size
        if self.partitioned(src, dst):
            self.stats.dropped_partition += 1
            return False
        target = self.hosts[dst]
        if not target.alive:
            self.stats.dropped_dead += 1
            return False
        env = Envelope(src=src, dst=dst, payload=payload, sent_at=self.sim.now)
        delay = self.latency_model(src, dst).sample(self.rng)

        def deliver():
            yield self.sim.sleep(delay)
            if not target.alive or self.partitioned(src, dst):
                self.stats.dropped_dead += not target.alive
                self.stats.dropped_partition += target.alive
                return
            env.delivered_at = self.sim.now
            self.stats.delivered += 1
            target.inbox.put(env)

        self.sim.process(deliver(), name=f"deliver:{src}->{dst}")
        return True
