"""The simulated network: hosts, links, partitions, and message delivery.

A :class:`Host` is a named endpoint with an inbox (:class:`~repro.sim.sync.Store`);
daemons loop on the inbox.  The :class:`Network` delivers messages between
hosts after a sampled link latency, drops traffic to dead or partitioned
hosts, and counts everything — message counts are primary data for the
protocol-efficiency experiment (E7) and the registration experiment (E11).

Message payloads are opaque to the network; the cluster layer defines its
own message dataclasses (:mod:`repro.cluster.protocol`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.sync import Store

__all__ = ["Host", "Envelope", "NetworkStats", "ChaosConfig", "Network"]


@dataclass
class ChaosConfig:
    """Gray-failure injection knobs: the failures that are not clean crashes.

    Every probability is per message.  Chaos draws come from a dedicated
    RNG (seeded here), fully separate from the latency RNG — with every
    knob at zero the chaos path draws *nothing*, so event streams stay
    bit-identical to a run built without chaos at all.
    """

    #: Probability a message silently vanishes on the wire.
    drop_prob: float = 0.0
    #: Probability a message is delivered twice (second copy re-samples
    #: its own latency — duplicates arrive out of order).
    dup_prob: float = 0.0
    #: Probability a message eats an extra delay spike.
    delay_spike_prob: float = 0.0
    #: Maximum spike size (seconds); actual spike is uniform in (0, max).
    delay_spike: float = 0.05
    #: Seed for the dedicated chaos RNG.
    seed: int = 0

    @property
    def enabled(self) -> bool:
        return self.drop_prob > 0 or self.dup_prob > 0 or self.delay_spike_prob > 0


@dataclass
class Envelope:
    """A message in flight / delivered."""

    src: str
    dst: str
    payload: Any
    sent_at: float
    delivered_at: float = -1.0

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    bytes_sent: int = 0
    #: Messages the chaos layer ate, duplicated, or spiked (gray failures).
    chaos_dropped: int = 0
    chaos_duplicated: int = 0
    chaos_delayed: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_dead + self.dropped_partition + self.chaos_dropped


class Host:
    """A network endpoint.  ``alive`` gates delivery; daemons also watch it."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.inbox = Store(sim)
        self.alive = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Host {self.name} {state}>"


class Network:
    """Delivers messages between registered hosts.

    Per-link latency overrides allow modelling WAN federations (a manager in
    one country, servers in another — §IV-A's deployments); the default
    model applies everywhere else.  Partitions are symmetric: a partitioned
    pair drops traffic both ways, which is how the failure-injection
    experiments model switch failures distinct from host crashes.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        default_latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        chaos: ChaosConfig | None = None,
        obs=None,
    ) -> None:
        self.sim = sim
        self.default_latency = default_latency if default_latency is not None else Fixed(10e-6)
        self.rng = rng if rng is not None else random.Random(0)
        self.hosts: dict[str, Host] = {}
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        self._host_site: dict[str, str] = {}
        self._site_latency: dict[frozenset[str], LatencyModel] = {}
        self._partitioned: set[frozenset[str]] = set()
        #: One-sided partitions: (src, dst) pairs whose src->dst direction
        #: is black-holed while dst->src still flows — the asymmetric-route
        #: failure symmetric partitions cannot model.
        self._partitioned_oneway: set[tuple[str, str]] = set()
        #: Isolated hosts: alive (daemons keep running) but all traffic to
        #: *and* from them is dropped — a gray failure, not a crash.
        self._isolated: set[str] = set()
        self.chaos = chaos if chaos is not None and chaos.enabled else None
        self._chaos_rng = random.Random(chaos.seed) if self.chaos is not None else None
        self.stats = NetworkStats()
        self._obs = obs
        if obs is not None:
            self._m_chaos_dropped = obs.metrics.counter("chaos_msgs_dropped_total")

    # -- topology management -------------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(self.sim, name)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def set_link_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """Override latency for the (symmetric) link a<->b."""
        self._link_latency[(a, b)] = model
        self._link_latency[(b, a)] = model

    def set_host_site(self, host: str, site: str) -> None:
        """Place *host* at a named site (WAN federation modelling, §IV-A)."""
        if host not in self.hosts:
            raise KeyError(f"unknown host {host!r}")
        self._host_site[host] = site

    def set_site_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """One-way latency between sites *a* and *b* (symmetric)."""
        self._site_latency[frozenset((a, b))] = model

    def site_of(self, host: str) -> str | None:
        return self._host_site.get(host)

    def federate(
        self,
        sites: dict[str, list[str]],
        *,
        wan_latency: LatencyModel,
        pair_latency: dict[frozenset[str], LatencyModel] | None = None,
    ) -> None:
        """Build a WAN federation topology in one call (§IV-A).

        *sites* maps site name -> hosts placed there; every distinct site
        pair gets *wan_latency* one-way unless *pair_latency* overrides
        that specific pair.  Intra-site traffic keeps the default model —
        the paper's deployments are fast LANs joined by slow links.
        """
        for site, hosts in sites.items():
            for h in hosts:
                self.set_host_site(h, site)
        names = sorted(sites)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                model = wan_latency
                if pair_latency is not None:
                    model = pair_latency.get(frozenset((a, b)), wan_latency)
                self.set_site_latency(a, b, model)

    def latency_model(self, src: str, dst: str) -> LatencyModel:
        """Resolution order: explicit link override, then the site pair
        (when both hosts are placed at different sites), then the default."""
        override = self._link_latency.get((src, dst))
        if override is not None:
            return override
        s_src, s_dst = self._host_site.get(src), self._host_site.get(dst)
        if s_src is not None and s_dst is not None and s_src != s_dst:
            site_model = self._site_latency.get(frozenset((s_src, s_dst)))
            if site_model is not None:
                return site_model
        return self.default_latency

    # -- failures ------------------------------------------------------------

    def kill(self, name: str) -> None:
        """Mark a host dead: in-flight and future messages to it vanish."""
        self.hosts[name].alive = False

    def revive(self, name: str) -> None:
        self.hosts[name].alive = True

    def partition(self, a: str, b: str) -> None:
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def partition_oneway(self, src: str, dst: str) -> None:
        """Black-hole the *src* -> *dst* direction only."""
        self._partitioned_oneway.add((src, dst))

    def heal_oneway(self, src: str, dst: str) -> None:
        self._partitioned_oneway.discard((src, dst))

    def isolate(self, name: str) -> None:
        """Cut *name* off from everyone without killing it (gray failure).

        Unlike O(n) pairwise partitions, this is one set entry; unlike
        :meth:`kill`, the host's daemons keep running — they just talk to
        a dead wire.
        """
        if name not in self.hosts:
            raise KeyError(f"unknown host {name!r}")
        self._isolated.add(name)

    def unisolate(self, name: str) -> None:
        self._isolated.discard(name)

    def partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitioned

    def _blocked(self, src: str, dst: str) -> bool:
        """All the ways the src->dst direction can be severed."""
        if frozenset((src, dst)) in self._partitioned:
            return True
        if (src, dst) in self._partitioned_oneway:
            return True
        return src in self._isolated or dst in self._isolated

    # -- the data path ---------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, *, size: int = 0) -> bool:
        """Queue *payload* for delivery; returns False when dropped now.

        Drops are silent to the sender (as on a real network); the return
        value exists only for tests.  A message to a host that dies while
        the message is in flight is also lost — checked again at delivery.
        """
        self.stats.sent += 1
        self.stats.bytes_sent += size
        if self._blocked(src, dst):
            self.stats.dropped_partition += 1
            return False
        target = self.hosts[dst]
        if not target.alive:
            self.stats.dropped_dead += 1
            return False
        delay = self.latency_model(src, dst).sample(self.rng)
        delays = [delay]
        if self.chaos is not None:
            cz, crng = self.chaos, self._chaos_rng
            if cz.drop_prob and crng.random() < cz.drop_prob:
                self.stats.chaos_dropped += 1
                if self._obs is not None:
                    self._m_chaos_dropped.inc()
                return False
            if cz.dup_prob and crng.random() < cz.dup_prob:
                # Duplicate re-samples its own latency (chaos RNG), so the
                # two copies can arrive out of order.
                delays.append(self.latency_model(src, dst).sample(crng))
                self.stats.chaos_duplicated += 1
            if cz.delay_spike_prob and crng.random() < cz.delay_spike_prob:
                delays[0] += cz.delay_spike * crng.random()
                self.stats.chaos_delayed += 1

        sent_at = self.sim.now

        def deliver(d: float):
            yield self.sim.sleep(d)
            if not target.alive or self._blocked(src, dst):
                self.stats.dropped_dead += not target.alive
                self.stats.dropped_partition += target.alive
                return
            env = Envelope(src=src, dst=dst, payload=payload, sent_at=sent_at)
            env.delivered_at = self.sim.now
            self.stats.delivered += 1
            target.inbox.put(env)

        for d in delays:
            self.sim.process(deliver(d), name=f"deliver:{src}->{dst}")
        return True
