"""Cluster membership and lazy cache-accuracy corrections.

Cached location information in Scalla is *approximate*: "once recorded it is
not corrected when the external configuration changes" (paper §III-A4).
Correcting millions of cached objects eagerly on every membership change
would be O(cache size); instead the cmsd corrects an object only when it is
fetched, using two pieces of O(1)-maintained state:

* ``V_m`` — per exported path, the set of servers *eligible* to hold files
  under that path (maintained at login/drop time), and
* the connection clock — an array ``C[0..63]`` of per-slot counters plus a
  master counter ``N_c``; ``C[j]`` records the "time" (N_c value) at which
  the server in slot *j* last connected.

When a location object whose snapshot ``C_n`` differs from the current
``N_c`` is fetched, the correction vector ``V_c`` (servers that connected
after the object was cached) is generated and applied per Figure 3::

    V_q = (V_q | V_c) & V_m
    V_h = V_h & ~V_q & V_m
    V_p = V_p & ~V_q & V_m
    C_n = N_c

(The published figure typesets the complement bar over ``V_q`` ambiguously;
the prose — "the old value less the servers that need to be queried" — fixes
the intended ``& ~V_q``.)

The four membership events of §III-A4 map to methods here:

1. *server disconnects*   → :meth:`ClusterMembership.disconnect` (slot kept,
   marked offline; fetched objects move its bits from V_h/V_p to V_q),
2. *server dropped*       → :meth:`ClusterMembership.drop` (removed from all
   V_m; the V_m mask applied at every fetch scrubs it from cached vectors),
3. *un-dropped reconnect* → :meth:`ClusterMembership.login` with the same
   paths (same slot; counts as a connection so objects cached while it was
   away re-query it),
4. *new server connects*  → :meth:`ClusterMembership.login` (fresh slot).

A reconnect that declares a *different* path set is treated as drop + new
connection, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import bitvec
from repro.core.location import LocationObject

__all__ = ["ServerSlot", "ClusterMembership", "apply_corrections"]


@dataclass
class ServerSlot:
    """One of the 64 subordinate slots of a cmsd."""

    index: int
    name: str
    paths: frozenset[str]
    online: bool = True
    #: Cumulative logins through this slot (diagnostics only).
    logins: int = 1


@dataclass
class _PathEntry:
    """Registry record for one exported path prefix."""

    v_m: int = 0
    #: Reference counts per slot so overlapping exports un-register cleanly.
    refcount: dict[int, int] = field(default_factory=dict)


class ClusterMembership:
    """Tracks a cmsd's direct subordinates and the correction state.

    All mutating operations are O(number of paths the server exports) — the
    "extremely light" registration the paper contrasts with GFS's
    full-manifest upload (§V).  Nothing here ever touches cached location
    objects; corrections are applied lazily at fetch time by
    :func:`apply_corrections`.
    """

    def __init__(self, *, obs=None, node: str = "") -> None:
        self._slots: list[ServerSlot | None] = [None] * bitvec.MAX_SERVERS
        self._by_name: dict[str, int] = {}
        #: Master connection counter N_c.
        self.n_c: int = 0
        #: Per-slot connection counters C[].
        self.c: list[int] = [0] * bitvec.MAX_SERVERS
        self._paths: dict[str, _PathEntry] = {}
        #: Mask of slots that are members but currently offline.
        self.v_offline: int = 0
        #: Mask of slots currently occupied (online or offline).
        self.v_members: int = 0
        # Observability (repro.obs): membership churn counters plus live
        # member/online gauges — the inputs the lazy-correction machinery
        # reacts to.
        self._obs = obs
        if obs is not None:
            self._m_logins = obs.metrics.counter("membership_logins_total", node=node)
            self._m_disconnects = obs.metrics.counter("membership_disconnects_total", node=node)
            self._m_drops = obs.metrics.counter("membership_drops_total", node=node)
            self._m_members = obs.metrics.gauge("membership_members", node=node)
            self._m_online = obs.metrics.gauge("membership_online", node=node)

    def _observe_membership(self) -> None:
        if self._obs is not None:
            self._m_members.set(bitvec.count(self.v_members))
            self._m_online.set(bitvec.count(self.v_online))

    # -- queries -------------------------------------------------------------

    @property
    def v_online(self) -> int:
        """Mask of occupied, currently reachable slots."""
        return self.v_members & ~self.v_offline & bitvec.FULL_MASK

    def slot_of(self, name: str) -> int | None:
        """Slot index of server *name*, or None if not a member."""
        return self._by_name.get(name)

    def slot(self, index: int) -> ServerSlot | None:
        """The :class:`ServerSlot` occupying *index*, or None."""
        return self._slots[index]

    def server_name(self, index: int) -> str | None:
        s = self._slots[index]
        return s.name if s is not None else None

    def member_count(self) -> int:
        return bitvec.count(self.v_members)

    def eligible(self, path: str) -> int:
        """V_m for *path*: union of exporters over every matching prefix.

        The manager-level namespace is flat — "file paths are treated as
        simple prefixes to a file name" (§II-B4) — so eligibility is a
        prefix match against the registered export prefixes.
        """
        v_m = 0
        for prefix, entry in self._paths.items():
            if path.startswith(prefix):
                v_m |= entry.v_m
        return v_m

    def exported_paths(self) -> list[str]:
        """All registered export prefixes (sorted for determinism)."""
        return sorted(self._paths)

    def connected_since(self, c_n: int) -> int:
        """Correction vector V_c: slots whose C[i] exceeds snapshot *c_n*."""
        v_c = 0
        for i in range(bitvec.MAX_SERVERS):
            if self.c[i] > c_n:
                v_c |= bitvec.bit(i)
        return v_c

    # -- membership events -----------------------------------------------------

    def login(self, name: str, paths, *, slot: int | None = None) -> int:
        """Register server *name* exporting *paths*; returns its slot.

        Handles all four §III-A4 cases:

        * unknown name → new connection into a free (or caller-chosen) slot;
        * known, offline, same paths → un-dropped reconnect (same slot);
        * known, same paths, online → idempotent re-login (still counts as a
          connection, forcing re-query of anything cached meanwhile);
        * known but different paths → implicit drop then fresh login, per
          "if the server reconnects ... but has a new set of exported paths
          the reconnection is also treated as a new connection".
        """
        path_set = frozenset(paths)
        if not path_set:
            raise ValueError("a server must export at least one path")
        existing = self._by_name.get(name)
        if existing is not None:
            current = self._slots[existing]
            assert current is not None
            if current.paths != path_set:
                self.drop(existing)
            else:
                current.online = True
                current.logins += 1
                self.v_offline &= ~bitvec.bit(existing) & bitvec.FULL_MASK
                self._stamp_connection(existing)
                if self._obs is not None:
                    self._m_logins.inc()
                    self._observe_membership()
                return existing

        if slot is None:
            slot = self._find_free_slot()
        elif self._slots[slot] is not None:
            raise ValueError(f"slot {slot} already occupied by {self._slots[slot].name!r}")
        if not 0 <= slot < bitvec.MAX_SERVERS:
            raise ValueError(f"slot {slot} outside [0, {bitvec.MAX_SERVERS})")

        self._slots[slot] = ServerSlot(index=slot, name=name, paths=path_set)
        self._by_name[name] = slot
        self.v_members |= bitvec.bit(slot)
        self.v_offline &= ~bitvec.bit(slot) & bitvec.FULL_MASK
        # sorted(): path_set is a frozenset and registration order decides
        # dict insertion order in self._paths, which eligible() iterates.
        for p in sorted(path_set):
            entry = self._paths.setdefault(p, _PathEntry())
            entry.v_m |= bitvec.bit(slot)
            entry.refcount[slot] = entry.refcount.get(slot, 0) + 1
        self._stamp_connection(slot)
        if self._obs is not None:
            self._m_logins.inc()
            self._observe_membership()
        return slot

    def disconnect(self, name: str) -> int:
        """Mark server *name* offline (case 1).  Returns its slot.

        The server stays a member — "the hope is that the server is
        encountering a transient problem and will soon reconnect" — so its
        V_m bits are untouched and cached info mentioning it stays valid.
        """
        slot = self._require_slot(name)
        entry = self._slots[slot]
        assert entry is not None
        entry.online = False
        self.v_offline |= bitvec.bit(slot)
        if self._obs is not None:
            self._m_disconnects.inc()
            self._observe_membership()
        return slot

    def drop(self, slot_or_name) -> int:
        """Remove a server from the cluster entirely (case 2).

        Scrubs the slot from every V_m in which it appears; the per-fetch
        V_m mask then lazily erases it from all cached vectors.  The slot
        becomes reusable by future logins.
        """
        if isinstance(slot_or_name, str):
            slot = self._require_slot(slot_or_name)
        else:
            slot = slot_or_name
        entry = self._slots[slot]
        if entry is None:
            raise KeyError(f"slot {slot} is not occupied")
        for p in sorted(entry.paths):
            pe = self._paths[p]
            pe.refcount.pop(slot, None)
            pe.v_m &= ~bitvec.bit(slot) & bitvec.FULL_MASK
            if not pe.refcount:
                del self._paths[p]
        del self._by_name[entry.name]
        self._slots[slot] = None
        mask = ~bitvec.bit(slot) & bitvec.FULL_MASK
        self.v_members &= mask
        self.v_offline &= mask
        if self._obs is not None:
            self._m_drops.inc()
            self._observe_membership()
        return slot

    # -- internals ---------------------------------------------------------

    def _stamp_connection(self, slot: int) -> None:
        self.n_c += 1
        self.c[slot] = self.n_c

    def _find_free_slot(self) -> int:
        free = ~self.v_members & bitvec.FULL_MASK
        idx = bitvec.first_bit(free)
        if idx < 0:
            raise OverflowError(
                "all 64 subordinate slots occupied; grow the tree instead "
                "(paper §II-B1: sets of 64 arranged in a 64-ary tree)"
            )
        return idx

    def _require_slot(self, name: str) -> int:
        slot = self._by_name.get(name)
        if slot is None:
            raise KeyError(f"unknown server {name!r}")
        return slot


def apply_corrections(
    loc: LocationObject,
    membership: ClusterMembership,
    v_m: int,
    *,
    v_c: int | None = None,
) -> bool:
    """Correct *loc*'s vectors against current membership (Figure 3).

    *v_m* is the eligibility vector for the file's path, looked up by the
    caller — "the appropriate V_m ... is looked up prior and passed to the
    cache look-up method".  Pass a precomputed *v_c* to use a window-memoized
    correction vector (§III-A4's V_wc optimization); when None the vector is
    generated from the counters.

    Returns True when the C_n/N_c correction fired (used by the cache to
    maintain the per-window memo).  Independent of that, the V_m mask and
    the offline-to-V_q migration are applied on every fetch — the former
    scrubs dropped servers, the latter implements "any servers that are
    currently offline ... are added to the location object's V_q".
    """
    corrected = False
    if loc.c_n != membership.n_c:
        if v_c is None:
            v_c = membership.connected_since(loc.c_n)
        loc.v_q = (loc.v_q | v_c) & v_m
        loc.v_h = loc.v_h & ~loc.v_q & v_m & bitvec.FULL_MASK
        loc.v_p = loc.v_p & ~loc.v_q & v_m & bitvec.FULL_MASK
        loc.c_n = membership.n_c
        corrected = True
    else:
        loc.v_h &= v_m
        loc.v_p &= v_m
        loc.v_q &= v_m

    offline = (loc.v_h | loc.v_p) & membership.v_offline
    if offline:
        off_mask = ~offline & bitvec.FULL_MASK
        loc.v_h &= off_mask
        loc.v_p &= off_mask
        loc.v_q |= offline
    return corrected
