"""The paper's primary contribution: the cmsd name cache and its protocol
building blocks (Sections II-B5, III).

Everything in this package is plain, thread-free, clock-agnostic Python:
time enters only as explicit ``now`` parameters and explicit ``tick()``
calls, so the same code serves wall-clock microbenchmarks and the
discrete-event cluster simulation.
"""

from repro.core import bitvec
from repro.core.cache import CacheStats, NameCache
from repro.core.corrections import ClusterMembership, ServerSlot, apply_corrections
from repro.core import crc32
from repro.core.crc32 import crc32_reference, hash_name
from repro.core.deadline import DEFAULT_FULL_DELAY, DeadlinePolicy
from repro.core.eviction import DEFAULT_LIFETIME, WINDOW_COUNT, EvictionWindows, TickResult
from repro.core.fibonacci import GROWTH_THRESHOLD, fibonacci_numbers, is_fibonacci, next_fibonacci
from repro.core.hashtable import LocationTable
from repro.core.location import NO_QUEUE, LocationObject
from repro.core.models import PaperClaims, equilibrium_objects, memory_bound_bytes, tree_depth
from repro.core.refs import CacheRef, StaleReference
from repro.core.response_queue import (
    DEFAULT_ANCHORS,
    DEFAULT_PERIOD,
    AccessMode,
    AddOutcome,
    ResponseQueue,
    Waiter,
)
from repro.core.selection import (
    LeastLoad,
    MostSpace,
    RandomChoice,
    RoundRobin,
    SelectionPolicy,
    ServerMetrics,
    WeightedComposite,
)

__all__ = [
    "bitvec",
    "NameCache",
    "CacheStats",
    "ClusterMembership",
    "ServerSlot",
    "apply_corrections",
    "crc32",
    "crc32_reference",
    "hash_name",
    "DeadlinePolicy",
    "DEFAULT_FULL_DELAY",
    "EvictionWindows",
    "TickResult",
    "WINDOW_COUNT",
    "DEFAULT_LIFETIME",
    "fibonacci_numbers",
    "next_fibonacci",
    "is_fibonacci",
    "GROWTH_THRESHOLD",
    "LocationTable",
    "LocationObject",
    "NO_QUEUE",
    "PaperClaims",
    "equilibrium_objects",
    "memory_bound_bytes",
    "tree_depth",
    "CacheRef",
    "StaleReference",
    "ResponseQueue",
    "AccessMode",
    "AddOutcome",
    "Waiter",
    "DEFAULT_ANCHORS",
    "DEFAULT_PERIOD",
    "SelectionPolicy",
    "RoundRobin",
    "LeastLoad",
    "MostSpace",
    "WeightedComposite",
    "RandomChoice",
    "ServerMetrics",
]
