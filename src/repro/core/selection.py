"""Server selection policies.

When more than one node can serve a file, "a selection is made based on
configuration defined criteria (e.g., load, selection frequency, space,
etc.)" (paper §II-B3).  This module implements those criteria over the
64-bit candidate vectors.

All policies are deterministic given their inputs (the random policy takes
an explicit seeded RNG), which keeps cluster simulations reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import bitvec

__all__ = ["ServerMetrics", "SelectionPolicy", "RoundRobin", "LeastLoad", "MostSpace", "WeightedComposite", "RandomChoice"]


@dataclass
class ServerMetrics:
    """Per-slot metrics a cmsd keeps about its subordinates.

    ``load`` is an abstract utilization in [0, 1]; ``free_space`` is in
    bytes; ``selections`` counts how often the slot has been chosen (the
    paper's "selection frequency" criterion).
    """

    load: list[float] = field(default_factory=lambda: [0.0] * bitvec.MAX_SERVERS)
    free_space: list[float] = field(default_factory=lambda: [0.0] * bitvec.MAX_SERVERS)
    selections: list[int] = field(default_factory=lambda: [0] * bitvec.MAX_SERVERS)

    def record_selection(self, slot: int) -> None:
        self.selections[slot] += 1


class SelectionPolicy:
    """Base class: choose one slot out of a candidate vector."""

    def choose(self, candidates: int, metrics: ServerMetrics) -> int:
        """Return the chosen slot index; raises on an empty vector.

        Subclasses implement :meth:`_score`; lower score wins, ties broken
        by slot index for determinism.
        """
        best = -1
        best_score = None
        for slot in bitvec.iter_bits(candidates):
            score = self._score(slot, metrics)
            if best_score is None or score < best_score:
                best, best_score = slot, score
        if best < 0:
            raise ValueError("cannot select from an empty candidate vector")
        metrics.record_selection(best)
        return best

    def _score(self, slot: int, metrics: ServerMetrics) -> float:
        raise NotImplementedError


class RoundRobin(SelectionPolicy):
    """Pick the least-recently/least-often selected slot.

    With equal traffic this degenerates to strict rotation, which is the
    default cmsd behaviour.
    """

    def _score(self, slot: int, metrics: ServerMetrics) -> float:
        return float(metrics.selections[slot])


class LeastLoad(SelectionPolicy):
    """Pick the slot reporting the lowest load."""

    def _score(self, slot: int, metrics: ServerMetrics) -> float:
        return metrics.load[slot]


class MostSpace(SelectionPolicy):
    """Pick the slot with the most free space (for writes/creates)."""

    def _score(self, slot: int, metrics: ServerMetrics) -> float:
        return -metrics.free_space[slot]


class WeightedComposite(SelectionPolicy):
    """Configurable blend of load, selection frequency, and space.

    Mirrors cmsd's ``cms.sched`` weighting: each criterion is normalized to
    [0, 1] across the candidate set's plausible ranges and combined with the
    given weights.  Space contributes negatively (more space → better).
    """

    def __init__(self, w_load: float = 1.0, w_freq: float = 0.0, w_space: float = 0.0) -> None:
        total = w_load + w_freq + w_space
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self.w_load = w_load / total
        self.w_freq = w_freq / total
        self.w_space = w_space / total

    def _score(self, slot: int, metrics: ServerMetrics) -> float:
        freq = metrics.selections[slot]
        freq_norm = freq / (1.0 + freq)
        space = metrics.free_space[slot]
        space_norm = 1.0 / (1.0 + space)
        return self.w_load * metrics.load[slot] + self.w_freq * freq_norm + self.w_space * space_norm


class RandomChoice(SelectionPolicy):
    """Uniform random choice with an injected RNG (determinism in sims)."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(self, candidates: int, metrics: ServerMetrics) -> int:
        slots = bitvec.to_indices(candidates)
        if not slots:
            raise ValueError("cannot select from an empty candidate vector")
        slot = self._rng.choice(slots)
        metrics.record_selection(slot)
        return slot

    def _score(self, slot: int, metrics: ServerMetrics) -> float:  # pragma: no cover
        raise NotImplementedError("RandomChoice overrides choose()")
