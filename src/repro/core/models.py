"""Analytical models from the paper's evaluation prose.

These closed-form expressions let the benchmarks compare *measured* values
against the arithmetic the paper actually states, rather than against magic
numbers copied into test code:

* §II-B1: lookup depth is ``O(log_64 N)``;
* §III-A2: the cache reaches an equilibrium of ``create_rate × L_t``
  objects (28,800,000 at 1000/s over 8 h), bounding memory (≈16 GB there,
  i.e. ≈590 bytes per location object);
* §III-A3: each tick touches ``1/64 ≈ 1.6%`` of the cache on average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.eviction import WINDOW_COUNT

__all__ = [
    "tree_depth",
    "max_servers",
    "equilibrium_objects",
    "memory_bound_bytes",
    "tick_fraction",
    "PAPER_BYTES_PER_OBJECT",
    "PaperClaims",
]

#: Implied by the paper's "28,800,000 location objects represent
#: approximately 16GB of RAM": 16 GiB / 28.8e6 ≈ 596 bytes each.
PAPER_BYTES_PER_OBJECT = (16 * 2**30) / 28_800_000


def tree_depth(n_servers: int, fanout: int = 64) -> int:
    """Levels of cmsd nodes needed above *n_servers* leaf data servers.

    A single manager handles up to 64 servers (depth 1); adding one
    supervisor layer reaches 64² = 4096, and so on — ``ceil(log_64 N)``.
    A cluster of one server still needs its manager, hence the max with 1.
    """
    if n_servers < 1:
        raise ValueError("need at least one server")
    return max(1, math.ceil(math.log(n_servers, fanout)))


def max_servers(depth: int, fanout: int = 64) -> int:
    """Maximum leaf servers addressable by a tree of *depth* cmsd levels."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    return fanout**depth


def equilibrium_objects(create_rate: float, lifetime: float) -> float:
    """Steady-state cache population: objects created per lifetime.

    "No more than 28,800,000 location objects can exist in the cache over an
    eight hour period" at 1000 creates/second — rate × L_t.
    """
    if create_rate < 0 or lifetime < 0:
        raise ValueError("rate and lifetime must be non-negative")
    return create_rate * lifetime


def memory_bound_bytes(create_rate: float, lifetime: float, bytes_per_object: float = PAPER_BYTES_PER_OBJECT) -> float:
    """Upper bound on cache memory: equilibrium population × object size."""
    return equilibrium_objects(create_rate, lifetime) * bytes_per_object


def tick_fraction() -> float:
    """Average fraction of the cache swept per window tick (1/64)."""
    return 1.0 / WINDOW_COUNT


@dataclass(frozen=True)
class PaperClaims:
    """The paper's headline numbers, collected for EXPERIMENTS.md reporting.

    Latency figures describe the authors' 2012 hardware; our simulated
    cluster is parameterized to the same per-hop and per-response costs, so
    the *shapes* (ratios, slopes, crossovers) are the comparable quantity.
    """

    cached_latency_per_level: float = 50e-6  # §II-B5: <50 µs per tree level
    uncached_latency: float = 150e-6  # §II-B5: ≈150 µs with leaf response
    server_response_time: float = 100e-6  # §III-B: "typically, about 100us"
    fast_response_period: float = 0.133  # §III-B: 133 ms clocking
    full_delay: float = 5.0  # §III-B: default 5 s wait
    default_lifetime: float = 8 * 3600.0  # §III-A2: eight hours
    window_tick: float = 8 * 3600.0 / 64  # §III-A3: 7.5 minutes
    max_create_rate: float = 1000.0  # §III-A2: per second on 1 Gb NIC
    typical_create_rate: tuple[float, float] = (50.0, 100.0)
    equilibrium_max_objects: int = 28_800_000
    memory_bound_gb: float = 16.0
    tick_cache_fraction: float = 0.016  # "only 1.6% of the cache"
