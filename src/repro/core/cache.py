"""The cmsd name cache.

:class:`NameCache` is the paper's primary artifact: the in-memory file
location cache every manager and supervisor cmsd runs (§III-A).  It wires
together

* the Fibonacci-sized, CRC32-keyed hash table (:mod:`repro.core.hashtable`),
* the 64-slot sliding-window eviction clock (:mod:`repro.core.eviction`),
* lazy accuracy corrections with the per-window ``V_wc``/``C_wn`` memo
  (:mod:`repro.core.corrections`),
* never-delete storage recycling with reference authenticators
  (:mod:`repro.core.refs`), and
* refresh processing with deferred re-chaining (§III-C1).

Time is an explicit parameter everywhere (``now`` in seconds); the window
clock advances only through :meth:`tick`, which the owner calls every
``lifetime / 64``.  This lets the same object run under wall-clock
microbenchmarks and under the discrete-event simulator unchanged.

The cache itself never performs I/O and never blocks: querying servers,
waiting for responses, and redirecting clients are the resolution driver's
job (:mod:`repro.cluster.cmsd` in the cluster layer).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.violations import LoadFactorViolation, WindowAccountingViolation
from repro.core import fibonacci
from repro.core.corrections import ClusterMembership, apply_corrections
from repro.core.crc32 import hash_name
from repro.core.eviction import DEFAULT_LIFETIME, WINDOW_COUNT, EvictionWindows, TickResult
from repro.core.hashtable import LocationTable
from repro.core.location import LocationObject
from repro.core.refs import CacheRef

__all__ = ["NameCache", "CacheStats"]


@dataclass
class CacheStats:
    """Counters the benchmarks and EXPERIMENTS.md read out."""

    lookups: int = 0
    hits: int = 0
    adds: int = 0
    refreshes: int = 0
    corrections: int = 0
    vwc_hits: int = 0
    vwc_misses: int = 0
    recycled: int = 0
    removed: int = 0
    holder_updates: int = 0
    stale_holder_updates: int = 0

    def snapshot(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass(slots=True)
class _WindowMemo:
    """Per-window memoized correction vector (§III-A4's V_wc / C_wn).

    Applicable to a fetched object when the object was added in this window
    with the same pre-correction snapshot (``c_wn``) and the memo was
    computed against the current master counter (``n_c``).
    """

    c_wn: int
    n_c: int
    v_wc: int


class NameCache:
    """File-location cache of one cmsd over its ≤64 direct subordinates."""

    def __init__(
        self,
        membership: ClusterMembership | None = None,
        *,
        lifetime: float = DEFAULT_LIFETIME,
        initial_size: int | None = None,
        window_memo: bool = True,
        obs=None,
        node: str = "",
    ) -> None:
        """*window_memo* disables the per-window V_wc/C_wn memoization when
        False — an ablation knob for bench F3; production cmsd always
        memoizes.  *obs* (a :class:`repro.obs.Observability`) turns on
        metrics + resolution-trace annotations; None keeps the fast path
        untouched."""
        self.membership = membership if membership is not None else ClusterMembership()
        self.table = LocationTable(initial_size)
        self.windows = EvictionWindows(obs=obs, node=node)
        self.lifetime = float(lifetime)
        self.stats = CacheStats()
        self._obs = obs
        self._node = node
        if obs is not None:
            m = obs.metrics
            self._m_lookups = m.counter("cache_lookups_total", node=node)
            self._m_hits = m.counter("cache_hits_total", node=node)
            self._m_adds = m.counter("cache_adds_total", node=node)
            self._m_corrections = m.counter("cache_corrections_total", node=node)
            self._m_vwc_hits = m.counter("cache_vwc_hits_total", node=node)
            self._m_vwc_misses = m.counter("cache_vwc_misses_total", node=node)
            self._m_stale = m.counter("cache_stale_holder_updates_total", node=node)
            self._m_holder_updates = m.counter("cache_holder_updates_total", node=node)
            self._m_removed = m.counter("cache_removed_total", node=node)
            self._m_population = m.gauge("cache_population", node=node)
        self._free: list[LocationObject] = []
        #: Incrementally maintained count of findable objects; keeps
        #: :meth:`live_count` O(1) (cross-checked by check_invariants).
        self._live = 0
        #: (object, generation-at-queue-time); the stamp detects entries
        #: whose storage was recycled before this entry was processed.
        self._pending_removal: deque[tuple[LocationObject, int]] = deque()
        self._wmemo: list[_WindowMemo | None] = [None] * WINDOW_COUNT
        self.window_memo = window_memo
        #: Objects ever allocated (never shrinks — storage is never freed).
        self.allocated = 0

    # -- sizing -------------------------------------------------------------

    @property
    def tick_interval(self) -> float:
        """Seconds between window ticks: ``L_t / 64``."""
        return self.lifetime / WINDOW_COUNT

    def live_count(self) -> int:
        """Number of findable (non-hidden) location objects — O(1).

        Maintained incrementally: +1 on add, -1 when an object is hidden
        (sweep or explicit invalidate).  The full ``visible()`` scan this
        replaced is still run — as a cross-check — by
        :meth:`check_invariants`.
        """
        return self._live

    # -- the resolution-facing API ------------------------------------------------

    def lookup(self, path: str, now: float, *, add: bool = True) -> tuple[CacheRef | None, bool]:
        """Fetch (and by default create) the location object for *path*.

        Returns ``(ref, is_new)``.  On a hit the object's vectors are
        corrected in place (V_m mask, connection-counter correction with the
        window memo, offline→V_q migration) before the reference is handed
        out — cached information is only ever corrected "when it is
        fetched".  On a miss with ``add=True`` a fresh object is created
        with ``V_q = V_m`` (every eligible server still needs querying).

        ``(None, False)`` is returned on a miss with ``add=False``.
        """
        self.stats.lookups += 1
        v_m = self.membership.eligible(path)
        h = hash_name(path)
        obj = self.table.find(path, h)
        if self._obs is not None:
            self._m_lookups.inc()
            if obj is not None:
                self._m_hits.inc()
            self._obs.tracer.event(
                path, "cache.lookup", node=self._node, hit=obj is not None, add=add
            )
        if obj is not None:
            self.stats.hits += 1
            self._correct(obj, v_m)
            return CacheRef(obj=obj, generation=obj.generation, key=path, hash_val=h), False
        if not add:
            return None, False
        obj = self._allocate()
        obj.assign(path, h, self.membership.n_c, self.windows.current_window)
        obj.v_q = v_m
        self.windows.add(obj)
        self.table.insert(obj)
        self._live += 1
        self.stats.adds += 1
        if self._obs is not None:
            self._m_adds.inc()
        return CacheRef(obj=obj, generation=obj.generation, key=path, hash_val=h), True

    def revalidate(self, ref: CacheRef) -> CacheRef | None:
        """Re-resolve a stale reference by full lookup (the rare fall-back).

        Returns a fresh valid reference, or None when no visible object for
        the key exists anymore — the caller then asks the client to retry
        "so that processing can restart from a consistent state".
        """
        if ref.valid:
            return ref
        obj = self.table.find(ref.key, ref.hash_val)
        if obj is None:
            return None
        return CacheRef(obj=obj, generation=obj.generation, key=ref.key, hash_val=ref.hash_val)

    def update_holder(
        self,
        path: str,
        hash_val: int,
        server: int,
        *,
        pending: bool = False,
    ) -> LocationObject | None:
        """Record a server's positive response (it has / is staging *path*).

        The responder streamed the name *and* the hash key along (§III-B1),
        so no rehash happens here.  Returns the updated object, or None when
        the object aged out before the answer arrived (the response is then
        simply dropped; a later client will re-query).
        """
        obj = self.table.find(path, hash_val)
        if obj is None:
            self.stats.stale_holder_updates += 1
            if self._obs is not None:
                self._m_stale.inc()
            return None
        obj.set_holder(server, pending=pending)
        self.stats.holder_updates += 1
        if self._obs is not None:
            self._m_holder_updates.inc()
        return obj

    def refresh(self, ref: CacheRef, now: float) -> CacheRef | None:
        """Refresh a location object after a client reported mis-vectoring.

        "A location object refresh is logically treated as a new un-cached
        request ... the overhead of placing the location object in the cache
        is eliminated" (§III-C1): vectors reset so every eligible server is
        re-queried, ``T_a`` renews the lifetime, but the object is *not*
        re-chained — the next purge of its old window chain will move it
        (deferred re-chaining).
        """
        live = self.revalidate(ref)
        if live is None:
            return None
        obj = live.obj
        v_m = self.membership.eligible(ref.key)
        obj.v_h = 0
        obj.v_p = 0
        obj.v_q = v_m
        obj.c_n = self.membership.n_c
        obj.deadline = 0.0
        self.windows.refresh(obj)
        self.stats.refreshes += 1
        return live

    def invalidate(self, ref: CacheRef) -> bool:
        """Explicitly hide an object (e.g. after a verified deletion).

        Physical removal still happens in the background step, keeping the
        lookup path undisturbed.
        """
        if not ref.valid:
            return False
        obj = ref.obj
        # A valid ref implies the object is visible (hide bumps the
        # generation), so this always uncounts exactly one live object.
        obj.hide()
        self._live -= 1
        self._pending_removal.append((obj, obj.generation))
        return True

    # -- clocking ---------------------------------------------------------

    def tick(self) -> TickResult:
        """Advance the window clock; hide the expiring window's objects.

        The hidden objects are queued for :meth:`run_background_removal`.
        Also drops any window memo for the recycled window — its identity
        changes once new objects start landing in it.
        """
        result = self.windows.tick()
        self._live -= result.newly_hidden
        self._pending_removal.extend((obj, obj.generation) for obj in result.hidden)
        self._wmemo[result.window] = None
        if self._obs is not None:
            # population() is the O(1) incremental counter, so updating the
            # gauge every tick no longer scans the window chains.
            self._m_population.set(self.windows.population())
        return result

    def run_background_removal(self, limit: int | None = None) -> int:
        """Physically unchain up to *limit* hidden objects; recycle storage.

        This is the paper's background job.  Storage goes to the free list
        — "once a location object is created it is never deleted though its
        storage area can be reused".
        """
        removed = 0
        while self._pending_removal and (limit is None or removed < limit):
            obj, gen = self._pending_removal.popleft()
            if obj.generation != gen:
                continue  # storage already recycled; this entry is moot
            if self.table.remove(obj):
                self.windows.unchain(obj)
                self._free.append(obj)
                removed += 1
        self.stats.removed += removed
        if self._obs is not None and removed:
            self._m_removed.inc(removed)
        return removed

    @property
    def pending_removals(self) -> int:
        return len(self._pending_removal)

    # -- internals ---------------------------------------------------------

    def _allocate(self) -> LocationObject:
        if self._free:
            self.stats.recycled += 1
            return self._free.pop()
        self.allocated += 1
        return LocationObject()

    def _correct(self, obj: LocationObject, v_m: int) -> None:
        """Apply Figure-3 corrections, consulting the window V_wc memo."""
        v_c = None
        memo_window = obj.t_a
        if obj.c_n != self.membership.n_c:
            memo = self._wmemo[memo_window] if self.window_memo else None
            if memo is not None and memo.c_wn == obj.c_n and memo.n_c == self.membership.n_c:
                v_c = memo.v_wc
                self.stats.vwc_hits += 1
                if self._obs is not None:
                    self._m_vwc_hits.inc()
            else:
                v_c = self.membership.connected_since(obj.c_n)
                if self.window_memo:
                    self._wmemo[memo_window] = _WindowMemo(
                        c_wn=obj.c_n, n_c=self.membership.n_c, v_wc=v_c
                    )
                self.stats.vwc_misses += 1
                if self._obs is not None:
                    self._m_vwc_misses.inc()
        if apply_corrections(obj, self.membership, v_m, v_c=v_c):
            self.stats.corrections += 1
            if self._obs is not None:
                self._m_corrections.inc()
                self._obs.tracer.event(
                    obj.key, "cache.correct", node=self._node, v_q=obj.v_q, v_h=obj.v_h
                )

    def check_invariants(self) -> None:
        """Cross-structure consistency: table, windows, vector invariants.

        Raises typed :mod:`repro.analysis.violations` errors (all
        ``AssertionError`` subclasses).  SimSan calls this after every tick
        and mutation batch when ``ScallaConfig.sanitize`` is on.
        """
        visible = 0

        def _check(obj: LocationObject) -> None:
            # One table walk covers the per-object vector invariants, the
            # visible-chained check (formerly a second visible() pass) and
            # the live-counter cross-check.
            nonlocal visible
            if obj.hidden:
                return
            visible += 1
            obj.check_invariants()
            if not 0 <= obj.chain_window < WINDOW_COUNT:
                raise WindowAccountingViolation(
                    "visible object not chained in any eviction window",
                    invariant="visible-chained",
                    path=obj.key,
                    chain_window=obj.chain_window,
                )

        self.table.check_invariants(on_object=_check)
        self.windows.check_invariants()
        # Growth runs *before* the triggering insert, so the 80% bound holds
        # after every completed operation.
        if self.table.count > self.table.size * fibonacci.GROWTH_THRESHOLD:
            raise LoadFactorViolation(
                "table over the 80% growth threshold",
                invariant="load-factor",
                count=self.table.count,
                size=self.table.size,
            )
        # Counter cross-check last: structural violations above are the
        # root cause when both fire (e.g. objects spliced in behind the
        # cache's back), and they carry the more actionable context.
        if visible != self._live:
            raise WindowAccountingViolation(
                "incremental live counter out of sync",
                invariant="live-count-sync",
                counter=self._live,
                visible=visible,
            )
