"""Alternative string hashes, for the footnote-4 collision study (E3).

The paper attributes the cache's dispersion to "CRC32 modulo a Fibonacci
number" and reports "much higher collision rates with power-of-two sized
tables".  Reproducing that with zlib's actual CRC32 turns out to be a
*negative* result: CRC32's low bits are already well-mixed, and power-of-two
masking performs on par with (sometimes better than) a Fibonacci modulus on
structured HEP names.  The claimed effect appears as soon as the hash has
correlated low bits — which classic accumulate-style string hashes (the
family production XrdOucHash-era code descends from) very much do, because
a constant file suffix like ``.root`` pins the final state's low bits.

These three hashes span that spectrum:

* :func:`java31` — multiply-by-31 accumulate; mildly correlated low bits.
* :func:`sdbm` — shift-and-subtract accumulate; visibly correlated.
* :func:`shift_add` — plain ``h = (h << 4) + c``; catastrophically
  correlated (every name ending ``.root`` shares its low bits).

Bench E3 sweeps hash × table-sizing and EXPERIMENTS.md reports where the
paper's claim does and does not hold.
"""

from __future__ import annotations

__all__ = ["java31", "sdbm", "shift_add", "ALL_HASHES"]

_MASK = 0xFFFFFFFF


def java31(name: str) -> int:
    """Java's String.hashCode: ``h = 31 h + c`` (32-bit)."""
    h = 0
    for c in name.encode("utf-8"):
        h = (h * 31 + c) & _MASK
    return h


def sdbm(name: str) -> int:
    """The sdbm database hash: ``h = c + (h<<6) + (h<<16) - h``."""
    h = 0
    for c in name.encode("utf-8"):
        h = (c + (h << 6) + (h << 16) - h) & _MASK
    return h


def shift_add(name: str) -> int:
    """Naive shift-add accumulate: ``h = (h<<4) + c``.

    After a constant 5-character suffix, the low ~20 bits depend only on
    that suffix and the last few varying characters — the worst realistic
    case for power-of-two masking.
    """
    h = 0
    for c in name.encode("utf-8"):
        h = ((h << 4) + c) & _MASK
    return h


#: name -> callable, for parameter sweeps.
ALL_HASHES = {"java31": java31, "sdbm": sdbm, "shift_add": shift_add}
