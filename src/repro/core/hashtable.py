"""The location hash table.

"Location objects are cached in memory and are accessible by a one-level
hash table using linear chaining to resolve collisions. ... The hash key is
a CRC32 encoding of the file name.  The table itself is sized to be a
Fibonacci number of entries.  When the number of entries reaches 80% of the
table size, a new table is created whose size is the subsequent Fibonacci
number and all of the keys are redistributed."  (paper §III-A1, Figure 2)

This module implements exactly that table, specialized to
:class:`~repro.core.location.LocationObject` values.  Buckets are Python
lists (the "chains"); hidden objects — key length zero — remain chained
until the eviction machinery physically unchains them, so lookups must skip
them, and the growth trigger counts *chained* objects (live or hidden)
because those are what occupy chain positions.

Why Fibonacci and not 2^k?  With a power-of-two size the modulo keeps only
the low bits of the CRC, which are correlated across the structured path
names HEP produces; a Fibonacci modulus mixes every bit of the key.  Bench
E3 (``benchmarks/bench_e3_fibonacci.py``) reproduces footnote 4's collision
comparison against :mod:`repro.baselines.pow2table`.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.analysis.violations import TableStructureViolation
from repro.core import fibonacci
from repro.core.location import LocationObject

__all__ = ["LocationTable"]


class LocationTable:
    """Fibonacci-sized, linearly chained table of location objects.

    The table stores objects; it does not own their lifecycle (the cache's
    free list does).  ``insert``/``remove`` take the object's ``hash_val``
    as authoritative — callers computed it once and pass it along, matching
    the paper's "file names and hash keys are passed along" streamlining.
    """

    def __init__(self, initial_size: int | None = None) -> None:
        size = fibonacci.DEFAULT_INITIAL_SIZE if initial_size is None else initial_size
        if not fibonacci.is_fibonacci(size):
            raise ValueError(f"table size {size} is not a Fibonacci number")
        self._buckets: list[list[LocationObject]] = [[] for _ in range(size)]
        self._size = size
        self._count = 0
        #: Number of resize events performed (bench F2 reads this).
        self.resizes = 0
        #: Lookup probe statistics: chain positions examined, lookups served.
        self.probes = 0
        self.lookups = 0

    # -- basic properties ---------------------------------------------------

    @property
    def size(self) -> int:
        """Current number of buckets (always a Fibonacci number)."""
        return self._size

    @property
    def count(self) -> int:
        """Number of chained objects, hidden ones included."""
        return self._count

    @property
    def load_factor(self) -> float:
        return self._count / self._size

    # -- operations ---------------------------------------------------------

    def find(self, key: str, hash_val: int) -> LocationObject | None:
        """Return the visible object for *key*, or None.

        Hidden objects in the chain are skipped — that is the whole point of
        hide-by-zero-keylen: O(1) logical removal without disturbing the
        chain structure under concurrent traversal.

        This is the fetch path the paper's latency argument rests on, so
        ``LocationObject.matches`` is inlined with ``len(key)`` hoisted out
        of the chain walk, and a zero-length key exits early — it could only
        structurally match hidden objects, which must stay unfindable.
        """
        self.lookups += 1
        bucket = self._buckets[hash_val % self._size]
        klen = len(key)
        if klen == 0:
            self.probes += len(bucket)
            return None
        pos = 0
        for obj in bucket:
            pos += 1
            # key_len == klen != 0 subsumes the hidden check; hash first —
            # it is already in hand and rejects almost every non-match
            # without touching the (potentially long) key string.
            if obj.hash_val == hash_val and obj.key_len == klen and obj.key == key:
                self.probes += pos
                return obj
        self.probes += pos
        return None

    def insert(self, obj: LocationObject) -> None:
        """Chain *obj* into the table, growing first if at the threshold.

        The caller guarantees no visible duplicate of ``obj.key`` exists
        (the cache's add path always looks up first).
        """
        if self._count + 1 > self._size * fibonacci.GROWTH_THRESHOLD:
            self._grow()
        self._buckets[obj.hash_val % self._size].append(obj)
        self._count += 1

    def remove(self, obj: LocationObject) -> bool:
        """Physically unchain *obj*; True when it was present.

        Identity comparison, not key comparison: by removal time the object
        is normally hidden and its key may already describe nothing.
        """
        bucket = self._buckets[obj.hash_val % self._size]
        for pos, candidate in enumerate(bucket):
            if candidate is obj:
                # Swap-with-last keeps removal O(1) within the chain; chain
                # order is not meaningful to any algorithm here.
                bucket[pos] = bucket[-1]
                bucket.pop()
                self._count -= 1
                return True
        return False

    def __iter__(self) -> Iterator[LocationObject]:
        """Iterate every chained object (hidden ones included)."""
        for bucket in self._buckets:
            yield from bucket

    def visible(self) -> Iterator[LocationObject]:
        """Iterate only objects findable by lookups."""
        for bucket in self._buckets:
            for obj in bucket:
                if not obj.hidden:
                    yield obj

    def chain_lengths(self) -> list[int]:
        """Length of every chain — the collision metric of bench E3."""
        return [len(b) for b in self._buckets]

    def mean_probe_length(self) -> float:
        """Average chain positions examined per lookup so far."""
        return self.probes / self.lookups if self.lookups else 0.0

    # -- internals ---------------------------------------------------------

    def _grow(self) -> None:
        new_size = fibonacci.next_fibonacci(self._size)
        new_buckets: list[list[LocationObject]] = [[] for _ in range(new_size)]
        for bucket in self._buckets:
            for obj in bucket:
                new_buckets[obj.hash_val % new_size].append(obj)
        self._buckets = new_buckets
        self._size = new_size
        self.resizes += 1

    def check_invariants(self, on_object: Callable[[LocationObject], None] | None = None) -> None:
        """Verify structural invariants; optionally run a per-object check.

        Raises :class:`~repro.analysis.violations.TableStructureViolation`
        (an ``AssertionError`` subclass) with bucket/key context.
        """
        if not fibonacci.is_fibonacci(self._size):
            raise TableStructureViolation(
                "table size is not a Fibonacci number", invariant="fib-size", size=self._size
            )
        total = 0
        for idx, bucket in enumerate(self._buckets):
            for obj in bucket:
                if obj.hash_val % self._size != idx:
                    raise TableStructureViolation(
                        "object chained in the wrong bucket",
                        invariant="bucket-placement",
                        path=obj.key,
                        bucket=idx,
                        expected=obj.hash_val % self._size,
                    )
                if on_object is not None:
                    on_object(obj)
                total += 1
        if total != self._count:
            raise TableStructureViolation(
                "chained-object count out of sync",
                invariant="count-sync",
                count=self._count,
                chained=total,
            )
