"""Time-based eviction: the 64-slot sliding window.

Every location object lives for a fixed lifetime ``L_t`` (default eight
hours).  Enforcing per-object timers over millions of objects would be
heap-management noise on the hot path, so the paper instead divides ``L_t``
into 64 windows and ticks a window clock ``T_w`` every ``L_t / 64`` (7.5
minutes at the default):

* at insert, an object records ``T_a = T_w mod 64`` and is chained into
  window ``T_a``;
* on each tick, every object in the *new* window whose ``T_a`` matches is
  **hidden** (key length zeroed — O(1), lookups immediately stop finding
  it), and physical removal is left to a background job;
* on average only 1/64 ≈ 1.6% of the cache is touched per tick, so
  "the cost of cache maintenance is equally spread across L_t".

Refreshes complicate the picture (§III-C1): a refreshed object gets a new
``T_a`` but is *not* moved to its new window chain — individually re-chaining
objects "results in a more quadratic cost".  Instead the purge pass over a
window chain re-chains, in the same linear sweep, every object whose ``T_a``
no longer matches the window being purged.  Bench E9 reproduces the
linear-vs-quadratic comparison against
:mod:`repro.baselines.naive_eviction`.

This module is deliberately clock-agnostic: :meth:`EvictionWindows.tick` is
called by whoever owns time — a wall-clock thread in production, a sim
process at ``L_t/64`` in the cluster layer, or a bench loop directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.violations import WindowAccountingViolation
from repro.core.location import LocationObject

__all__ = ["EvictionWindows", "TickResult", "WINDOW_COUNT", "DEFAULT_LIFETIME"]

#: Number of windows the lifetime is divided into (paper: L_t / 64).
WINDOW_COUNT = 64

#: Default location-object lifetime L_t, in seconds (paper: eight hours).
DEFAULT_LIFETIME = 8 * 3600.0


@dataclass(slots=True)
class TickResult:
    """Outcome of one window tick.

    ``hidden`` objects were logically evicted this tick and await physical
    removal; ``newly_hidden`` counts how many of those the sweep itself hid
    (the rest were already hidden by an explicit invalidate — the cache's
    O(1) live counter needs the distinction); ``rechained`` counts objects
    the sweep moved to their correct window (the deferred re-chaining
    optimization at work).
    """

    window: int
    hidden: list[LocationObject] = field(default_factory=list)
    newly_hidden: int = 0
    rechained: int = 0
    swept: int = 0


class EvictionWindows:
    """The 64 window chains plus the window clock ``T_w``.

    Chains are plain lists of objects.  An object's authoritative desired
    window is its ``t_a`` field; ``chain_window`` records where it is
    *physically* chained, which may lag after a refresh until the next
    purge of its old chain.
    """

    __slots__ = (
        "_chains",
        "t_w",
        "total_hidden",
        "total_rechained",
        "total_swept",
        "_population",
        "_obs",
        "_node",
        "_m_hidden",
        "_m_rechained",
        "_m_swept",
        "_m_ticks",
        "_m_sweep_frac",
    )

    def __init__(self, *, obs=None, node: str = "") -> None:
        self._chains: list[list[LocationObject]] = [[] for _ in range(WINDOW_COUNT)]
        #: The window clock; monotonically increasing tick count.
        self.t_w: int = 0
        #: Cumulative statistics for bench E5.
        self.total_hidden = 0
        self.total_rechained = 0
        self.total_swept = 0
        #: Incrementally maintained chained-object count; keeps
        #: :meth:`population` O(1) (cross-checked by check_invariants).
        self._population = 0
        # Observability (repro.obs): per-tick counters plus an eviction-
        # interference annotation on any resolution trace in flight for a
        # path the sweep hides.
        self._obs = obs
        self._node = node
        if obs is not None:
            self._m_hidden = obs.metrics.counter("evict_hidden_total", node=node)
            self._m_rechained = obs.metrics.counter("evict_rechained_total", node=node)
            self._m_swept = obs.metrics.counter("evict_swept_total", node=node)
            self._m_ticks = obs.metrics.counter("evict_ticks_total", node=node)
            self._m_sweep_frac = obs.metrics.histogram("evict_sweep_fraction", node=node)
        else:
            self._m_hidden = self._m_rechained = self._m_swept = None
            self._m_ticks = self._m_sweep_frac = None

    @property
    def current_window(self) -> int:
        """``T_w mod 64`` — the window new objects are stamped with."""
        return self.t_w % WINDOW_COUNT

    def chain_len(self, window: int) -> int:
        return len(self._chains[window])

    def population(self) -> int:
        """Total objects physically chained across all windows — O(1)."""
        return self._population

    # -- object placement -----------------------------------------------------

    def add(self, obj: LocationObject) -> None:
        """Stamp *obj* with the current window and chain it there."""
        w = self.current_window
        obj.t_a = w
        obj.chain_window = w
        self._chains[w].append(obj)
        self._population += 1

    def refresh(self, obj: LocationObject) -> None:
        """Renew *obj*'s lifetime without re-chaining it.

        "Even though T_a is updated, the location object is not placed in
        the corresponding window chain ... the task is left to a future
        thread" (§III-C1).  Only ``t_a`` changes; ``chain_window`` keeps
        recording the physical location so tests can observe the deferral.
        """
        obj.t_a = self.current_window

    def unchain(self, obj: LocationObject) -> bool:
        """Remove *obj* from its physical chain (used by explicit removal)."""
        w = obj.chain_window
        if w < 0:
            return False
        chain = self._chains[w]
        for pos, candidate in enumerate(chain):
            if candidate is obj:
                chain[pos] = chain[-1]
                chain.pop()
                obj.chain_window = -1
                self._population -= 1
                return True
        return False

    # -- the clock ---------------------------------------------------------

    def tick(self) -> TickResult:
        """Advance ``T_w`` and sweep the expiring window's chain.

        For each object physically chained in the new window:

        * ``t_a == window``  → its lifetime is up: hide it (logical
          eviction) and report it for background physical removal;
        * ``t_a != window``  → it was refreshed since being chained here:
          move it to chain ``t_a`` (the deferred re-chaining);
        * already hidden     → it was explicitly invalidated earlier; report
          it for removal too so its storage gets recycled.

        The returned :class:`TickResult` carries the hidden objects; the
        cache feeds them to its background-removal step.  The sweep itself
        never touches the hash table, mirroring "physical removal is a
        background task [with] minimal interference with cache look-ups".
        """
        self.t_w += 1
        window = self.current_window
        chain = self._chains[window]
        result = TickResult(window=window)
        population_before = self._population
        survivors: list[LocationObject] = []
        for obj in chain:
            result.swept += 1
            if obj.hidden or obj.t_a == window:
                if not obj.hidden:
                    obj.hide()
                    result.newly_hidden += 1
                obj.chain_window = -1
                result.hidden.append(obj)
            else:
                self._chains[obj.t_a].append(obj)
                obj.chain_window = obj.t_a
                result.rechained += 1
        # Survivors all moved elsewhere or were hidden; the chain empties.
        self._chains[window] = survivors
        self._population -= len(result.hidden)
        self.total_hidden += len(result.hidden)
        self.total_rechained += result.rechained
        self.total_swept += result.swept
        if self._obs is not None:
            self._m_ticks.inc()
            self._m_hidden.inc(len(result.hidden))
            self._m_rechained.inc(result.rechained)
            self._m_swept.inc(result.swept)
            if population_before:
                # The paper's ~1.6% claim: fraction of the cache one tick touched.
                self._m_sweep_frac.record(result.swept / population_before)
            tracer = self._obs.tracer
            for obj in result.hidden:
                # Eviction interference: a lookup racing the sweep sees its
                # object vanish mid-resolution — make that visible.
                tracer.event(obj.key, "evict.hidden", node=self._node, window=window)
        return result

    def check_invariants(self) -> None:
        """Every chained object's ``chain_window`` must match its chain.

        Raises :class:`~repro.analysis.violations.WindowAccountingViolation`
        (an ``AssertionError`` subclass) naming the object and windows.
        """
        seen: dict[int, int] = {}
        for w, chain in enumerate(self._chains):
            for obj in chain:
                if obj.chain_window != w:
                    raise WindowAccountingViolation(
                        "chain_window disagrees with physical chain",
                        invariant="chain-window",
                        path=obj.key,
                        chain_window=obj.chain_window,
                        chained_in=w,
                    )
                if id(obj) in seen:
                    raise WindowAccountingViolation(
                        "object chained twice",
                        invariant="single-chain",
                        path=obj.key,
                        windows=(seen[id(obj)], w),
                    )
                seen[id(obj)] = w
        if len(seen) != self._population:
            raise WindowAccountingViolation(
                "incremental population counter out of sync",
                invariant="population-sync",
                counter=self._population,
                chained=len(seen),
            )
