"""Fibonacci table-size ladder.

The cmsd location cache sizes its hash table "to be a Fibonacci number of
entries" and, when occupancy reaches 80%, grows to "the subsequent Fibonacci
number" (paper §III-A1).  The authors report that CRC32 modulo a Fibonacci
number disperses file names far more uniformly than CRC32 modulo a power of
two (footnote 4) — powers of two simply mask off high-order bits, and CRC32's
low bits are correlated for paths sharing suffixes, while a Fibonacci modulus
involves every bit of the key.

Because consecutive Fibonacci numbers grow by the golden ratio (~1.618), the
resize schedule is geometric: resizing cost amortizes to O(1) per insert and
the resize *rate* decays as the table grows, matching the paper's observation
that "resizing ceases in a relatively short time".
"""

from __future__ import annotations

import bisect
from typing import Iterator

__all__ = [
    "fibonacci_numbers",
    "next_fibonacci",
    "is_fibonacci",
    "DEFAULT_INITIAL_SIZE",
    "GROWTH_THRESHOLD",
]

#: First table size used by a fresh cache.  Small enough that tests exercise
#: several resizes cheaply; production cmsd starts larger but the ladder is
#: identical from any rung up.
DEFAULT_INITIAL_SIZE = 89

#: Occupancy fraction that triggers growth (paper: 80%).
GROWTH_THRESHOLD = 0.80


def _fib_iter() -> Iterator[int]:
    a, b = 1, 2
    while True:
        yield a
        a, b = b, a + b


def _build_ladder(limit: int) -> list[int]:
    ladder = []
    for f in _fib_iter():
        ladder.append(f)
        if f > limit:
            break
    return ladder


# Precomputed well past any realistic table size (2^62 entries).
_LADDER = _build_ladder(1 << 62)


def fibonacci_numbers(limit: int) -> list[int]:
    """All Fibonacci numbers ``<= limit`` (starting 1, 2, 3, 5, ...)."""
    idx = bisect.bisect_right(_LADDER, limit)
    return _LADDER[:idx]


def next_fibonacci(n: int) -> int:
    """Smallest Fibonacci number strictly greater than *n*.

    This is the resize target: a table of ``F_k`` entries grows to
    ``next_fibonacci(F_k) == F_{k+1}``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    idx = bisect.bisect_right(_LADDER, n)
    if idx >= len(_LADDER):
        raise OverflowError(f"no precomputed Fibonacci number above {n}")
    return _LADDER[idx]


def is_fibonacci(n: int) -> bool:
    """True when *n* is one of the ladder's Fibonacci numbers."""
    idx = bisect.bisect_left(_LADDER, n)
    return idx < len(_LADDER) and _LADDER[idx] == n
