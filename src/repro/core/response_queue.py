"""The fast response queue.

Scalla's request-rarely-respond protocol treats silence as "I don't have the
file", which forces a conservative full wait (default 5 s) before declaring
non-existence.  For files that *do* exist somewhere, waiting 5 s would be
absurd when servers typically answer within ~100 µs.  The fast response
queue (§III-B) closes that gap:

* "The response queue is simply an array of 1024 anchors for a list of
  response objects and the corresponding cache entry."
* A location object carries two slot indices, ``R_r`` (readers) and ``R_w``
  (writers).
* The queue is **loosely coupled** to the cache: a slot may be reclaimed
  asynchronously without fixing up the location object's reference; validity
  is re-checked (stamps) whenever the reference is about to be used.
* A dedicated clock removes any request older than one 133 ms period; such
  clients fall back to the full 5 s wait-and-retry.  A server response
  arriving within the period releases all waiting clients immediately.

Two extensions beyond the paper's fixed LAN-scoped window (both preserve
the paper's behaviour exactly when unused):

* **Per-anchor windows** — :meth:`ResponseQueue.add_waiter` accepts an
  optional ``window`` so the host can size each anchor's deadline to the
  slowest expected responder (WAN federations, §IV-A).  Anchors default to
  the global 133 ms period, and the expiry timeline is a heap because
  per-anchor windows break the FIFO ordering a deque assumed.
* **Late-response reconciliation** — waiters expired into the full
  conservative delay are *parked* (per location key + generation) for up
  to ``park_ttl`` seconds.  A response arriving after the window closed —
  exactly what an 80 ms WAN hop produces against a 133 ms window — reaches
  them through :meth:`on_late_response` instead of evaporating, so the
  host can release clients otherwise condemned to sit out the full 5 s.

This module is thread-free and clock-agnostic like the rest of
:mod:`repro.core`: the host calls :meth:`ResponseQueue.expire` from whatever
plays the role of the response thread (a sim process in the cluster layer).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.core.location import NO_QUEUE, LocationObject

__all__ = [
    "AccessMode",
    "Waiter",
    "AddOutcome",
    "ResponseQueue",
    "DEFAULT_ANCHORS",
    "DEFAULT_PERIOD",
    "DEFAULT_PARK_TTL",
]

#: Number of anchors in the response queue (paper: 1024).
DEFAULT_ANCHORS = 1024

#: Fast-response clocking period in seconds (paper: 133 ms).
DEFAULT_PERIOD = 0.133

#: How long expired waiters stay parked for late-response release.  The
#: paper's full delay: past that the client has retried anyway.
DEFAULT_PARK_TTL = 5.0


class AccessMode:
    """The two access modes distinguished by the queue (``R_r`` / ``R_w``)."""

    READ = "r"
    WRITE = "w"


@dataclass
class Waiter:
    """One client waiting for a location answer.

    ``payload`` is opaque to the queue — the cluster layer stores whatever
    it needs to wake the client (a sim event, a callback, a request id).
    ``server`` is filled in when a response releases the waiter; it stays
    -1 on timeout.
    """

    payload: Any
    enqueued_at: float
    mode: str
    server: int = -1


@dataclass
class AddOutcome:
    """Result of :meth:`ResponseQueue.add_waiter`.

    ``accepted`` False means all 1024 anchors were busy; the paper's
    fallback applies ("the client is asked to wait a full time period and
    retry").  ``queue_was_empty`` True means the caller should wake the
    response clock — "the notification is only performed if the queue was
    empty implying that the response queue thread is idle".
    """

    accepted: bool
    queue_was_empty: bool = False


@dataclass
class _Anchor:
    index: int
    stamp: int = 0
    in_use: bool = False
    loc: LocationObject | None = None
    loc_generation: int = -1
    mode: str = AccessMode.READ
    oldest: float = 0.0
    expiry: float = 0.0
    waiters: list[Waiter] = field(default_factory=list)

    def reclaim(self) -> list[Waiter]:
        """Free the anchor, invalidating every outstanding reference to it."""
        waiters, self.waiters = self.waiters, []
        self.stamp += 1
        self.in_use = False
        self.loc = None
        self.loc_generation = -1
        return waiters


class ResponseQueue:
    """The 1024-anchor fast response queue with 133 ms expiry clocking."""

    def __init__(
        self,
        anchors: int = DEFAULT_ANCHORS,
        period: float = DEFAULT_PERIOD,
        *,
        park_ttl: float = DEFAULT_PARK_TTL,
        obs=None,
        node: str = "",
    ) -> None:
        if anchors < 1:
            raise ValueError("need at least one anchor")
        self._anchors = [_Anchor(index=i) for i in range(anchors)]
        self._free: list[int] = list(range(anchors - 1, -1, -1))
        #: Expiry heap: (absolute expiry time, anchor index, stamp).  A heap
        #: (not a deque) because per-anchor windows expire out of FIFO order.
        self._timeline: list[tuple[float, int, int]] = []
        self.period = period
        #: Late-response parking: (loc key, loc generation) -> parked
        #: waiters, each carried with its purge deadline.  ``park_ttl <= 0``
        #: disables parking (the paper's discard-on-expiry behaviour).
        self.park_ttl = park_ttl
        self._parked: dict[tuple[str, int], list[tuple[float, Waiter]]] = {}
        self._park_order: list[tuple[float, str, int]] = []
        self._active = 0
        # Statistics surfaced by bench E6 / E6-wan.
        self.fast_responses = 0
        self.timeouts = 0
        self.rejected = 0
        self.late_responses = 0
        # Observability (repro.obs): instruments resolved once, every hot
        # site below guards with one `is not None` check.
        self._obs = obs
        if obs is not None:
            self._m_enq = obs.metrics.counter("rq_enqueued_total", node=node)
            self._m_rejected = obs.metrics.counter("rq_rejected_total", node=node)
            self._m_released = obs.metrics.counter("rq_released_total", node=node)
            self._m_expired = obs.metrics.counter("rq_expired_total", node=node)
            self._m_late = obs.metrics.counter("rq_late_responses_total", node=node)
            self._m_active = obs.metrics.gauge("rq_active_anchors", node=node)
            self._m_window = obs.metrics.gauge("rq_window_seconds", node=node)
            self._m_wait = obs.metrics.histogram("rq_wait_seconds", node=node)

    # -- introspection ---------------------------------------------------------

    @property
    def active_anchors(self) -> int:
        return self._active

    def pending_waiters(self) -> int:
        return sum(len(a.waiters) for a in self._anchors if a.in_use)

    def parked_waiters(self) -> int:
        """Expired waiters still eligible for late-response release."""
        return sum(len(entry) for entry in self._parked.values())

    def has_anchor(self, loc: LocationObject, mode: str) -> bool:
        """True when *loc* holds a live anchor association for *mode*."""
        return self._valid_anchor(loc, mode) is not None

    # -- enqueue ---------------------------------------------------------------

    def add_waiter(
        self,
        loc: LocationObject,
        mode: str,
        payload: Any,
        now: float,
        *,
        window: float | None = None,
    ) -> AddOutcome:
        """Queue a client for the answer to *loc* under *mode*.

        Joins the location object's existing anchor when its reference is
        still valid; otherwise takes a fresh anchor and records the
        association in the location object (``R_r`` or ``R_w``).

        *window* sizes the fresh anchor's expiry deadline; None means the
        global period.  A join ignores it — the anchor's clock is already
        running, and extending it per joiner would starve the expiry sweep.
        """
        was_empty = self._active == 0
        anchor = self._valid_anchor(loc, mode)
        if anchor is None:
            if not self._free:
                self.rejected += 1
                if self._obs is not None:
                    self._m_rejected.inc()
                return AddOutcome(accepted=False)
            anchor = self._anchors[self._free.pop()]
            anchor.in_use = True
            anchor.loc = loc
            anchor.loc_generation = loc.generation
            anchor.mode = mode
            anchor.oldest = now
            effective = self.period if window is None else window
            anchor.expiry = now + effective
            self._active += 1
            heapq.heappush(self._timeline, (anchor.expiry, anchor.index, anchor.stamp))
            self._associate(loc, mode, anchor)
            if self._obs is not None:
                self._m_window.set(effective)
        anchor.waiters.append(Waiter(payload=payload, enqueued_at=now, mode=mode))
        if self._obs is not None:
            self._m_enq.inc()
            self._m_active.set(self._active)
        return AddOutcome(accepted=True, queue_was_empty=was_empty)

    # -- release paths ---------------------------------------------------------

    def on_response(
        self,
        loc: LocationObject,
        server: int,
        *,
        write_capable: bool,
        now: float | None = None,
    ) -> list[Waiter]:
        """Release waiters of *loc* now that *server* reported having it.

        Readers are always releasable; writers only when the responding
        server grants write access ("the access mode the server allows").
        Returns the released waiters with ``server`` filled in; the caller
        (the response thread in the paper) delivers the redirects.

        *now* is only consumed by observability (anchor-wait histograms);
        instrumented callers pass the current time, others may omit it.
        """
        released: list[Waiter] = []
        modes = [AccessMode.READ] + ([AccessMode.WRITE] if write_capable else [])
        for mode in modes:
            anchor = self._valid_anchor(loc, mode)
            if anchor is None:
                continue
            for w in anchor.waiters:
                w.server = server
                released.append(w)
            anchor.reclaim()
            self._active -= 1
            self._free.append(anchor.index)
            self._dissociate(loc, mode)
        self.fast_responses += len(released)
        if self._obs is not None and released:
            self._m_released.inc(len(released))
            self._m_active.set(self._active)
            if now is not None:
                for w in released:
                    self._m_wait.record(now - w.enqueued_at)
        return released

    def on_late_response(
        self,
        loc: LocationObject,
        server: int,
        *,
        write_capable: bool,
        now: float,
    ) -> list[Waiter]:
        """Release *parked* waiters of *loc*: the response beat the full delay.

        The anchor these waiters sat on expired (and has very likely been
        reclaimed, restamped, and reused for some other file — parking is
        keyed by location key + generation precisely so anchor reuse cannot
        misroute a late answer).  Read-only responses leave parked writers
        in place for a later write-capable answer; duplicate late responses
        find the parking slot empty and release nothing.
        """
        key = (loc.key, loc.generation)
        entry = self._parked.get(key)
        if not entry:
            return []
        released: list[Waiter] = []
        kept: list[tuple[float, Waiter]] = []
        for purge_at, w in entry:
            if purge_at <= now:
                continue  # past the park TTL: the client has retried already
            if w.mode == AccessMode.WRITE and not write_capable:
                kept.append((purge_at, w))
                continue
            w.server = server
            released.append(w)
        if kept:
            self._parked[key] = kept
        else:
            del self._parked[key]
        self.late_responses += len(released)
        if self._obs is not None and released:
            self._m_late.inc(len(released))
            for w in released:
                self._m_wait.record(now - w.enqueued_at)
        return released

    def expire(self, now: float) -> list[Waiter]:
        """Remove every anchor past its window; return its waiters.

        Implements the response thread's clocking: "any request that has
        been in the queue for longer than 133 ms is removed and the cache
        association is invalidated".  Expired waiters keep ``server == -1``
        — the caller imposes the full 5 s wait-and-retry on them — but stay
        parked for :meth:`on_late_response` until ``park_ttl`` passes.
        """
        self._purge_parked(now)
        expired: list[Waiter] = []
        while self._timeline and self._timeline[0][0] <= now:
            _expiry, idx, stamp = heapq.heappop(self._timeline)
            anchor = self._anchors[idx]
            if not anchor.in_use or anchor.stamp != stamp:
                continue  # already released by a response
            loc, mode = anchor.loc, anchor.mode
            waiters = anchor.reclaim()
            expired.extend(waiters)
            self._active -= 1
            self._free.append(anchor.index)
            if loc is not None:
                self._dissociate(loc, mode)
                if self.park_ttl > 0 and waiters:
                    self._park(loc, waiters, now)
        self.timeouts += len(expired)
        if self._obs is not None and expired:
            self._m_expired.inc(len(expired))
            self._m_active.set(self._active)
            for w in expired:
                self._m_wait.record(now - w.enqueued_at)
        return expired

    def next_expiry(self) -> float | None:
        """Earliest time an active anchor can expire, or None when idle."""
        while self._timeline:
            expiry, idx, stamp = self._timeline[0]
            anchor = self._anchors[idx]
            if anchor.in_use and anchor.stamp == stamp:
                return expiry
            heapq.heappop(self._timeline)
        return None

    # -- late-response parking ---------------------------------------------------

    def unpark(self, loc: LocationObject, waiter: Waiter) -> bool:
        """Withdraw one parked waiter (it found another path to an answer).

        The re-query path calls this after re-anchoring an expired waiter's
        payload: leaving the stale parked copy behind would release the
        same client twice when the late answer finally lands.
        """
        key = (loc.key, loc.generation)
        entry = self._parked.get(key)
        if not entry:
            return False
        kept = [(p, w) for (p, w) in entry if w is not waiter]
        if len(kept) == len(entry):
            return False
        if kept:
            self._parked[key] = kept
        else:
            del self._parked[key]
        return True

    def _park(self, loc: LocationObject, waiters: list[Waiter], now: float) -> None:
        key = (loc.key, loc.generation)
        purge_at = now + self.park_ttl
        entry = self._parked.setdefault(key, [])
        for w in waiters:
            entry.append((purge_at, w))
        heapq.heappush(self._park_order, (purge_at, loc.key, loc.generation))

    def _purge_parked(self, now: float) -> None:
        while self._park_order and self._park_order[0][0] <= now:
            _purge_at, key, generation = heapq.heappop(self._park_order)
            entry = self._parked.get((key, generation))
            if not entry:
                self._parked.pop((key, generation), None)
                continue
            fresh = [(p, w) for (p, w) in entry if p > now]
            if fresh:
                self._parked[(key, generation)] = fresh
            else:
                del self._parked[(key, generation)]

    # -- association plumbing ----------------------------------------------------

    def _valid_anchor(self, loc: LocationObject, mode: str) -> _Anchor | None:
        """The anchor *loc* references for *mode*, iff still associated.

        This is the loose-coupling check: the slot index stored in the
        location object is trusted only when the anchor's stamp matches the
        stamp recorded at association time and the anchor still points back
        at this very object (same storage *and* same generation).
        """
        if mode == AccessMode.READ:
            idx, stamp = loc.rq_read, loc.rq_read_stamp
        else:
            idx, stamp = loc.rq_write, loc.rq_write_stamp
        if idx == NO_QUEUE:
            return None
        anchor = self._anchors[idx]
        if (
            anchor.in_use
            and anchor.stamp == stamp
            and anchor.loc is loc
            and anchor.loc_generation == loc.generation
            and anchor.mode == mode
        ):
            return anchor
        return None

    @staticmethod
    def _associate(loc: LocationObject, mode: str, anchor: _Anchor) -> None:
        if mode == AccessMode.READ:
            loc.rq_read, loc.rq_read_stamp = anchor.index, anchor.stamp
        else:
            loc.rq_write, loc.rq_write_stamp = anchor.index, anchor.stamp

    @staticmethod
    def _dissociate(loc: LocationObject, mode: str) -> None:
        if mode == AccessMode.READ:
            loc.rq_read = NO_QUEUE
        else:
            loc.rq_write = NO_QUEUE
