"""Deadline-based query synchronization.

When several clients fetch the same cold location object concurrently, only
one query flood should go out.  Scalla avoids a lock or a condition queue
for this: "a processing deadline equal to the current time plus 5 seconds is
set for the object ... An active deadline implies that some thread is in the
process of issuing queries" (§III-C2).  Threads that find an unexpired
deadline and empty V_h/V_p simply defer the client (via the fast response
queue) instead of flooding again.

The deadline doubles as the non-existence horizon: once it has passed with
all three vectors empty, the file provably got no positive answer within the
full wait and the client is told it does not exist (resolution step 2).
"""

from __future__ import annotations

from repro.core.location import LocationObject

__all__ = ["DeadlinePolicy", "DEFAULT_FULL_DELAY"]

#: The full wait imposed when silence must be interpreted (paper: 5 s).
DEFAULT_FULL_DELAY = 5.0


class DeadlinePolicy:
    """Arms and interprets location-object processing deadlines.

    Stateless apart from the configured delay; exists as a class so cluster
    components share one configured instance and tests can shrink the delay
    to keep simulations fast.
    """

    def __init__(self, full_delay: float = DEFAULT_FULL_DELAY) -> None:
        if full_delay <= 0:
            raise ValueError("full_delay must be positive")
        self.full_delay = full_delay

    def arm(self, loc: LocationObject, now: float) -> float:
        """Start a query epoch: set the deadline and return it.

        Called by the thread about to flood V_q (resolution step 1: "if
        V_q is not null, a processing deadline of 5 seconds from the
        current time is set in the location object").  A fresh epoch also
        resets the bounded re-query budget: retries are per epoch, not per
        object lifetime.
        """
        loc.deadline = now + self.full_delay
        loc.rq_retries = 0
        return loc.deadline

    def remaining(self, loc: LocationObject, now: float) -> float:
        """Seconds of the current epoch still ahead (0 when expired).

        Re-query windows are capped to this: there is no point arming a
        fast-response window that outlives the epoch whose answers it is
        waiting for.
        """
        return max(0.0, loc.deadline - now)

    def active(self, loc: LocationObject, now: float) -> bool:
        """True while some thread's query epoch is still in flight."""
        return loc.deadline > now

    def i_should_query(self, loc: LocationObject, now: float) -> bool:
        """Decide whether the calling thread owns the query flood.

        True exactly when V_q is non-empty and no epoch is active; the
        caller must then :meth:`arm` before dispatching, which is what
        excludes every later thread until the deadline passes.
        """
        return loc.v_q != 0 and not self.active(loc, now)

    def nonexistent(self, loc: LocationObject, now: float) -> bool:
        """True when the file can be declared absent (step 2, first bullet).

        Requires all vectors empty *and* an expired deadline — an empty
        object with a live deadline merely means answers are still possibly
        in flight.
        """
        return loc.known_empty and not self.active(loc, now)
