"""Cache references with authenticators.

The resolution protocol needs to touch a location object several times per
request (steps 1, 4, 6 of §III-B1) without re-hashing and re-walking the
chain each time, and — crucially — without holding a lock across the calls.
The paper's solution: the lookup returns "the reference to the location
object and a reference authenticator".  Because location objects are never
deallocated (their storage is recycled), a stale reference still points at
*a* valid object; the authenticator — a per-object generation counter bumped
on every removal — detects whether it is still *the same* object.

"A reference is valid if its authenticator equals the current counter value
in the object it points to."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.location import LocationObject

__all__ = ["CacheRef"]


@dataclass(frozen=True, slots=True)
class CacheRef:
    """A lock-free handle to a cached location object.

    Immutable by design: a ref captures the object identity at lookup time
    and can be safely stashed in response-queue entries, passed between
    protocol steps, or kept across simulated time.  ``valid`` must be
    checked before every use; on False the caller performs a fresh lookup
    (and, if that also fails, asks the client to retry — §III-B1).
    """

    obj: LocationObject
    generation: int
    key: str
    hash_val: int

    @property
    def valid(self) -> bool:
        """True while the storage still holds the object we looked up."""
        return self.obj.generation == self.generation

    def get(self) -> LocationObject:
        """The referenced object; raises ``StaleReference`` when invalid."""
        if not self.valid:
            raise StaleReference(self.key)
        return self.obj


class StaleReference(Exception):
    """The referenced location object was removed (and possibly recycled)."""

    def __init__(self, key: str) -> None:
        super().__init__(f"stale cache reference for {key!r}")
        self.key = key
