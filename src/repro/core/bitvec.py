"""64-bit server vectors.

Scalla describes the location state of every file with three 64-bit vectors
(V_h, V_p, V_q) in which bit ``1 << i`` stands for server ``i`` of the local
cluster (Section III-A1 of the paper).  The cluster is organized so that no
cmsd ever addresses more than 64 direct subordinates, which is what makes a
single machine word sufficient and every vector operation O(1).

We represent vectors as plain Python ints restricted to 64 bits.  Ints are
immutable, hashable, compare cheaply, and ``int.bit_count()`` gives a
C-speed popcount; this is the most compact faithful representation available
in pure Python.  This module collects the handful of helpers the rest of the
code base uses so that bit-twiddling idioms stay in one audited place.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "MAX_SERVERS",
    "FULL_MASK",
    "EMPTY",
    "bit",
    "has",
    "set_bit",
    "clear_bit",
    "iter_bits",
    "count",
    "first_bit",
    "validate",
    "from_indices",
    "to_indices",
    "format_vec",
]

#: Maximum number of directly addressable servers per cmsd (paper §III-A1).
MAX_SERVERS = 64

#: Vector with every server bit set.
FULL_MASK = (1 << MAX_SERVERS) - 1

#: The empty vector.
EMPTY = 0


def bit(i: int) -> int:
    """Return the vector containing only server *i*.

    Raises ``ValueError`` when *i* is outside ``[0, 64)``; the 64-server
    limit is a structural invariant of the cluster (64-ary tree), so an
    out-of-range index is always a caller bug.
    """
    if not 0 <= i < MAX_SERVERS:
        raise ValueError(f"server index {i} outside [0, {MAX_SERVERS})")
    return 1 << i


def has(vec: int, i: int) -> bool:
    """True when server *i*'s bit is set in *vec*."""
    return (vec >> i) & 1 == 1 if 0 <= i < MAX_SERVERS else False


def set_bit(vec: int, i: int) -> int:
    """Return *vec* with server *i*'s bit set."""
    return vec | bit(i)


def clear_bit(vec: int, i: int) -> int:
    """Return *vec* with server *i*'s bit cleared."""
    return vec & ~bit(i) & FULL_MASK


def iter_bits(vec: int) -> Iterator[int]:
    """Yield the server indices present in *vec*, ascending.

    Runs in O(popcount) by repeatedly stripping the lowest set bit, which
    matters for query flooding where vectors are usually sparse.
    """
    v = vec & FULL_MASK
    while v:
        low = v & -v
        yield low.bit_length() - 1
        v ^= low


def count(vec: int) -> int:
    """Number of servers present in *vec* (popcount)."""
    return (vec & FULL_MASK).bit_count()


def first_bit(vec: int) -> int:
    """Lowest server index in *vec*, or -1 when the vector is empty."""
    v = vec & FULL_MASK
    if not v:
        return -1
    return (v & -v).bit_length() - 1


def validate(vec: int) -> int:
    """Check that *vec* is a legal 64-bit vector and return it.

    Negative ints or ints wider than 64 bits indicate an arithmetic slip
    somewhere upstream (typically a missing ``& FULL_MASK`` after ``~``).
    """
    if not isinstance(vec, int) or isinstance(vec, bool):
        raise TypeError(f"vector must be int, got {type(vec).__name__}")
    if vec < 0 or vec > FULL_MASK:
        raise ValueError(f"vector {vec:#x} outside 64-bit range")
    return vec


def from_indices(indices) -> int:
    """Build a vector from an iterable of server indices."""
    vec = 0
    for i in indices:
        vec |= bit(i)
    return vec


def to_indices(vec: int) -> list[int]:
    """List of server indices present in *vec*, ascending."""
    return list(iter_bits(vec))


def format_vec(vec: int) -> str:
    """Human-readable rendering, e.g. ``{0,3,17}`` — used in logs and repr."""
    return "{" + ",".join(str(i) for i in iter_bits(vec)) + "}"
