"""CRC32 hashing of file names.

The cmsd cache keys its hash table with "a CRC32 encoding of the file name"
(paper §III-A1).  CRC32 is attractive for this purpose because it mixes the
long, highly structured path names HEP frameworks generate
(``/store/user/.../run001234/evts_0007.root``) far better than a simple
additive hash, at essentially memcpy speed.

Two implementations are provided:

* :func:`crc32` — delegates to :func:`zlib.crc32` (C speed).  This is what
  the cache uses.
* :func:`crc32_reference` — a table-driven pure-Python implementation of the
  same reflected CRC-32/ISO-HDLC polynomial (0xEDB88320).  It exists so the
  test suite can verify byte-for-byte agreement with zlib independent of the
  interpreter's zlib build, and to document the exact algorithm.

Both return an unsigned 32-bit value.
"""

from __future__ import annotations

import zlib

__all__ = ["crc32", "crc32_reference", "hash_name", "CRC32_POLY"]

#: Reflected generator polynomial of CRC-32/ISO-HDLC (zlib, gzip, PNG...).
CRC32_POLY = 0xEDB88320


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32_reference(data: bytes, crc: int = 0) -> int:
    """Pure-Python CRC32, bit-identical to :func:`zlib.crc32`.

    Kept simple and obviously correct; used only by tests and as executable
    documentation of the hash the paper's cache relies on.
    """
    crc = (~crc) & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return (~crc) & 0xFFFFFFFF


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC32 of *data*, continuing from *crc* (0 for a fresh checksum)."""
    return zlib.crc32(data, crc) & 0xFFFFFFFF


def hash_name(name: str) -> int:
    """Hash a file path into the unsigned 32-bit cache key.

    Paths are encoded as UTF-8; cmsd treats the path purely as an opaque
    byte string (the manager-level namespace is flat, §II-B4), so no
    normalization is applied.
    """
    return crc32(name.encode("utf-8"))
