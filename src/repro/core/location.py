"""Location objects.

"Each file is associated with a location object that holds the file's
location state" (paper §III-A1).  The state is three 64-bit vectors:

* ``v_h`` — servers that *have* the file online,
* ``v_p`` — servers *preparing* the file (e.g. staging it from an MSS),
* ``v_q`` — servers that still need to be *queried* about the file.

Invariant (stated in the paper): bits in ``v_q`` are never present in
``v_h`` or ``v_p``.  :meth:`LocationObject.check_invariants` enforces it and
the test suite pins it with property-based tests.

Lifecycle peculiarity, quoted because it drives the design of
:mod:`repro.core.refs`:  "once a location object is created it is never
deleted though its storage area can be reused for some other location
object" (§III-B1).  Hiding an object from the hash table is done by zeroing
its *key length* — the key text itself survives, lookups just stop matching —
and each reuse bumps a generation counter so stale references can detect
that the storage now belongs to a different file.
"""

from __future__ import annotations

from repro.analysis.violations import (
    InvariantViolation,
    VectorInvariantViolation,
    WindowAccountingViolation,
)
from repro.core import bitvec

__all__ = ["LocationObject", "NO_QUEUE"]

#: Sentinel meaning "no fast-response-queue entry is associated".
NO_QUEUE = -1


class LocationObject:
    """Mutable location state for one cached file name.

    Location objects are owned by the cache; user code receives them only
    through :class:`repro.core.refs.CacheRef` handles.  All fields are public
    on purpose — the cmsd algorithms manipulate them directly, exactly as the
    paper describes, and hiding them behind accessors would only obscure the
    correspondence to the text.

    Attributes
    ----------
    key:
        The file path this object currently describes.
    key_len:
        Effective length of ``key``.  Zero means the object is *hidden*:
        physically still chained in the table but unfindable (§III-A3).
    hash_val:
        Cached CRC32 of ``key`` so responses streaming back from servers
        need not rehash (§III-B1, "file names and hash keys are passed
        along").
    v_h, v_p, v_q:
        The three location vectors.
    c_n:
        Snapshot of the master connection counter ``N_c`` taken when the
        vectors were last corrected (§III-A4).
    t_a:
        Add-time window index, ``T_w mod 64`` at insert/refresh time.
    deadline:
        Absolute processing deadline; while unexpired it marks that some
        thread is already querying servers for this object (§III-C2).
    rq_read / rq_write:
        Fast-response-queue slot indices for readers/writers
        (``R_r``/``R_w``), or :data:`NO_QUEUE`.
    rq_read_stamp / rq_write_stamp:
        Association stamps; a queue slot reference is valid only while the
        slot's own stamp matches (loose coupling, §III-B).
    rq_retries:
        Re-query rounds already spent on the current query epoch
        (extension: bounded re-query with backoff before the full-delay
        fallback).  Reset whenever a new epoch is armed.
    generation:
        Reuse counter; incremented each time the storage is recycled for a
        new file.  A :class:`~repro.core.refs.CacheRef` is valid iff its
        recorded generation equals this value.
    chain_window:
        Index of the eviction-window chain this object is physically linked
        into, or -1 when unchained.  After a refresh, ``t_a`` may differ
        from ``chain_window`` until the deferred re-chaining pass runs
        (§III-C1).
    """

    __slots__ = (
        "key",
        "key_len",
        "hash_val",
        "v_h",
        "v_p",
        "v_q",
        "c_n",
        "t_a",
        "deadline",
        "rq_read",
        "rq_read_stamp",
        "rq_write",
        "rq_write_stamp",
        "rq_retries",
        "generation",
        "chain_window",
    )

    def __init__(self) -> None:
        self.key: str = ""
        self.key_len: int = 0
        self.hash_val: int = 0
        self.v_h: int = 0
        self.v_p: int = 0
        self.v_q: int = 0
        self.c_n: int = 0
        self.t_a: int = 0
        self.deadline: float = 0.0
        self.rq_read: int = NO_QUEUE
        self.rq_read_stamp: int = 0
        self.rq_write: int = NO_QUEUE
        self.rq_write_stamp: int = 0
        self.rq_retries: int = 0
        self.generation: int = 0
        self.chain_window: int = -1

    # -- lifecycle ---------------------------------------------------------

    def assign(self, key: str, hash_val: int, c_n: int, t_a: int) -> None:
        """(Re)initialize this storage for file *key*.

        The generation counter is bumped here as well as in :meth:`hide`:
        hide invalidates references, and the extra bump at reuse makes any
        stale bookkeeping that recorded the post-hide generation (e.g. a
        duplicate background-removal entry) detectably stale too.
        """
        self.generation += 1
        self.key = key
        self.key_len = len(key)
        self.hash_val = hash_val
        self.v_h = 0
        self.v_p = 0
        self.v_q = 0
        self.c_n = c_n
        self.t_a = t_a
        self.deadline = 0.0
        self.rq_read = NO_QUEUE
        self.rq_read_stamp = 0
        self.rq_write = NO_QUEUE
        self.rq_write_stamp = 0
        self.rq_retries = 0

    def hide(self) -> None:
        """Make the object unfindable and invalidate references to it.

        Implements the paper's "the text key length ... set to zero" trick:
        the object stays physically chained (so background removal can find
        it) but no lookup will match it.  The generation bump implements the
        reference-authenticator invalidation ("the counter is increased by
        one when a location object is removed from the cache").
        """
        self.key_len = 0
        self.generation += 1

    @property
    def hidden(self) -> bool:
        """True when the object cannot be found by lookups."""
        return self.key_len == 0

    def matches(self, key: str, hash_val: int) -> bool:
        """True when this visible object describes file *key*.

        Hash is compared first — it is already in hand and rejects almost
        all non-matches without touching the (potentially long) key string.
        """
        return (
            self.key_len != 0
            and self.hash_val == hash_val
            and self.key_len == len(key)
            and self.key == key
        )

    # -- vector bookkeeping --------------------------------------------------

    def set_holder(self, server: int, *, pending: bool = False) -> None:
        """Record that *server* has (or is preparing) the file.

        The server is simultaneously removed from ``v_q``: an answer has
        arrived, the server no longer needs querying.
        """
        b = bitvec.bit(server)
        if pending:
            self.v_p |= b
            self.v_h &= ~b & bitvec.FULL_MASK
        else:
            self.v_h |= b
            self.v_p &= ~b & bitvec.FULL_MASK
        self.v_q &= ~b & bitvec.FULL_MASK

    def clear_server(self, server: int) -> None:
        """Erase every mention of *server* (used when a server is dropped)."""
        mask = ~bitvec.bit(server) & bitvec.FULL_MASK
        self.v_h &= mask
        self.v_p &= mask
        self.v_q &= mask

    @property
    def known_empty(self) -> bool:
        """True when all three vectors are empty — nobody has the file and
        nobody is left to ask (resolution step 2)."""
        return self.v_h == 0 and self.v_p == 0 and self.v_q == 0

    def check_invariants(self) -> None:
        """Raise a typed :class:`InvariantViolation` on any broken invariant.

        All errors derive from ``AssertionError``, so callers that treated
        this as an assertion keep working; SimSan and tests catch the
        typed classes to know *which* paper invariant broke.
        """
        for label, vec in (("v_h", self.v_h), ("v_p", self.v_p), ("v_q", self.v_q)):
            try:
                bitvec.validate(vec)
            except (TypeError, ValueError) as exc:
                raise VectorInvariantViolation(
                    str(exc), invariant="vec-64bit", path=self.key, vector=label
                ) from exc
        if self.v_q & (self.v_h | self.v_p) != 0:
            raise VectorInvariantViolation(
                "v_q overlaps v_h|v_p",
                invariant="vq-disjoint",
                path=self.key,
                v_q=f"{self.v_q:#x}",
                v_h=f"{self.v_h:#x}",
                v_p=f"{self.v_p:#x}",
            )
        if not 0 <= self.t_a < 64:
            raise WindowAccountingViolation(
                "t_a outside window range", invariant="ta-range", path=self.key, t_a=self.t_a
            )
        if self.key_len not in (0, len(self.key)):
            raise InvariantViolation(
                "key_len is neither 0 (hidden) nor len(key)",
                invariant="keylen",
                path=self.key,
                key_len=self.key_len,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "hidden" if self.hidden else "live"
        return (
            f"<LocationObject {self.key!r} {state} gen={self.generation} "
            f"h={bitvec.format_vec(self.v_h)} p={bitvec.format_vec(self.v_p)} "
            f"q={bitvec.format_vec(self.v_q)} c_n={self.c_n} t_a={self.t_a}>"
        )
