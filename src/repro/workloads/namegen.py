"""HEP-style dataset path generation.

The collision experiment (E3) hinges on *realistic* file names: BaBar/LHC
frameworks generate deeply structured paths that differ in a few digits
(`run` numbers, stream ids, file sequence numbers), which is exactly the
input family where power-of-two hashing falls over.  Random hex strings
would hide the effect; these generators reproduce it.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = ["hep_paths", "sequential_paths", "qserv_chunk_path", "DEFAULT_EXPERIMENTS"]

DEFAULT_EXPERIMENTS = ("babar", "atlas", "cms", "alice", "glast")

_STREAMS = ("AllEvents", "Tau11", "IsrIncExc", "TwoPhoton", "DiLepton")
_TIERS = ("raw", "reco", "aod", "ntuple")


def hep_paths(
    count: int,
    *,
    rng: random.Random | None = None,
    experiment: str = "babar",
    runs: int = 500,
) -> list[str]:
    """Structured physics paths: shared long prefixes, few varying digits.

    Example: ``/store/babar/reco/AllEvents/run003412/evts-0071.root``.
    """
    rng = rng if rng is not None else random.Random(0)
    paths = []
    seen = set()
    while len(paths) < count:
        run = rng.randrange(runs)
        p = (
            f"/store/{experiment}/{rng.choice(_TIERS)}/{rng.choice(_STREAMS)}"
            f"/run{run:06d}/evts-{rng.randrange(10_000):04d}.root"
        )
        if p not in seen:
            seen.add(p)
            paths.append(p)
    return paths


def sequential_paths(count: int, *, prefix: str = "/store/data", width: int = 8) -> list[str]:
    """Worst-case adversarial family: identical except a counter suffix.

    Production frameworks emit exactly this shape during bulk production
    passes; it maximizes low-bit correlation in CRC32.
    """
    return [f"{prefix}/file-{i:0{width}d}.root" for i in range(count)]


def qserv_chunk_path(partition: int, *, query_id: int | None = None) -> str:
    """Qserv's partition-addressed paths (§IV-B): opening this path reaches
    a worker hosting that partition."""
    if query_id is None:
        return f"/qserv/chunk/{partition:05d}"
    return f"/qserv/chunk/{partition:05d}/q{query_id}"


def path_stream(rng: random.Random, *, experiment: str = "cms") -> Iterator[str]:
    """Endless stream of fresh structured paths (equilibrium experiment E4)."""
    i = 0
    while True:
        run = rng.randrange(100_000)
        yield (
            f"/store/{experiment}/{_TIERS[i % len(_TIERS)]}"
            f"/run{run:06d}/evts-{i:06d}.root"
        )
        i += 1
