"""Analysis-job workload: the load that motivated Scalla.

§II-A: the Root framework "would perform several meta-data operations on
dozens of files per job prior to commencing analysis", with "a thousand or
more simultaneous analysis jobs" producing "thousands of transactions per
second".  An :class:`AnalysisJob` models exactly that shape:

1. a meta-data burst — stat/locate each input file (this is what hammers
   the cmsd cache),
2. an open of each file,
3. a read phase (which mostly loads the data servers, not the cache).

:func:`run_job` is a simulation coroutine usable directly in benches and
examples; :class:`JobResult` carries the latency breakdown E2 reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.client import ScallaClient

__all__ = ["JobSpec", "JobResult", "run_job"]


@dataclass(frozen=True)
class JobSpec:
    """Shape of one analysis job."""

    files: tuple[str, ...]
    #: Bytes read per file (per read call; one call per file keeps the
    #: data phase cheap relative to meta-data, as in the real framework).
    read_bytes: int = 4096
    #: Think time between meta-data operations.
    think_time: float = 0.0


@dataclass
class JobResult:
    """Measured behaviour of one completed job."""

    stat_latencies: list[float] = field(default_factory=list)
    open_latencies: list[float] = field(default_factory=list)
    read_latencies: list[float] = field(default_factory=list)
    failures: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def metadata_ops(self) -> int:
        return len(self.stat_latencies) + len(self.open_latencies)


def run_job(client: ScallaClient, spec: JobSpec, *, rng: random.Random | None = None):
    """Simulation coroutine executing one analysis job; returns JobResult."""
    sim = client.sim
    result = JobResult(started_at=sim.now)

    # Phase 1: the meta-data burst — stat every input before anything else.
    for path in spec.files:
        t0 = sim.now
        try:
            yield from client.stat(path)
        except Exception:
            result.failures += 1
            continue
        result.stat_latencies.append(sim.now - t0)
        if spec.think_time:
            yield sim.sleep(spec.think_time)

    # Phase 2+3: open and read each file.
    for path in spec.files:
        t0 = sim.now
        try:
            opened = yield from client.open(path)
        except Exception:
            result.failures += 1
            continue
        result.open_latencies.append(sim.now - t0)

        t0 = sim.now
        try:
            yield from client.read(opened, 0, min(spec.read_bytes, max(opened.size, 1)))
            yield from client.close(opened)
        except Exception:
            result.failures += 1
            continue
        result.read_latencies.append(sim.now - t0)

    result.finished_at = sim.now
    return result
