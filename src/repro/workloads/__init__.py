"""Synthetic workload generators reproducing the paper's motivating load:
structured HEP path families, Zipf popularity, Poisson arrivals, and the
meta-data-burst analysis-job shape of §II-A."""

from repro.workloads.jobs import JobResult, JobSpec, run_job
from repro.workloads.namegen import (
    DEFAULT_EXPERIMENTS,
    hep_paths,
    path_stream,
    qserv_chunk_path,
    sequential_paths,
)
from repro.workloads.popularity import UniformChooser, ZipfChooser, poisson_arrivals

__all__ = [
    "hep_paths",
    "sequential_paths",
    "qserv_chunk_path",
    "path_stream",
    "DEFAULT_EXPERIMENTS",
    "ZipfChooser",
    "UniformChooser",
    "poisson_arrivals",
    "JobSpec",
    "JobResult",
    "run_job",
]
