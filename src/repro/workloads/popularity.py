"""File popularity and request arrival models.

The load experiment (E2) needs a realistic access skew: physics analyses
hammer the newest datasets while the archive tail sleeps.  A Zipf
distribution over the populated files is the standard model; arrivals are
Poisson (exponential gaps) per client.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random

__all__ = ["ZipfChooser", "UniformChooser", "poisson_arrivals"]


class ZipfChooser:
    """Draw items with P(rank k) ∝ 1/k^s using inverse-CDF sampling.

    Precomputes the cumulative weights once; each draw is O(log n).
    """

    def __init__(self, items, *, s: float = 1.0) -> None:
        self.items = list(items)
        if not self.items:
            raise ValueError("need at least one item")
        if s < 0:
            raise ValueError("exponent must be non-negative")
        weights = [1.0 / (k**s) for k in range(1, len(self.items) + 1)]
        self._cum = list(itertools.accumulate(weights))
        self._total = self._cum[-1]

    def choose(self, rng: random.Random):
        x = rng.random() * self._total
        idx = bisect.bisect_left(self._cum, x)
        return self.items[min(idx, len(self.items) - 1)]

    def expected_top_fraction(self, top: int) -> float:
        """Fraction of requests hitting the *top* most popular items."""
        if top <= 0:
            return 0.0
        top = min(top, len(self.items))
        return self._cum[top - 1] / self._total


class UniformChooser:
    """Uniform popularity — the no-skew control."""

    def __init__(self, items) -> None:
        self.items = list(items)
        if not self.items:
            raise ValueError("need at least one item")

    def choose(self, rng: random.Random):
        return rng.choice(self.items)

    def expected_top_fraction(self, top: int) -> float:
        return min(top, len(self.items)) / len(self.items)


def poisson_arrivals(rng: random.Random, rate: float, horizon: float) -> list[float]:
    """Arrival times of a Poisson process with *rate*/s over [0, horizon)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    times = []
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) / rate
        if t >= horizon:
            return times
        times.append(t)
