"""repro — a reproduction of *Scalla: Structured Cluster Architecture for
Low Latency Access* (Hanushevsky & Wang, 2012).

Layers:

* :mod:`repro.core` — the paper's primary contribution: the cmsd name cache
  (bit-vector location objects, CRC32 + Fibonacci hash table, sliding-window
  eviction, O(1) accuracy corrections, fast response queue, deadline
  synchronization, selection policies).
* :mod:`repro.sim` — a from-scratch deterministic discrete-event simulator
  (processes, network, latency models, failures, measurement).
* :mod:`repro.cluster` — the simulated Scalla deployment: xrootd + cmsd
  nodes in a 64-ary tree, redirection-following clients, MSS staging, cnsd.
* :mod:`repro.baselines` — the designs the paper argues against, made
  measurable (GFS-style master, AFS volume DB, power-of-two tables,
  always-respond protocol, eager re-chaining).
* :mod:`repro.qserv` — the LSST Qserv distributed-dispatch application of
  §IV-B, built purely on the file abstraction.
* :mod:`repro.workloads` — HEP-shaped names, Zipf popularity, analysis jobs.

Quickstart::

    from repro.cluster import ScallaCluster, ScallaConfig

    cluster = ScallaCluster(64, config=ScallaConfig(seed=1))
    cluster.populate([f"/store/run1/f{i}.root" for i in range(100)])
    cluster.settle()
    data = cluster.run_process(cluster.client().fetch("/store/run1/f0.root"))
"""

from repro.core import NameCache
from repro.cluster import ScallaClient, ScallaCluster, ScallaConfig

__version__ = "1.0.0"

__all__ = ["NameCache", "ScallaCluster", "ScallaConfig", "ScallaClient", "__version__"]
