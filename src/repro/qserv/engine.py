"""A toy shared-nothing query engine.

Qserv used MySQL as its per-worker query engine (§IV-B); the dispatch
experiment only needs a worker to take real per-row time answering real
queries over its chunk, so this module provides a miniature columnar
executor over synthetic astronomical rows: point lookups, box scans, and
aggregates — the paper's "quick retrieval" and "summaries over all records"
workload classes.

Queries and results serialize to JSON because they travel as file contents
through Scalla.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

__all__ = ["Row", "Query", "QueryResult", "ChunkTable", "make_catalog_chunk"]


@dataclass(frozen=True)
class Row:
    """One celestial object."""

    object_id: int
    ra: float
    dec: float
    mag: float


@dataclass(frozen=True)
class Query:
    """A chunk-level query.

    kinds:
      * ``point`` — fetch one object by id (quick retrieval),
      * ``scan``  — objects within [ra/dec box] and mag <= mag_max,
      * ``count`` / ``mean_mag`` — aggregates over the same predicate.
    """

    kind: str
    object_id: int | None = None
    ra_min: float = 0.0
    ra_max: float = 360.0
    dec_min: float = -90.0
    dec_max: float = 90.0
    mag_max: float = 99.0

    KINDS = ("point", "scan", "count", "mean_mag")

    def to_bytes(self) -> bytes:
        return json.dumps(vars(self)).encode()

    @staticmethod
    def from_bytes(data: bytes) -> "Query":
        obj = json.loads(data.decode())
        q = Query(**obj)
        if q.kind not in Query.KINDS:
            raise ValueError(f"unknown query kind {q.kind!r}")
        return q


@dataclass
class QueryResult:
    """A chunk-level result, mergeable across chunks."""

    kind: str
    rows: list[tuple] = field(default_factory=list)
    count: int = 0
    mag_sum: float = 0.0
    rows_scanned: int = 0

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "kind": self.kind,
                "rows": self.rows,
                "count": self.count,
                "mag_sum": self.mag_sum,
                "rows_scanned": self.rows_scanned,
            }
        ).encode()

    @staticmethod
    def from_bytes(data: bytes) -> "QueryResult":
        obj = json.loads(data.decode())
        obj["rows"] = [tuple(r) for r in obj["rows"]]
        return QueryResult(**obj)

    @staticmethod
    def merge(results: list["QueryResult"]) -> "QueryResult":
        """Combine chunk results into the global answer."""
        if not results:
            return QueryResult(kind="empty")
        merged = QueryResult(kind=results[0].kind)
        for r in results:
            merged.rows.extend(r.rows)
            merged.count += r.count
            merged.mag_sum += r.mag_sum
            merged.rows_scanned += r.rows_scanned
        return merged

    @property
    def mean_mag(self) -> float:
        if self.count == 0:
            raise ValueError("no rows matched")
        return self.mag_sum / self.count


class ChunkTable:
    """One worker's slice of the catalog, with an object-id index."""

    def __init__(self, rows: list[Row]) -> None:
        self.rows = rows
        self._by_id = {r.object_id: r for r in rows}

    def __len__(self) -> int:
        return len(self.rows)

    def execute(self, q: Query) -> QueryResult:
        if q.kind == "point":
            row = self._by_id.get(q.object_id)
            res = QueryResult(kind="point", rows_scanned=1)
            if row is not None:
                res.rows.append((row.object_id, row.ra, row.dec, row.mag))
                res.count = 1
            return res

        res = QueryResult(kind=q.kind)
        for row in self.rows:
            res.rows_scanned += 1
            if not (q.ra_min <= row.ra <= q.ra_max and q.dec_min <= row.dec <= q.dec_max):
                continue
            if row.mag > q.mag_max:
                continue
            res.count += 1
            res.mag_sum += row.mag
            if q.kind == "scan":
                res.rows.append((row.object_id, row.ra, row.dec, row.mag))
        return res


def make_catalog_chunk(
    partition: int,
    *,
    partitioner,
    rows: int,
    rng: random.Random,
    id_base: int = 0,
) -> ChunkTable:
    """Synthesize *rows* objects whose coordinates fall inside *partition*.

    Rejection sampling against the partitioner keeps the chunk spatially
    honest: a box query's chunk pruning then returns exactly the right
    answers, which the tests verify against a flat full scan.
    """
    out: list[Row] = []
    attempts = 0
    while len(out) < rows:
        ra = rng.uniform(0, 360 - 1e-9)
        dec = rng.uniform(-90, 90 - 1e-9)
        attempts += 1
        if partitioner.chunk_of(ra, dec) != partition:
            continue
        out.append(
            Row(
                object_id=id_base + len(out),
                ra=ra,
                dec=dec,
                mag=rng.uniform(10.0, 30.0),
            )
        )
    return ChunkTable(out)
