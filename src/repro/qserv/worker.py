"""The Qserv worker: a chunk-hosting Scalla data server with a query engine.

"Workers (Scalla servers) in a Qserv Scalla system report their data
availability by 'publishing' ... paths that include a partition number"
(§IV-B).  Concretely, a worker

* hosts the chunk marker file ``/qserv/chunk/NNNNN`` on its server's disk
  (that is the publication — opening the path reaches this worker),
* watches its local filesystem for ``*.query`` files the master writes,
* executes each query against its in-memory chunk table after a modeled
  per-row compute cost, and
* deposits the result next to the query as ``*.result`` (advertised up so
  any master can locate it, though in practice the master already knows the
  worker).

All communication rides the file abstraction; the worker never speaks a
bespoke RPC protocol — exactly the design the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import ScallaNode
from repro.qserv.engine import ChunkTable, Query
from repro.qserv.partition import chunk_path

__all__ = ["QservWorkerConfig", "QservWorker"]


@dataclass
class QservWorkerConfig:
    #: Compute cost per row scanned (models the MySQL layer).
    per_row_cost: float = 1e-6
    #: Fixed query startup cost (parse, plan, open table).
    query_overhead: float = 200e-6


class QservWorker:
    """Application logic layered on one Scalla server node."""

    def __init__(self, node: ScallaNode, *, config: QservWorkerConfig | None = None) -> None:
        if node.fs is None or node.xrootd is None or node.cmsd is None:
            raise ValueError("QservWorker needs a started data-server node")
        self.node = node
        self.sim = node.sim
        self.config = config if config is not None else QservWorkerConfig()
        self.chunks: dict[int, ChunkTable] = {}
        self.queries_executed = 0
        self.rows_scanned = 0
        node.xrootd.on_create_hooks.append(self._on_file_created)

    @property
    def name(self) -> str:
        return self.node.name

    # -- publication -----------------------------------------------------------

    def host_chunk(self, partition: int, table: ChunkTable, *, cnsd=None) -> None:
        """Take ownership of *partition*: load the table, publish the path."""
        self.chunks[partition] = table
        marker = chunk_path(partition)
        if not self.node.fs.exists(marker):
            self.node.fs.put(marker, b"chunk", now=self.sim.now)
            if cnsd is not None:
                cnsd.apply(self.name, marker, "create")

    # -- the work loop -----------------------------------------------------------

    def _on_file_created(self, path: str) -> None:
        if path.endswith(".query") and path.startswith("/qserv/chunk/"):
            self.sim.process(self._execute(path), name=f"qserv-exec:{self.name}")

    def _execute(self, qpath: str):
        # The master finishes writing the payload right after the create;
        # one service-time beat lets the Write land before we read.  A real
        # worker uses close-on-write notification; the effect is identical.
        yield self.sim.sleep(self.node.xrootd.config.service_time.mean * 2)
        partition = int(qpath.split("/")[3])
        raw = bytes(self.node.fs.stat(qpath).data)
        if not raw:
            # Write still in flight; check again shortly.
            yield self.sim.sleep(1e-3)
            raw = bytes(self.node.fs.stat(qpath).data)
        query = Query.from_bytes(raw)
        table = self.chunks.get(partition)
        if table is None:
            # Not our chunk (e.g. several application layers share this
            # node): stay silent — Scalla never routes a master here unless
            # the chunk marker is published, so answering would be noise.
            return
        result = table.execute(query)
        yield self.sim.sleep(
            self.config.query_overhead + result.rows_scanned * self.config.per_row_cost
        )
        self.queries_executed += 1
        self.rows_scanned += result.rows_scanned
        rpath = qpath[: -len(".query")] + ".result"
        self.node.fs.put(rpath, result.to_bytes(), now=self.sim.now)
        # Advertise so the result is locatable cluster-wide (the local
        # cmsd's newfile advisory, triggered manually since we wrote the
        # file server-side rather than through an Open).
        if self.node.cmsd is not None:
            self.node.cmsd._advertise_new_file(rpath)
