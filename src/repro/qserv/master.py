"""The Qserv master: distributed dispatch over the Scalla file abstraction.

"A Qserv master needs to communicate with its workers in order to transmit
work (queries) and retrieve results.  Masters dispatch work to nodes
hosting the data of interest ... Qserv masters communicate with workers by
opening, reading, writing, and closing files in Scalla" (§IV-B).

The master:

1. resolves ``/qserv/chunk/NNNNN`` through Scalla to find a worker hosting
   the chunk (and caches the channel — "Scalla guarantees that it has a
   communications channel to a worker hosting that particular partition");
2. writes the serialized query to ``.../qK.query`` on that worker;
3. polls for ``.../qK.result`` and reads it back;
4. merges chunk results into the global answer.

Notably absent, by design: any list of workers.  "In Qserv's current
implementation, there is no configuration for the number of nodes in the
cluster."  Worker failure surfaces as a failed open; the master simply
re-locates the chunk (refresh + avoid) and re-dispatches to a replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import protocol as pr
from repro.cluster.client import ScallaClient, ScallaError
from repro.cluster.ids import xrootd_host
from repro.qserv.engine import Query, QueryResult
from repro.qserv.partition import chunk_path, query_path, result_path

__all__ = ["QservMasterConfig", "QservMaster", "QueryOutcome"]


@dataclass
class QservMasterConfig:
    #: Result-poll interval (the master's only busy-wait).
    poll_interval: float = 2e-3
    #: Give up on one chunk dispatch after this long.
    chunk_timeout: float = 30.0
    #: Re-dispatch attempts per chunk (worker failures).
    max_attempts: int = 3


@dataclass
class QueryOutcome:
    """A completed distributed query."""

    query: Query
    result: QueryResult
    chunks: int
    duration: float
    redispatches: int = 0
    per_chunk_latency: dict[int, float] = field(default_factory=dict)


class QservMaster:
    """Drives distributed queries through a ScallaClient."""

    def __init__(self, client: ScallaClient, *, config: QservMasterConfig | None = None) -> None:
        self.client = client
        self.sim = client.sim
        self.config = config if config is not None else QservMasterConfig()
        self._next_query = 1
        #: partition -> worker node, learned through Scalla, never configured.
        self.channels: dict[int, str] = {}
        self.dispatches = 0
        self.redispatches = 0

    # -- channel management (the Scalla value proposition) ---------------------------

    def channel(self, partition: int, *, refresh: bool = False, avoid: tuple[str, ...] = ()):
        """Coroutine: worker node hosting *partition* (cached)."""
        if not refresh and partition in self.channels:
            return self.channels[partition]
        if refresh:
            node, _, _, _ = yield from self.client._locate_full(
                chunk_path(partition), "r", False, True, avoid
            )
        else:
            node, _pending = yield from self.client.locate(chunk_path(partition))
        self.channels[partition] = node
        return node

    # -- dispatch ---------------------------------------------------------

    def run_query(self, query: Query, partitions: list[int]):
        """Coroutine: execute *query* over *partitions*; returns QueryOutcome.

        Chunks are dispatched concurrently (one sub-process each) and the
        master joins them all — Qserv's scatter/gather.
        """
        qid = self._next_query
        self._next_query += 1
        start = self.sim.now
        outcome = QueryOutcome(query=query, result=QueryResult(kind=query.kind), chunks=len(partitions), duration=0.0)

        procs = [
            self.sim.process(self._run_chunk(query, qid, p, outcome), name=f"qserv-chunk:{p}")
            for p in partitions
        ]
        results = yield self.sim.all_of(procs)
        outcome.result = QueryResult.merge([r for r in results.values() if r is not None])
        outcome.duration = self.sim.now - start
        return outcome

    def _run_chunk(self, query: Query, qid: int, partition: int, outcome: QueryOutcome):
        """Coroutine: dispatch one chunk query, with failure recovery."""
        t0 = self.sim.now
        avoid: tuple[str, ...] = ()
        for attempt in range(self.config.max_attempts):
            worker = yield from self.channel(
                partition, refresh=attempt > 0, avoid=avoid
            )
            try:
                result = yield from self._dispatch_once(query, qid, partition, worker)
            except ScallaError:
                result = None
            if result is not None:
                outcome.per_chunk_latency[partition] = self.sim.now - t0
                return result
            # Worker failed: drop the channel, avoid it, try a replica.
            self.channels.pop(partition, None)
            avoid = avoid + (worker,)
            outcome.redispatches += 1
            self.redispatches += 1
        raise ScallaError(f"chunk {partition} undispatchable after {self.config.max_attempts} attempts")

    def _dispatch_once(self, query: Query, qid: int, partition: int, worker: str):
        """Coroutine: one write-query/poll-result cycle against *worker*."""
        self.dispatches += 1
        qpath = query_path(partition, qid)
        rpath = result_path(partition, qid)
        xhost = xrootd_host(worker)
        deadline = self.sim.now + self.config.chunk_timeout

        # Write the work order through the file abstraction.
        omsg = pr.Open(self.client._req_id(), self.client.host.name, qpath, "w", True)
        resp = yield from self.client._request(xhost, omsg, self.client.config.op_timeout)
        if not isinstance(resp, pr.OpenAck):
            return None
        payload = query.to_bytes()
        wmsg = pr.Write(self.client._req_id(), self.client.host.name, resp.handle, 0, payload)
        wresp = yield from self.client._request(xhost, wmsg, self.client.config.op_timeout)
        if not isinstance(wresp, pr.WriteAck):
            return None
        cmsg = pr.Close(self.client._req_id(), self.client.host.name, resp.handle)
        yield from self.client._request(xhost, cmsg, self.client.config.op_timeout)

        # Poll for the result file.
        while self.sim.now < deadline:
            smsg = pr.Stat(self.client._req_id(), self.client.host.name, rpath)
            sresp = yield from self.client._request(xhost, smsg, self.client.config.op_timeout)
            if sresp is None:
                return None  # worker died mid-query
            if isinstance(sresp, pr.StatAck) and sresp.exists and sresp.size > 0:
                break
            yield self.sim.sleep(self.config.poll_interval)
        else:
            return None

        # Read it back (open -> read -> close), still pure file ops.
        omsg = pr.Open(self.client._req_id(), self.client.host.name, rpath, "r", False)
        oresp = yield from self.client._request(xhost, omsg, self.client.config.op_timeout)
        if not isinstance(oresp, pr.OpenAck):
            return None
        rmsg = pr.Read(self.client._req_id(), self.client.host.name, oresp.handle, 0, oresp.size)
        rresp = yield from self.client._request(xhost, rmsg, self.client.config.op_timeout)
        if not isinstance(rresp, pr.ReadAck):
            return None
        cmsg = pr.Close(self.client._req_id(), self.client.host.name, oresp.handle)
        yield from self.client._request(xhost, cmsg, self.client.config.op_timeout)
        return QueryResult.from_bytes(rresp.data)
