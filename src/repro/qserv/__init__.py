"""Qserv-style distributed dispatch over the Scalla file abstraction (§IV-B):
sky partitioning, a toy shared-nothing query engine, chunk-hosting workers,
and the scatter/gather master that needs no worker configuration at all."""

from repro.qserv.engine import ChunkTable, Query, QueryResult, Row, make_catalog_chunk
from repro.qserv.master import QservMaster, QservMasterConfig, QueryOutcome
from repro.qserv.partition import SkyPartitioner, chunk_path, query_path, result_path
from repro.qserv.worker import QservWorker, QservWorkerConfig

__all__ = [
    "Query",
    "QueryResult",
    "Row",
    "ChunkTable",
    "make_catalog_chunk",
    "QservMaster",
    "QservMasterConfig",
    "QueryOutcome",
    "QservWorker",
    "QservWorkerConfig",
    "SkyPartitioner",
    "chunk_path",
    "query_path",
    "result_path",
]
