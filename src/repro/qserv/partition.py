"""Spatial partitioning for the Qserv catalog.

LSST's catalog is sky-partitioned into *chunks*; Qserv workers "report
their data availability by 'publishing' or 'exporting' paths that include a
partition number" (§IV-B).  This module maps sky coordinates to chunk
numbers (a simple declination/right-ascension grid — the real scheme's
spherical subtleties carry no load here) and chunk numbers to the Scalla
paths that address them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SkyPartitioner", "chunk_path", "query_path", "result_path"]


def chunk_path(partition: int) -> str:
    """The published path whose *open* reaches a worker hosting the chunk."""
    return f"/qserv/chunk/{partition:05d}"


def query_path(partition: int, query_id: int) -> str:
    """Where a master writes the query payload for one chunk."""
    return f"/qserv/chunk/{partition:05d}/q{query_id:08d}.query"


def result_path(partition: int, query_id: int) -> str:
    """Where the worker deposits that chunk's result."""
    return f"/qserv/chunk/{partition:05d}/q{query_id:08d}.result"


@dataclass(frozen=True)
class SkyPartitioner:
    """A (ra, dec) grid partitioner.

    ra in [0, 360), dec in [-90, 90); ``ra_stripes`` × ``dec_stripes``
    chunks, numbered row-major by dec stripe then ra stripe.
    """

    ra_stripes: int = 8
    dec_stripes: int = 8

    def __post_init__(self) -> None:
        if self.ra_stripes < 1 or self.dec_stripes < 1:
            raise ValueError("stripe counts must be positive")

    @property
    def n_chunks(self) -> int:
        return self.ra_stripes * self.dec_stripes

    def chunk_of(self, ra: float, dec: float) -> int:
        if not 0 <= ra < 360:
            raise ValueError(f"ra {ra} outside [0, 360)")
        if not -90 <= dec < 90:
            raise ValueError(f"dec {dec} outside [-90, 90)")
        ri = int(ra / 360 * self.ra_stripes)
        di = int((dec + 90) / 180 * self.dec_stripes)
        return di * self.ra_stripes + ri

    def chunks_overlapping(self, ra_min: float, ra_max: float, dec_min: float, dec_max: float) -> list[int]:
        """Chunks intersecting a search box — drives partial-sky queries.

        The box is inclusive of its edges; ra wrap-around is not supported
        (callers split wrapped boxes).
        """
        if ra_min > ra_max or dec_min > dec_max:
            raise ValueError("empty box")
        eps = 1e-9
        lo = self.chunk_of(max(ra_min, 0.0), max(dec_min, -90.0))
        hi = self.chunk_of(min(ra_max, 360 - eps), min(dec_max, 90 - eps))
        ri_lo, di_lo = lo % self.ra_stripes, lo // self.ra_stripes
        ri_hi, di_hi = hi % self.ra_stripes, hi // self.ra_stripes
        return [
            di * self.ra_stripes + ri
            for di in range(di_lo, di_hi + 1)
            for ri in range(ri_lo, ri_hi + 1)
        ]

    def all_chunks(self) -> list[int]:
        return list(range(self.n_chunks))
