"""AFS-style replicated volume location database — a §V comparator.

"In the Andrew file system (AFS), Vice servers must each maintain a
consistent replica of the volume location database, which must maintain
locations for all volumes (regardless of actual use).  Changes are expected
to be infrequent."

The structural costs this module makes measurable:

* every location change must be applied to **all** replicas (O(replicas)
  messages per change, versus Scalla's zero — location is discovered, not
  declared);
* each replica stores the **entire** volume map regardless of what is
  actually accessed (memory O(all volumes), versus Scalla's O(popular
  files));
* reads are cheap anywhere — the design's virtue, which we model honestly.

Bench E12/E11 use it to contrast update amplification and state size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VolumeDBReplica", "ReplicatedVolumeDB"]


@dataclass
class VolumeDBReplica:
    """One server's full copy of the volume location database."""

    name: str
    volumes: dict[str, str] = field(default_factory=dict)  # volume -> server
    applied_updates: int = 0

    def apply(self, volume: str, server: str | None) -> None:
        if server is None:
            self.volumes.pop(volume, None)
        else:
            self.volumes[volume] = server
        self.applied_updates += 1

    def lookup(self, volume: str) -> str | None:
        return self.volumes.get(volume)

    def state_size(self) -> int:
        """Entries stored — O(all volumes), used or not."""
        return len(self.volumes)


class ReplicatedVolumeDB:
    """The full set of replicas plus the change-propagation ledger."""

    def __init__(self, replica_names: list[str]) -> None:
        if not replica_names:
            raise ValueError("need at least one replica")
        self.replicas = {n: VolumeDBReplica(n) for n in replica_names}
        self.update_messages = 0

    def set_volume(self, volume: str, server: str | None) -> int:
        """Apply one change everywhere; returns messages generated.

        This is the consistency bill AFS pays and Scalla dodged: every
        mutation fans out to every replica.
        """
        for replica in self.replicas.values():
            replica.apply(volume, server)
        self.update_messages += len(self.replicas)
        return len(self.replicas)

    def lookup(self, volume: str, at_replica: str | None = None) -> str | None:
        replica = (
            self.replicas[at_replica]
            if at_replica is not None
            else next(iter(self.replicas.values()))
        )
        return replica.lookup(volume)

    def total_state(self) -> int:
        """Aggregate entries across replicas — the memory amplification."""
        return sum(r.state_size() for r in self.replicas.values())

    def consistent(self) -> bool:
        maps = [r.volumes for r in self.replicas.values()]
        return all(m == maps[0] for m in maps)
