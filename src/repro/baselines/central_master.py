"""GFS-style central master — the E11 registration baseline.

Section V of the paper contrasts Scalla's prefix-only registration with
systems that centralize the full namespace: "In GFS, node registration is
more expensive since the incoming server must transmit its entire manifest
to the master", and Scalla's own early development found that file-list
submission "caused long delays (minutes for a single server)".

This module implements that alternative faithfully enough to measure the
contrast: servers upload their complete file manifests (chunked, as a real
system would); the master builds an exact ``path -> holders`` map; lookups
are a dictionary hit.  The trade is stark and quantifiable:

* registration cost  — O(files on the server) bytes and messages,
* lookup             — exact and instant, no flooding,
* restart            — the master is unavailable until *every* manifest is
  re-uploaded.

Bench E11 sweeps files-per-server and reports payload bytes and
registration/restart times for both designs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.sim.kernel import Simulator
from repro.sim.network import Network

__all__ = ["ManifestChunk", "CentralMaster", "register_over_network", "MANIFEST_CHUNK_FILES"]

#: Files per registration message (real systems batch; 1000/msg is generous
#: to the baseline).
MANIFEST_CHUNK_FILES = 1000


@dataclass(frozen=True)
class ManifestChunk:
    """One slice of a server's full file manifest."""

    node: str
    paths: tuple[str, ...]
    last: bool


class CentralMaster:
    """The master's in-memory state: the complete cluster namespace."""

    def __init__(self) -> None:
        self._holders: dict[str, set[str]] = defaultdict(set)
        self._files_by_node: dict[str, set[str]] = defaultdict(set)
        self.registered_nodes: set[str] = set()
        self.manifest_files_received = 0

    def ingest(self, chunk: ManifestChunk) -> None:
        for path in chunk.paths:
            self._holders[path].add(chunk.node)
            self._files_by_node[chunk.node].add(path)
        self.manifest_files_received += len(chunk.paths)
        if chunk.last:
            self.registered_nodes.add(chunk.node)

    def deregister(self, node: str) -> int:
        """Remove a node and every mapping it contributed (O(its files))."""
        paths = self._files_by_node.pop(node, set())
        for p in sorted(paths):
            holders = self._holders.get(p)
            if holders is not None:
                holders.discard(node)
                if not holders:
                    del self._holders[p]
        self.registered_nodes.discard(node)
        return len(paths)

    def lookup(self, path: str) -> set[str]:
        """Exact holders — the one thing a full-manifest design buys."""
        return set(self._holders.get(path, ()))

    def file_count(self) -> int:
        return len(self._holders)


def register_over_network(
    sim: Simulator,
    network: Network,
    master: CentralMaster,
    *,
    master_host: str,
    node: str,
    node_host: str,
    manifest: list[str],
    chunk_files: int = MANIFEST_CHUNK_FILES,
) -> "_Registration":
    """Simulate one server's full-manifest upload; returns a tracker.

    The caller runs the simulator and then reads ``tracker.completed_at``
    and ``tracker.bytes_sent``.  A per-chunk processing cost at the master
    is modeled implicitly by message latency; what dominates is payload
    volume, which is the paper's actual argument.
    """
    tracker = _Registration(node=node, files=len(manifest))

    def upload():
        sent = 0
        for i in range(0, max(len(manifest), 1), chunk_files):
            chunk_paths = tuple(manifest[i : i + chunk_files])
            last = i + chunk_files >= len(manifest)
            chunk = ManifestChunk(node=node, paths=chunk_paths, last=last)
            size = sum(len(p.encode()) for p in chunk_paths) + 32
            network.send(node_host, master_host, chunk, size=size)
            tracker.bytes_sent += size
            sent += 1
            # Pace uploads one chunk per delivery window, as TCP would.
            yield sim.sleep(network.latency_model(node_host, master_host).mean)
        tracker.chunks = sent

    sim.process(upload(), name=f"manifest:{node}")
    return tracker


@dataclass
class _Registration:
    node: str
    files: int
    bytes_sent: int = 0
    chunks: int = 0
