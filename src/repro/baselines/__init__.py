"""Baselines the paper argues against, implemented so the benches can
measure the comparison instead of asserting it.

* :mod:`repro.baselines.pow2table` — power-of-two hash table (footnote 4).
* :mod:`repro.baselines.central_master` — GFS-style full-manifest master (§V).
* :mod:`repro.baselines.afs_volumedb` — AFS-style replicated volume DB (§V).
* :mod:`repro.baselines.always_respond` — request-always-respond protocol.
* :mod:`repro.baselines.naive_eviction` — eager re-chaining eviction (§III-C1).
"""

from repro.baselines.afs_volumedb import ReplicatedVolumeDB, VolumeDBReplica
from repro.baselines.always_respond import (
    MessageCount,
    always_respond_messages,
    crossover_fraction,
    rarely_respond_messages,
)
from repro.baselines.central_master import (
    MANIFEST_CHUNK_FILES,
    CentralMaster,
    ManifestChunk,
    register_over_network,
)
from repro.baselines.naive_eviction import EagerWindows
from repro.baselines.pow2table import Pow2Table

__all__ = [
    "Pow2Table",
    "CentralMaster",
    "ManifestChunk",
    "register_over_network",
    "MANIFEST_CHUNK_FILES",
    "ReplicatedVolumeDB",
    "VolumeDBReplica",
    "MessageCount",
    "rarely_respond_messages",
    "always_respond_messages",
    "crossover_fraction",
    "EagerWindows",
]
