"""Eager re-chaining eviction — the E9 baseline.

Scalla defers moving refreshed location objects between window chains:
"a single linear-cost task can re-chain all objects whose T_a has changed,
where re-chaining each object individually results in a more quadratic
cost" (§III-C1).  This module is the individually-re-chaining design the
paper rejected: each refresh removes the object from its current chain
(a linear scan of that chain) and appends it to the new one.

With a hot set of R objects refreshed per window over chains of length C,
the eager design does O(R·C) scan work per window where the deferred design
does O(C) once — the benchmarked gap grows linearly in R, i.e. total work
is quadratic when R ~ C.

The interface mirrors :class:`repro.core.eviction.EvictionWindows` so bench
E9 swaps implementations under the identical workload.  ``scan_steps``
counts chain positions visited — the machine-independent cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.eviction import WINDOW_COUNT
from repro.core.location import LocationObject

__all__ = ["EagerWindows"]


@dataclass
class EagerTickResult:
    window: int
    hidden: list[LocationObject] = field(default_factory=list)
    swept: int = 0


class EagerWindows:
    """64 window chains with immediate re-chaining on refresh."""

    def __init__(self) -> None:
        self._chains: list[list[LocationObject]] = [[] for _ in range(WINDOW_COUNT)]
        self.t_w = 0
        #: Chain positions visited by refresh-time scans (the cost metric).
        self.scan_steps = 0
        self.total_hidden = 0

    @property
    def current_window(self) -> int:
        return self.t_w % WINDOW_COUNT

    def population(self) -> int:
        return sum(len(c) for c in self._chains)

    def add(self, obj: LocationObject) -> None:
        w = self.current_window
        obj.t_a = w
        obj.chain_window = w
        self._chains[w].append(obj)

    def refresh(self, obj: LocationObject) -> None:
        """Move the object to the current window's chain *now*.

        The removal scan is the quadratic-cost culprit: every refresh walks
        the old chain to find the object.
        """
        old = obj.chain_window
        if old >= 0:
            chain = self._chains[old]
            for pos, candidate in enumerate(chain):
                self.scan_steps += 1
                if candidate is obj:
                    chain[pos] = chain[-1]
                    chain.pop()
                    break
        w = self.current_window
        obj.t_a = w
        obj.chain_window = w
        self._chains[w].append(obj)

    def tick(self) -> EagerTickResult:
        """Expire the new window's chain (every member genuinely expires —
        eager re-chaining guarantees t_a == chain)."""
        self.t_w += 1
        window = self.current_window
        chain = self._chains[window]
        result = EagerTickResult(window=window)
        for obj in chain:
            result.swept += 1
            if not obj.hidden:
                obj.hide()
            obj.chain_window = -1
            result.hidden.append(obj)
        self._chains[window] = []
        self.total_hidden += len(result.hidden)
        return result
