"""Request-always-respond protocol model — the E7 baseline.

Scalla's flooding protocol has servers answer **only when they hold the
file**; reference [2] of the paper (Furano & Hanushevsky's passive-bid
analysis) shows this is "provably the most efficient way of maintaining
location information in the event that less than half the servers have the
file".  The intuition is elementary counting, which this module makes
executable:

* rarely-respond:  ``queries + holders`` messages,
* always-respond:  ``queries + n_servers`` messages (every server answers
  yes *or no*).

With ``h = holders / n``, rarely-respond sends ``n(1 + h)`` and
always-respond ``2n``; rarely wins iff ``h < 1`` — strictly, it never
loses, and its advantage is largest as ``h → 0`` (the common case: most
files live on a handful of servers).  The latency cost is the 5 s
conservative wait on *negative* results, which the fast response queue
(E6) attacks separately.

Bench E7 sweeps the holder fraction with both the closed forms below and a
message-counted simulation on the real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MessageCount", "rarely_respond_messages", "always_respond_messages", "crossover_fraction"]


@dataclass(frozen=True)
class MessageCount:
    queries: int
    responses: int

    @property
    def total(self) -> int:
        return self.queries + self.responses


def rarely_respond_messages(n_servers: int, holders: int) -> MessageCount:
    """Scalla: every server is asked, only holders answer."""
    _check(n_servers, holders)
    return MessageCount(queries=n_servers, responses=holders)


def always_respond_messages(n_servers: int, holders: int) -> MessageCount:
    """Baseline: every server is asked and every server answers."""
    _check(n_servers, holders)
    return MessageCount(queries=n_servers, responses=n_servers)


def crossover_fraction() -> float:
    """Holder fraction at which always-respond would match rarely-respond.

    n(1 + h) = 2n  ⇒  h = 1: rarely-respond is never worse, and the paper's
    "less than half" criterion is where its advantage remains at least 25%
    of total traffic.
    """
    return 1.0


def _check(n_servers: int, holders: int) -> None:
    if n_servers < 1:
        raise ValueError("need at least one server")
    if not 0 <= holders <= n_servers:
        raise ValueError("holders must be within [0, n_servers]")
