"""Power-of-two-sized chained hash table — the E3 collision baseline.

Footnote 4 of the paper: "Despite the uniform distribution of CRC32, we
found much higher collision rates with power-of-two sized tables compared
to Fibonacci-sized."  The mechanism: ``key % 2**k`` keeps only the low k
bits of the CRC, and CRC32's low bits are *not* independent across related
inputs (structured paths differing in a few characters), whereas a
non-power modulus folds every bit of the key into the bucket index.

This class mirrors :class:`repro.core.hashtable.LocationTable`'s interface
(insert/find/chain_lengths, 80% growth trigger) so bench E3 can swap the
two under identical workloads.
"""

from __future__ import annotations

from repro.core.fibonacci import GROWTH_THRESHOLD
from repro.core.location import LocationObject

__all__ = ["Pow2Table"]


class Pow2Table:
    """Chained hash table sized 2^k, doubling at 80% occupancy."""

    def __init__(self, initial_size: int = 128) -> None:
        if initial_size < 1 or initial_size & (initial_size - 1):
            raise ValueError(f"size {initial_size} is not a power of two")
        self._buckets: list[list[LocationObject]] = [[] for _ in range(initial_size)]
        self._size = initial_size
        self._count = 0
        self.resizes = 0
        self.probes = 0
        self.lookups = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def count(self) -> int:
        return self._count

    def find(self, key: str, hash_val: int) -> LocationObject | None:
        self.lookups += 1
        bucket = self._buckets[hash_val & (self._size - 1)]
        for pos, obj in enumerate(bucket):
            if obj.matches(key, hash_val):
                self.probes += pos + 1
                return obj
        self.probes += len(bucket)
        return None

    def insert(self, obj: LocationObject) -> None:
        if self._count + 1 > self._size * GROWTH_THRESHOLD:
            self._grow()
        self._buckets[obj.hash_val & (self._size - 1)].append(obj)
        self._count += 1

    def chain_lengths(self) -> list[int]:
        return [len(b) for b in self._buckets]

    def mean_probe_length(self) -> float:
        return self.probes / self.lookups if self.lookups else 0.0

    def _grow(self) -> None:
        new_size = self._size * 2
        new_buckets: list[list[LocationObject]] = [[] for _ in range(new_size)]
        for bucket in self._buckets:
            for obj in bucket:
                new_buckets[obj.hash_val & (new_size - 1)].append(obj)
        self._buckets = new_buckets
        self._size = new_size
        self.resizes += 1
