"""JSON snapshot export and the derived cluster-level summary.

A snapshot is one self-contained JSON document: every metric series, a
derived roll-up of the numbers the paper's claims are phrased in, and the
retained resolution traces.  ``benchmarks/reporting.py`` writes one per
bench next to the markdown result table, and CI uploads them as artifacts
so a regression in cache-hit ratio or queue-wait tail is a diffable fact,
not a vibe.

Histograms are exported as their five-number summary (count / mean / p50 /
p95 / p99 / min / max) rather than raw samples — snapshots stay small and
the numbers match what the bench tables print.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict
from typing import Any

from repro.obs import Observability

__all__ = ["derive", "snapshot", "to_json", "write", "load"]

SCHEMA = "repro.obs/1"


def derive(obs: Observability) -> dict[str, Any]:
    """Cluster-level roll-up of the headline numbers.

    * ``cache_hit_ratio`` — cache hits over lookups, all nodes;
    * ``resolutions`` — end-to-end client lookups; in a deep tree one
      resolution touches several cmsds, so the per-hop count is reported
      separately as ``locate_hops``.  Falls back to the cmsd-side count
      when no instrumented client ran (e.g. raw-protocol workloads);
    * ``messages_per_resolution`` — cmsd messages sent per end-to-end
      resolution (the paper's "extremely small number of messages");
    * ``queue_wait`` — fast-response-queue anchor wait percentiles, all
      nodes merged (the §III-B claim: ~server response time, not 5 s);
    * ``fast_release_ratio`` — waiters released by a response vs expired
      into the full conservative delay.
    """
    m = obs.metrics
    lookups = m.counter_total("cache_lookups_total")
    hits = m.counter_total("cache_hits_total")
    hops = m.counter_total("cmsd_locate_requests_total")
    resolutions = m.counter_total("client_locates_total") or hops
    messages = m.counter_total("cmsd_messages_sent_total")
    released = m.counter_total("rq_released_total")
    expired = m.counter_total("rq_expired_total")
    wait = m.merged_histogram("rq_wait_seconds").summary()
    return {
        "cache_lookups": lookups,
        "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
        "resolutions": resolutions,
        "locate_hops": hops,
        "messages_per_resolution": (messages / resolutions) if resolutions else 0.0,
        "queue_wait": asdict(wait),
        "fast_release_ratio": (released / (released + expired)) if released + expired else 0.0,
        "evictions": m.counter_total("evict_hidden_total"),
        "corrections": m.counter_total("cache_corrections_total"),
        # Fault-tolerance roll-ups: manager failovers clients performed,
        # standby adoptions subordinates performed, messages the chaos
        # layer ate.  All zero in a healthy, chaos-free run.
        "failovers": m.counter_total("failovers_total"),
        "rehomes": m.counter_total("rehomes_total"),
        "chaos_msgs_dropped": m.counter_total("chaos_msgs_dropped_total"),
    }


def snapshot(
    obs: Observability, *, traces: bool = True, extra: dict | None = None
) -> dict[str, Any]:
    """Freeze the hub's current state into one JSON-serializable dict."""
    metrics = []
    for kind, name, labels, inst in obs.metrics.collect():
        entry: dict[str, Any] = {"kind": kind, "name": name, "labels": labels}
        if kind == "histogram":
            entry["summary"] = asdict(inst.summary())
        else:
            entry["value"] = inst.value
        metrics.append(entry)
    snap: dict[str, Any] = {
        "schema": SCHEMA,
        "time": obs.now(),
        "metrics": metrics,
        "derived": derive(obs),
    }
    if traces:
        snap["traces"] = [t.to_dict() for t in obs.tracer.finished]
        snap["events"] = [dict(e) for e in obs.tracer.cluster_events]
    if extra:
        snap["extra"] = dict(extra)
    return snap


def to_json(snap: dict[str, Any]) -> str:
    # allow_nan=False: a snapshot that cannot round-trip through a strict
    # parser is a bug here, not in the consumer.
    return json.dumps(snap, indent=2, sort_keys=True, allow_nan=False)


def write(snap: dict[str, Any], path: str | pathlib.Path) -> pathlib.Path:
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(to_json(snap) + "\n")
    return out


def load(path: str | pathlib.Path) -> dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())
