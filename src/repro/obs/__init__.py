"""Cluster-wide observability: metrics registry + resolution tracing.

Production XRootD deployments live and die by their monitoring streams;
this package gives the reproduction the same eyes.  It has three parts:

* :mod:`repro.obs.registry` — a zero-dependency metrics registry of
  counters, gauges and bench-grade histograms (the histograms are
  :class:`repro.sim.monitor.Histogram`, so bench reporting and in-system
  metrics share one percentile vocabulary);
* :mod:`repro.obs.trace` — per-request *resolution traces*: spans and
  point events recorded as a lookup walks client → manager cmsd →
  supervisor → server, stamped with sim-kernel time;
* :mod:`repro.obs.export` — JSON snapshot export plus the derived
  cluster-level summary (cache-hit ratio, messages per resolution,
  queue-wait percentiles) that ``benchmarks/reporting.py`` consumes.

Everything hangs off one :class:`Observability` hub.  Instrumented
components take ``obs=None`` and guard every instrumentation site with a
single ``is not None`` check, so the uninstrumented path stays as fast as
before this layer existed.  Enable it cluster-wide with
``ScallaConfig(observability=True)``::

    cluster = ScallaCluster(16, config=ScallaConfig(observability=True))
    ...
    snap = export.snapshot(cluster.obs)
    snap["derived"]["cache_hit_ratio"]
"""

from __future__ import annotations

from typing import Callable

from repro.obs.registry import Counter, Gauge, MetricsRegistry
from repro.obs.trace import ResolutionTrace, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Observability",
    "ResolutionTrace",
    "Span",
    "Tracer",
]


class Observability:
    """The hub: one metrics registry plus one tracer, sharing a clock.

    The clock defaults to a frozen zero so the hub is usable standalone
    (unit tests, wall-clock-free micro-benches); the cluster layer binds
    it to the simulation kernel with :meth:`bind_clock` so every metric
    and span is stamped with sim time.
    """

    def __init__(self, clock: Callable[[], float] | None = None, *, max_traces: int = 512) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.now, max_finished=max_traces)

    def now(self) -> float:
        """Current observation time (sim time once bound to a kernel)."""
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the hub at an authoritative clock (``lambda: sim.now``)."""
        self._clock = clock
