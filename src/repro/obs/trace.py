"""Resolution tracing: where did those microseconds (or 5 seconds) go?

A *resolution trace* follows one name lookup through the cluster: the
client opens the trace, every cmsd on the walk (manager → supervisor →
server) adds spans and point events, and the client closes it with the
outcome.  Spans capture the things the paper's latency claims hinge on —
cache hit/miss, correction-vector application, the fast-response-queue
anchor wait, query flooding fan-out, eviction interference — all stamped
with sim-kernel time.

Correlation is by *path*: the simulated protocol re-issues a fresh request
id at every hop, but the path is the stable key a lookup carries end to
end, so components deep in the core (the cache, the eviction sweep) can
annotate the right trace knowing nothing about the protocol.  Concurrent
lookups of the same path attach to the most recently opened trace — the
one whose walk is actually touching the shared location object.

Spans nest through an explicit per-trace stack rather than context
managers because cluster code is simulation generators: a ``with`` block
cannot straddle a ``yield``.  Async spans (a queue wait that outlives the
locate dispatch that opened it) are created with :meth:`ResolutionTrace.
open_span` and closed later by whoever releases the waiter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Span", "ResolutionTrace", "Tracer"]


@dataclass
class Span:
    """One timed segment of a resolution walk."""

    name: str
    start: float
    node: str = ""
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name, "start": self.start, "end": self.end}
        if self.node:
            d["node"] = self.node
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.events:
            d["events"] = [dict(e) for e in self.events]
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


class ResolutionTrace:
    """The spans of one lookup, rooted at the client's ``resolve`` span."""

    def __init__(self, trace_id: int, path: str, now: float, **attrs: Any) -> None:
        self.trace_id = trace_id
        self.path = path
        self.root = Span(name="resolve", start=now, attrs=dict(attrs))
        self.finished_at: float | None = None
        self._stack: list[Span] = [self.root]

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    # -- span construction ---------------------------------------------------

    def begin(self, name: str, now: float, *, node: str = "", **attrs: Any) -> Span:
        """Open a nested span and make it the attachment point."""
        span = self.open_span(name, now, node=node, **attrs)
        self._stack.append(span)
        return span

    def open_span(self, name: str, now: float, *, node: str = "", **attrs: Any) -> Span:
        """Open a span under the current attachment point without pushing it.

        For async segments — e.g. the fast-response-queue anchor wait, which
        is opened by the locate dispatch but closed much later by a server
        response or the 133 ms expiry clock.
        """
        span = Span(name=name, start=now, node=node, attrs=dict(attrs))
        self._stack[-1].children.append(span)
        return span

    def end(self, span: Span, now: float, **attrs: Any) -> Span:
        """Close *span* (popping it, and anything left open above it)."""
        span.end = now
        span.attrs.update(attrs)
        if span in self._stack:
            while self._stack[-1] is not span:
                self._stack.pop().end = now
            self._stack.pop()
        return span

    def event(self, name: str, now: float, *, node: str = "", **attrs: Any) -> None:
        """Record a point annotation on the current attachment point."""
        e: dict[str, Any] = {"name": name, "t": now}
        if node:
            e["node"] = node
        e.update(attrs)
        self._stack[-1].events.append(e)

    def finish(self, now: float, **attrs: Any) -> None:
        while self._stack:
            self._stack.pop().end = now
        self.root.attrs.update(attrs)
        self.finished_at = now

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "path": self.path,
            "finished_at": self.finished_at,
            "root": self.root.to_dict(),
        }


class Tracer:
    """Opens, correlates (by path), and retains resolution traces."""

    def __init__(
        self, clock: Callable[[], float], *, max_finished: int = 512, max_events: int = 4096
    ) -> None:
        self._clock = clock
        self._next_id = 1
        self._active: dict[str, list[ResolutionTrace]] = {}
        #: Completed traces, oldest evicted first (bounded memory).
        self.finished: deque[ResolutionTrace] = deque(maxlen=max_finished)
        #: Cluster lifecycle events (re-homes, manager failovers): these
        #: have no path, so the path-keyed resolution machinery cannot
        #: carry them.  Oldest evicted first.
        self.cluster_events: deque[dict[str, Any]] = deque(maxlen=max_events)

    @property
    def active_count(self) -> int:
        return sum(len(v) for v in self._active.values())

    def start(self, path: str, **attrs: Any) -> ResolutionTrace:
        trace = ResolutionTrace(self._next_id, path, self._clock(), **attrs)
        self._next_id += 1
        self._active.setdefault(path, []).append(trace)
        return trace

    def active(self, path: str) -> ResolutionTrace | None:
        """The most recently opened in-flight trace for *path*, if any."""
        traces = self._active.get(path)
        return traces[-1] if traces else None

    def event(self, path: str, name: str, *, node: str = "", **attrs: Any) -> None:
        """Annotate the active trace for *path*; no-op when none exists.

        This is the fire-and-forget API for core components (cache,
        eviction sweep) that observe a path without participating in the
        protocol: one dict probe when no lookup is being traced.
        """
        trace = self.active(path)
        if trace is not None:
            trace.event(name, self._clock(), node=node, **attrs)

    def cluster_event(
        self, name: str, *, time: float | None = None, **attrs: Any
    ) -> None:
        """Record a path-less cluster lifecycle event (always retained).

        Unlike :meth:`event`, this never attaches to a resolution: events
        like ``cmsd.rehome`` or ``client.mgr_failover`` happen *between*
        lookups and must be visible even when nothing is being traced.
        """
        e: dict[str, Any] = {"name": name, "t": self._clock() if time is None else time}
        e.update(attrs)
        self.cluster_events.append(e)

    def finish(self, trace: ResolutionTrace, **attrs: Any) -> None:
        trace.finish(self._clock(), **attrs)
        traces = self._active.get(trace.path)
        if traces is not None:
            try:
                traces.remove(trace)
            except ValueError:
                pass
            if not traces:
                del self._active[trace.path]
        self.finished.append(trace)
