"""The metrics registry: counters, gauges, histograms, by name + labels.

Zero dependencies, and deliberately boring: an instrument is resolved once
(at component construction time) and then mutated through plain attribute
arithmetic, so the per-event cost on an instrumented hot path is one
``is not None`` guard plus one integer add.  Lookup-by-name on every event
— the classic metrics-library tax — never happens inside the hot loops.

Metric identity is ``(name, sorted(labels))``, the Prometheus convention:
``counter("cache_lookups_total", node="m0")`` and the same name with
``node="s3"`` are independent series that an exporter can aggregate.
Histograms are :class:`repro.sim.monitor.Histogram`, so per-node series
merge into cluster totals via :meth:`~repro.sim.monitor.Histogram.merge`
and report the same p50/p95/p99 summary the benches already print.
"""

from __future__ import annotations

from repro.sim.monitor import Histogram

__all__ = ["Counter", "Gauge", "MetricsRegistry", "labels_key"]


def labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set."""
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, population, load)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class MetricsRegistry:
    """Get-or-create store of instruments keyed by name + labels."""

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    @staticmethod
    def _get(store: dict, factory, name: str, labels: dict[str, str]):
        key = (name, labels_key(labels))
        inst = store.get(key)
        if inst is None:
            inst = store[key] = factory()
        return inst

    # -- aggregation / readout -----------------------------------------------

    def counter_total(self, name: str) -> int:
        """Sum of one counter name across every label set."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def merged_histogram(self, name: str) -> Histogram:
        """All series of one histogram name merged into a cluster total."""
        total = Histogram()
        for (n, _), h in self._histograms.items():
            if n == name:
                total.merge(h)
        return total

    def collect(self):
        """Iterate ``(kind, name, labels, instrument)`` over everything."""
        for (name, lk), c in sorted(self._counters.items()):
            yield "counter", name, dict(lk), c
        for (name, lk), g in sorted(self._gauges.items()):
            yield "gauge", name, dict(lk), g
        for (name, lk), h in sorted(self._histograms.items()):
            yield "histogram", name, dict(lk), h
