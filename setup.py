"""Legacy setuptools shim.

The reproduction environment is fully offline; pip cannot fetch the `wheel`
package that PEP-517 editable installs require, so we deliberately omit the
[build-system] table and provide this setup.py to let `pip install -e .`
take the legacy (setuptools develop) path.
"""

from setuptools import setup

setup()
