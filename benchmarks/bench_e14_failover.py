"""E14 (extension) — interior-node failover: re-homing vs the seed behaviour.

The paper treats every interior node as replaceable ("any component can be
replaced without disrupting the system", §VI), but the seed reproduction
only healed a supervisor outage when the *same host* came back.  This bench
quantifies the fault-tolerance tentpole: a supervisor crashes and never
restarts, its subtree holds the only copies of the probe files, and a peer
manager is dark as well (so the client-side manager failover path is
exercised in the same run).

Measured, per mode:

* **re-home convergence** — crash until every orphaned server has adopted
  the standby supervisor (``rehome=True`` only; the seed never converges);
* **cold locate latency** — fresh paths, never located before the crash,
  resolved through the healed tree.

The shape claim: with re-homing, a cold locate lands in well under 1 s
even with the paper's 5 s full delay — the subtree was re-attached long
before the client asked.  Without it (seed), every probe is unreachable:
the holders are alive but heartbeating into the void.
"""

import pytest

from repro.cluster import ClientConfig, ScallaCluster, ScallaConfig
from repro.cluster.client import ScallaError

from reporting import ms, record, record_snapshot

N_PROBES = 4
REHOME_WINDOW = 30.0  # generous convergence poll budget (sim-seconds)


def run_failover(rehome: bool):
    cluster = ScallaCluster(
        8,
        config=ScallaConfig(
            seed=1401,
            fanout=4,  # 2 managers -> 2 supervisors -> 8 servers
            managers=2,
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
            drop_timeout=60.0,
            relogin_timeout=0.5,
            full_delay=5.0,  # the paper's default: makes slow paths obvious
            rehome=rehome,
            observability=True,
        ),
    )
    sup0 = cluster.topology.supervisors[0]
    children = cluster.topology.nodes[sup0].children
    probes = [f"/store/e14/p{i}.root" for i in range(N_PROBES)]
    for i, path in enumerate(probes):
        # Sole copy, under the doomed supervisor, never located pre-crash:
        # resolution after the crash is a genuinely cold path through
        # whatever tree is left.
        cluster.place(path, children[i % len(children)], size=64)
    cluster.settle(0.5)

    t_crash = cluster.sim.now
    cluster.node(sup0).crash()
    cluster.node(cluster.managers[0]).crash()

    # Poll for subtree convergence: every orphan logged into a standby.
    rehome_time = None
    while cluster.sim.now < t_crash + REHOME_WINDOW:
        cluster.run(until=cluster.sim.now + 0.05)
        parents = [cluster.node(c).current_parents for c in children]
        if all(p and sup0 not in p for p in parents):
            rehome_time = cluster.sim.now - t_crash
            break
    if rehome_time is None:
        cluster.run(until=t_crash + 2.0)  # seed mode: plain detection window

    latencies = []
    failures = 0
    for path in probes:
        client = cluster.client(
            config=ClientConfig(locate_timeout=0.5, op_timeout=0.5)
        )
        try:
            res = cluster.run_process(client.open(path), limit=240)
        except ScallaError:
            failures += 1
        else:
            assert cluster.node(res.node).fs.exists(path)
            latencies.append(res.latency)
    return cluster, rehome_time, latencies, failures


def test_rehome_makes_cold_locate_fast(benchmark):
    def run():
        return {mode: run_failover(mode) for mode in (False, True)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    _, seed_rehome, seed_lat, seed_failures = results[False]
    cluster, rehome_time, latencies, failures = results[True]

    # Seed behaviour: the subtree never re-attaches and every sole-copy
    # probe is unreachable — alive holders, dark control plane.
    assert seed_rehome is None
    assert seed_failures == N_PROBES and not seed_lat

    # Tentpole behaviour: orphans adopt the standby within ~relogin_timeout
    # plus detection, and every cold locate succeeds at fast-path latency —
    # the acceptance bound is < 1 s against a 5 s full delay.
    assert rehome_time is not None and rehome_time < 3.0
    assert failures == 0
    assert max(latencies) < 1.0

    # The run exercised both tentpole mechanisms, visible in the metrics.
    snap = cluster.obs_snapshot(extra={"experiment": "E14"})
    d = snap["derived"]
    assert d["rehomes"] >= len(cluster.topology.nodes[cluster.topology.supervisors[0]].children)
    assert d["failovers"] >= 1  # dead peer manager forced client rotation
    record_snapshot("E14", snap)

    def fmt(rt):
        return ms(rt) if rt is not None else "never"

    record(
        "E14",
        "supervisor failover: cold locate after an unrecovered crash",
        ["mode", "subtree re-home", "probes ok", "cold locate (max)", "unreachable"],
        [
            (
                "seed (rehome=False)",
                fmt(seed_rehome),
                f"{len(seed_lat)}/{N_PROBES}",
                "-",
                seed_failures,
            ),
            (
                "rehome=True",
                fmt(rehome_time),
                f"{len(latencies)}/{N_PROBES}",
                ms(max(latencies)),
                failures,
            ),
        ],
        notes=(
            "Supervisor and one peer manager crash and never return; probe "
            "files have their sole copy in the orphaned subtree and were "
            "never located before the crash.  Re-homing converges in "
            "~relogin_timeout + detection, after which cold locates run at "
            "ordinary latency (acceptance: < 1 s vs the 5 s full delay). "
            "The seed strands the subtree permanently."
        ),
    )


def test_failover_is_invisible_to_warm_reads(benchmark):
    """A manager crash alone: clients rotate to the peer within one
    locate_timeout; no re-home is ever needed (supervisors are logged into
    both managers from the start)."""

    def run():
        cluster = ScallaCluster(
            8,
            config=ScallaConfig(
                seed=1402,
                fanout=4,
                managers=2,
                heartbeat_interval=0.2,
                disconnect_timeout=0.7,
                full_delay=5.0,
                observability=True,
            ),
        )
        cluster.populate(["/store/e14/warm.root"], copies=2, size=64)
        cluster.settle(0.5)
        cluster.run_process(cluster.client().open("/store/e14/warm.root"), limit=60)
        cluster.node(cluster.managers[0]).crash()
        cluster.run(until=cluster.sim.now + 0.5)
        client = cluster.client(
            config=ClientConfig(locate_timeout=0.5, op_timeout=0.5)
        )
        res = cluster.run_process(client.open("/store/e14/warm.root"), limit=60)
        return res.latency, client.stats.failovers, cluster

    latency, failovers, cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    assert failovers >= 1
    # One dead-manager timeout, then the peer answers from cache.
    assert latency < 1.0
    snap = cluster.obs_snapshot(extra={"experiment": "E14-warm"})
    assert snap["derived"]["rehomes"] == 0  # multi-parent: nothing orphaned
