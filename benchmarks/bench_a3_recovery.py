"""A3 (supplementary) — client-visible recovery latency after server loss.

The paper's recovery path (§III-C1: refresh + avoid) is qualitative; this
bench puts an operational number on it.  A file is replicated on two of
eight servers, a client is vectored at the dead replica (heartbeats have
not noticed yet — the worst case), and we measure how long until the client
is reading from the living replica, decomposed into:

* detection  — the client's data-plane timeout on the dead server,
* recovery   — refresh-locate, re-flood, fast-response release, redirect,
  successful open.

The shape claim: recovery is one query round trip (~hundreds of µs), so
the client's op_timeout dominates end-to-end recovery — a configuration
lever, not a protocol cost.
"""

from repro.cluster import ClientConfig, ScallaCluster, ScallaConfig

from reporting import ms, record

OP_TIMEOUTS = (0.1, 0.5, 2.0)


def run_recovery(op_timeout: float):
    cluster = ScallaCluster(
        8,
        config=ScallaConfig(seed=161, heartbeat_interval=60.0),  # HBs effectively off
    )
    cluster.populate(["/store/hot.root"], copies=2, size=512)
    cluster.settle()
    # Warm and balance selections so the next pick is the warm-open node.
    first = cluster.run_process(cluster.client().open("/store/hot.root"), limit=60)
    cluster.run_process(cluster.client().open("/store/hot.root"), limit=60)
    cluster.settle(0.01)
    cluster.node(first.node).crash()

    client = cluster.client(config=ClientConfig(op_timeout=op_timeout))
    t0 = cluster.sim.now
    res = cluster.run_process(client.open("/store/hot.root"), limit=240)
    total = cluster.sim.now - t0
    assert res.node != first.node
    # Recovery = everything after the dead-server open timed out.
    recovery = total - op_timeout
    return total, recovery, client.stats.refreshes


def test_recovery_cost_is_one_query_round_trip(benchmark):
    def run():
        return [(t, *run_recovery(t)) for t in OP_TIMEOUTS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "A3",
        "client recovery after being vectored to a dead server",
        ["op timeout", "total to healthy read", "protocol recovery", "refreshes"],
        [(f"{t:.1f}s", ms(tot), ms(rec), r) for t, tot, rec, r in rows],
        notes=(
            "Protocol recovery (refresh + re-flood + redirect + open) is "
            "sub-millisecond and independent of the timeout; detection "
            "dominates — tune op_timeout, not the protocol."
        ),
    )
    for _t, _total, recovery, refreshes in rows:
        assert recovery < 5e-3  # sub-5ms protocol work
        assert refreshes >= 1
    # Recovery cost does not grow with the timeout setting.
    recoveries = [r for _t, _tot, r, _n in rows]
    assert max(recoveries) < min(recoveries) + 2e-3
