"""E10 — §III-C2: deadline-based query synchronization.

Paper claims reproduced here:

* "Only one thread should issue the queries.  The deadline effectively
  prohibits multiple threads from issuing queries regardless of the state
  of V_q" — with 32 clients hitting the same cold file simultaneously, the
  manager floods exactly once (one query per server), and every client
  still gets a correct redirect via the fast response queue;
* ablation (``deadline_sync=False``): each thread re-queries all eligible
  servers itself, multiplying control traffic;
* "Deadlines greatly simplify query synchronization.  No additional locks
  or queues are required" — the single-flood property costs nothing beyond
  the deadline field the object already carries.
"""

from repro.cluster import ScallaCluster, ScallaConfig

from reporting import record

N_SERVERS = 8
N_CLIENTS = 32


def run_storm(deadline_sync: bool):
    cluster = ScallaCluster(
        N_SERVERS, config=ScallaConfig(seed=101, deadline_sync=deadline_sync)
    )
    cluster.populate(["/store/cold.root"], size=64)
    cluster.settle()
    mgr = cluster.manager_cmsd()
    q0 = mgr.stats.queries_sent
    results = []

    def one_client(i):
        client = cluster.client(f"c{i}")
        node, _pending = yield from client.locate("/store/cold.root")
        results.append(node)

    def storm():
        procs = [cluster.sim.process(one_client(i)) for i in range(N_CLIENTS)]
        yield cluster.sim.all_of(procs)

    cluster.run_process(storm(), limit=120)
    return mgr.stats.queries_sent - q0, results


def test_single_flood_under_concurrency(benchmark):
    def run():
        return run_storm(True), run_storm(False)

    (sync_queries, sync_results), (ablate_queries, ablate_results) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # With deadlines: exactly one flood — one query per server.
    assert sync_queries == N_SERVERS, f"expected {N_SERVERS} queries, saw {sync_queries}"
    # Everyone still got the right answer (via the fast response queue).
    assert len(sync_results) == N_CLIENTS
    assert all(r == sync_results[0] for r in sync_results)
    # Ablation: duplicated floods inflate control traffic materially.
    assert ablate_queries > sync_queries * 4, (
        f"ablation sent only {ablate_queries} queries"
    )
    record(
        "E10",
        f"queries flooded when {N_CLIENTS} clients race on one cold file",
        ["design", "queries sent", "per-server floods", "clients answered"],
        [
            ("deadline sync (paper)", sync_queries, sync_queries // N_SERVERS, len(sync_results)),
            ("no sync (ablation)", ablate_queries, ablate_queries // N_SERVERS, len(ablate_results)),
            ("traffic inflation", f"{ablate_queries / sync_queries:.0f}x", "", ""),
        ],
        notes=(
            "The deadline is the only synchronization: no lock, no queue — "
            "threads seeing an armed deadline defer to the fast response "
            "queue instead of re-flooding."
        ),
    )


def test_deadline_prevents_premature_notfound(benchmark):
    """A client arriving between the flood and the responses must be
    deferred, not told 'no such file' (resolution step 2's deadline test)."""

    def run():
        cluster = ScallaCluster(N_SERVERS, config=ScallaConfig(seed=102))
        cluster.populate(["/store/racy.root"], size=64)
        cluster.settle()
        verdicts = []

        def early():
            client = cluster.client("early")
            node, _p = yield from client.locate("/store/racy.root")
            verdicts.append(("early", node))

        def late():
            # Arrives 20 us later: flood in flight, vectors still empty.
            yield cluster.sim.timeout(20e-6)
            client = cluster.client("late")
            node, _p = yield from client.locate("/store/racy.root")
            verdicts.append(("late", node))

        p1 = cluster.sim.process(early())
        p2 = cluster.sim.process(late())

        def both():
            yield cluster.sim.all_of([p1, p2])

        cluster.run_process(both(), limit=60)
        return verdicts

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(verdicts) == 2  # neither raised NoSuchFile
    nodes = {n for _tag, n in verdicts}
    assert len(nodes) == 1
    record(
        "E10-race",
        "mid-flood arrival is deferred past the deadline, not rejected",
        ["client", "verdict"],
        [(tag, f"redirected to {n}") for tag, n in verdicts],
    )
