"""Shared reporting for the experiment benches.

Every bench both *asserts* the paper's qualitative shape (so the suite
fails if a regression breaks a reproduced result) and *records* the
measured rows to ``benchmarks/results/<experiment>.md``, which is what
EXPERIMENTS.md points at.  Tables are also echoed to stdout (visible with
``pytest -s`` or in the benchmark run log).
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo root — where the BENCH_*.json perf-trajectory files live.
REPO_ROOT = pathlib.Path(__file__).parent.parent


def _fmt_row(cells: Sequence[object], widths: list[int]) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()


def record(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    notes: str = "",
) -> str:
    """Render a result table, write it to the results dir, echo it."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"# {experiment}: {title}", ""]
    lines.append(_fmt_row(headers, widths))
    lines.append(_fmt_row(["-" * w for w in widths], widths))
    for row in str_rows:
        lines.append(_fmt_row(row, widths))
    if notes:
        lines.append("")
        lines.append(notes)
    text = "\n".join(lines) + "\n"

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment.lower()}.md"
    out.write_text(text)
    print("\n" + text)
    return text


def us(seconds: float) -> str:
    """Format seconds as microseconds."""
    return f"{seconds * 1e6:.1f}us"


def ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def bench_path(name: str) -> pathlib.Path:
    """Path of the committed perf-trajectory file for *name*."""
    return REPO_ROOT / f"BENCH_{name}.json"


def load_bench(name: str) -> dict:
    """Load a BENCH file; an empty skeleton when it does not exist yet."""
    path = bench_path(name)
    if not path.exists():
        return {"benchmark": name, "entries": []}
    return json.loads(path.read_text())


def record_bench(
    name: str,
    label: str,
    metrics: dict[str, float],
    *,
    calibration: float,
    notes: str = "",
    echo: bool = True,
) -> pathlib.Path:
    """Append one labelled entry to ``BENCH_<name>.json`` at the repo root.

    Every entry carries the interpreter/platform it was measured on plus a
    ``calibration`` rate (a fixed pure-Python spin loop, see
    ``benchmarks/perf``), which is what lets ``scripts/check_perf.py``
    compare throughput numbers recorded on different machines.  Entries
    are append-only: the file is the perf *trajectory*, one pair of
    before/after points per optimization PR.
    """
    doc = load_bench(name)
    entry = {
        "label": label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration": round(calibration, 1),
        "metrics": dict(metrics),
    }
    if notes:
        entry["notes"] = notes
    doc["entries"].append(entry)
    out = bench_path(name)
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    if echo:
        rendered = "  ".join(f"{k}={v}" for k, v in sorted(metrics.items()))
        print(f"[perf] {name} «{label}»: {rendered}")
    return out


def record_snapshot(experiment: str, snapshot: dict, *, echo: bool = True) -> pathlib.Path:
    """Write a bench's observability snapshot next to its markdown table.

    *snapshot* comes from ``ScallaCluster.obs_snapshot()`` (or
    ``repro.obs.export.snapshot``).  The file lands at
    ``benchmarks/results/<experiment>.metrics.json`` — strict JSON, the
    artifact CI uploads and gates on.  The headline derived numbers are
    echoed so a bench log shows them without opening the file.
    """
    from repro.obs import export

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment.lower()}.metrics.json"
    export.write(snapshot, out)
    if echo:
        d = snapshot.get("derived", {})
        qw = d.get("queue_wait", {})
        print(
            f"[{experiment}] metrics snapshot -> {out.name}: "
            f"cache_hit_ratio={d.get('cache_hit_ratio', 0.0):.3f} "
            f"messages_per_resolution={d.get('messages_per_resolution', 0.0):.2f} "
            f"queue_wait_p50={qw.get('p50', 0.0) * 1e6:.1f}us "
            f"queue_wait_p99={qw.get('p99', 0.0) * 1e6:.1f}us"
        )
        churn = {
            k: d[k]
            for k in ("failovers", "rehomes", "chaos_msgs_dropped")
            if d.get(k)
        }
        if churn:
            rendered = " ".join(f"{k}={v}" for k, v in churn.items())
            print(f"[{experiment}] fault tolerance: {rendered}")
    return out
