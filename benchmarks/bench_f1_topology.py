"""F1 — Figure 1 / §II-B1: 64-ary tree organization and O(log64 N) lookup.

Paper claims reproduced here:

* lookup depth is ``ceil(log_64 N)`` — "the upper time limit in any sized
  cluster is O(log64(number of servers))";
* "as the number of nodes increases, search performance increases at an
  exponential rate" — i.e. capacity per added level multiplies by 64;
* measured end-to-end redirect hop counts in the simulated cluster equal
  the analytic depth.

Topologies up to 4096 real nodes are constructed; beyond that the
closed-form model is checked against itself (constructing a 262k-node
simulation adds nothing to the claim).
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.topology import build_topology
from repro.core.models import max_servers, tree_depth

from reporting import record


def test_depth_model_vs_constructed_topologies(benchmark):
    """Constructed tree depth matches ceil(log64 N) over the buildable range."""

    def build_all():
        results = []
        for n in (1, 2, 63, 64, 65, 640, 4095, 4096):
            topo = build_topology(n)
            results.append((n, topo.depth(), tree_depth(n)))
        return results

    results = benchmark.pedantic(build_all, rounds=1, iterations=1)
    for n, measured, model in results:
        assert measured == model, f"{n} servers: depth {measured} != model {model}"

    rows = [(n, d, m, max_servers(d)) for n, d, m in results]
    # Extend with the model-only regime (the paper's 'any sized cluster').
    for n in (64**3, 64**4):
        rows.append((n, "-", tree_depth(n), max_servers(tree_depth(n))))
    record(
        "F1",
        "tree depth vs cluster size (64-ary organization)",
        ["servers", "built depth", "model depth", "capacity at depth"],
        rows,
        notes=(
            "Capacity multiplies by 64 per level: the paper's 'search "
            "performance increases at an exponential rate'.  Built and "
            "modeled depths agree everywhere construction is practical."
        ),
    )


def test_measured_hops_equal_depth(benchmark):
    """End-to-end: a client's redirect count equals the tree depth.

    Small fanouts build deep trees cheaply; hop counts are a topology
    property, not a fanout property.
    """

    def run():
        rows = []
        for n, fanout in ((4, 64), (16, 4), (8, 2), (16, 2)):
            cluster = ScallaCluster(n, config=ScallaConfig(seed=41, fanout=fanout))
            cluster.populate(["/store/probe.root"], size=64)
            cluster.settle()
            res = cluster.run_process(cluster.client().open("/store/probe.root"), limit=60)
            rows.append((n, fanout, cluster.topology.depth(), res.redirects))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, fanout, depth, hops in rows:
        assert hops == depth, f"{n}@{fanout}: {hops} hops != depth {depth}"
    record(
        "F1-hops",
        "measured client redirects vs tree depth",
        ["servers", "fanout", "tree depth", "measured redirects"],
        rows,
        notes="One redirect per cmsd level, exactly as Figure 1 prescribes.",
    )
