"""F3 — Figure 3 / §III-A4: O(1) lazy corrections and the V_wc window memo.

Paper claims reproduced here:

* "The algorithm adds O(1) overhead to each look-up" — fetch cost with a
  pending correction is independent of cache size;
* the per-window memo "avoids having to generate V_c on every look-up":
  after membership churn, a full fetch sweep over N objects generates V_c
  at most once per (window, epoch) — the hit rate must be ~100%;
* corrected vectors equal a from-scratch recomputation (verified per fetch).
"""

import random
import time

from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.workloads.namegen import hep_paths

from reporting import record


def build_cache(n_objects: int, *, servers: int = 8) -> NameCache:
    m = ClusterMembership()
    for i in range(servers):
        m.login(f"srv-{i}", ["/store"])
    cache = NameCache(m, lifetime=64.0)
    for p in hep_paths(n_objects, rng=random.Random(1), runs=10 * n_objects):
        cache.lookup(p, now=0.0)
    return cache


def sweep(cache: NameCache, paths, now):
    t0 = time.perf_counter()
    for p in paths:
        cache.lookup(p, now=now)
    return (time.perf_counter() - t0) / len(paths)


def test_correction_overhead_constant_in_cache_size(benchmark):
    """Fetch cost right after a membership change, cache sizes 5k..80k:
    per-fetch cost must be flat (the O(1) claim)."""
    rows = []
    costs = []
    for n in (5_000, 20_000, 80_000):
        cache = build_cache(n)
        paths = hep_paths(n, rng=random.Random(1), runs=10 * n)
        baseline = sweep(cache, paths, now=1.0)  # no corrections pending
        cache.membership.login("srv-late", ["/store"])  # forces corrections
        corrected = sweep(cache, paths, now=2.0)
        rows.append(
            (
                n,
                f"{baseline * 1e9:.0f}ns",
                f"{corrected * 1e9:.0f}ns",
                f"{corrected / baseline:.2f}x",
                cache.stats.vwc_hits,
                cache.stats.vwc_misses,
            )
        )
        costs.append(corrected)
    assert costs[-1] < costs[0] * 2.0, f"correction cost grew with cache size: {costs}"
    record(
        "F3",
        "per-fetch cost with pending corrections vs cache size",
        ["objects", "clean fetch", "correcting fetch", "ratio", "V_wc hits", "V_wc misses"],
        rows,
        notes=(
            "Correcting-fetch cost is flat across a 16x size range: the "
            "correction is O(1) per fetch and amortizes via the window memo."
        ),
    )

    cache = build_cache(20_000)
    paths = hep_paths(20_000, rng=random.Random(1), runs=200_000)
    cache.membership.login("srv-memo", ["/store"])

    def correcting_sweep():
        for p in paths:
            cache.lookup(p, now=3.0)

    benchmark(correcting_sweep)


def test_window_memo_hit_rate(benchmark):
    """One V_c generation per (window, epoch): sweeping 50k stale objects
    after churn must hit the memo on ~every fetch."""

    def run():
        cache = build_cache(50_000)
        cache.membership.login("srv-a", ["/store"])
        paths = hep_paths(50_000, rng=random.Random(1), runs=500_000)
        for p in paths:
            cache.lookup(p, now=1.0)
        return cache

    cache = benchmark.pedantic(run, rounds=1, iterations=1)
    hits, misses = cache.stats.vwc_hits, cache.stats.vwc_misses
    assert misses <= 64, f"expected at most one miss per window, got {misses}"
    assert hits >= 50_000 - 64
    record(
        "F3-memo",
        "V_wc memo effectiveness over a 50k-object churn sweep",
        ["fetches", "V_c generated (misses)", "memo reuses (hits)", "hit rate"],
        [(50_000, misses, hits, f"{hits / (hits + misses):.4%}")],
        notes="V_c is generated once per window epoch; every other fetch reuses it.",
    )


def test_memo_ablation_cost(benchmark):
    """Ablation: the sweep with the memo disabled regenerates V_c per fetch
    (64 counter reads each); with the memo it is one dict-free comparison."""
    import time as _time

    def run():
        rows = []
        for memo in (True, False):
            m = ClusterMembership()
            for i in range(8):
                m.login(f"srv-{i}", ["/store"])
            cache = NameCache(m, lifetime=64.0, window_memo=memo)
            paths = hep_paths(30_000, rng=random.Random(1), runs=300_000)
            for p in paths:
                cache.lookup(p, now=0.0)
            m.login("srv-late", ["/store"])
            t0 = _time.perf_counter()
            for p in paths:
                cache.lookup(p, now=1.0)
            per_fetch = (_time.perf_counter() - t0) / len(paths)
            rows.append((memo, per_fetch, cache.stats.vwc_misses))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with_memo = next(r for r in rows if r[0])
    without = next(r for r in rows if not r[0])
    assert with_memo[2] <= 64
    assert without[2] == 30_000  # every fetch regenerated V_c
    record(
        "F3-ablation",
        "correction sweep cost with and without the V_wc window memo",
        ["window memo", "per-fetch", "V_c generations"],
        [
            ("on (paper)", f"{with_memo[1] * 1e9:.0f}ns", with_memo[2]),
            ("off (ablation)", f"{without[1] * 1e9:.0f}ns", without[2]),
            ("overhead removed", f"{(without[1] - with_memo[1]) * 1e9:.0f}ns/fetch", ""),
        ],
        notes="The memo converts a 64-counter scan per stale fetch into a comparison.",
    )


def test_correction_equivalence_spot_check(benchmark):
    """Corrected state == recomputed-from-scratch state under random churn."""

    def run():
        rng = random.Random(9)
        m = ClusterMembership()
        names = [f"srv-{i}" for i in range(6)]
        for n in names:
            m.login(n, ["/store"])
        cache = NameCache(m, lifetime=64.0)
        paths = hep_paths(500, rng=random.Random(2))
        for p in paths:
            ref, _ = cache.lookup(p, now=0.0)
            # Scatter some holder state.
            for s in range(6):
                if rng.random() < 0.3 and m.slot_of(names[s]) is not None:
                    cache.update_holder(p, ref.hash_val, m.slot_of(names[s]))
        # Churn: drops and joins.
        m.drop("srv-0")
        m.login("srv-new-1", ["/store"])
        m.login("srv-new-2", ["/store"])
        violations = 0
        for p in paths:
            ref, _ = cache.lookup(p, now=1.0)
            obj = ref.get()
            v_m = m.eligible(p)
            if obj.v_h & ~v_m or obj.v_p & ~v_m or obj.v_q & ~v_m:
                violations += 1  # mentions an ineligible server
            if obj.v_q & (obj.v_h | obj.v_p):
                violations += 1  # vector invariant broken
            for new in ("srv-new-1", "srv-new-2"):
                if not (obj.v_q >> m.slot_of(new)) & 1 and not (obj.v_h >> m.slot_of(new)) & 1:
                    violations += 1  # late joiner not scheduled for query
        return violations

    violations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert violations == 0
    record(
        "F3-equiv",
        "correction equivalence under churn (500 objects, drop + 2 joins)",
        ["objects", "violations"],
        [(500, violations)],
    )
