"""F2 — Figure 2 / §III-A1: the Fibonacci hash table's constant-time lookups.

Paper claims reproduced here:

* "In practice, look-up time is constant" as the table grows — measured
  wall-clock lookup cost at 10k / 50k / 200k entries must stay flat;
* "the resizing rate decreases as the number of entries increase ...
  resizing ceases in a relatively short time" — resize events per insert
  decay geometrically;
* chain discipline: mean probe length stays ~1 + load under growth.
"""

import random

from repro.core.crc32 import hash_name
from repro.core.hashtable import LocationTable
from repro.core.location import LocationObject
from repro.workloads.namegen import hep_paths

from reporting import record

SIZES = (10_000, 50_000, 200_000)


def build_table(n):
    table = LocationTable()
    objs = []
    for p in hep_paths(n, rng=random.Random(1), runs=100_000):
        obj = LocationObject()
        obj.assign(p, hash_name(p), c_n=0, t_a=0)
        table.insert(obj)
        objs.append(obj)
    return table, objs


def test_lookup_cost_constant_as_table_grows(benchmark):
    """Time 20k lookups at each population; the per-lookup cost must not
    grow with table size (constant-time claim)."""
    import time

    rows = []
    wall = []
    probes = []
    for n in SIZES:
        table, objs = build_table(n)
        sample = random.Random(2).choices(objs, k=20_000)
        t0 = time.perf_counter()
        for obj in sample:
            assert table.find(obj.key, obj.hash_val) is obj
        per_lookup = (time.perf_counter() - t0) / len(sample)
        rows.append((n, table.size, f"{per_lookup * 1e9:.0f}ns", f"{table.mean_probe_length():.2f}", table.resizes))
        wall.append(per_lookup)
        probes.append(table.mean_probe_length())

    # The algorithmic claim: probes per lookup are flat (constant work).
    assert probes[-1] < probes[0] * 1.3, f"probe count grew: {probes}"
    # Wall clock may drift with working-set size (CPU cache misses on the
    # 20x larger object graph) but must stay within the memory-hierarchy
    # band, nowhere near O(n) or O(log n) growth.
    assert wall[-1] < wall[0] * 4.0, f"lookup cost grew superlinearly: {wall}"
    record(
        "F2",
        "lookup cost vs table population (constant-time claim)",
        ["entries", "buckets", "per-lookup", "mean probes", "resizes so far"],
        rows,
        notes=(
            "Probes per lookup are flat across a 20x population range — the "
            "algorithm is constant-time.  Wall-clock per lookup drifts with "
            "working-set size (CPU cache misses, a memory-hierarchy effect "
            "the paper's C implementation also faced), not with chain length."
        ),
    )

    # Also give pytest-benchmark a steady-state lookup figure.
    table, objs = build_table(SIZES[-1])
    sample = random.Random(3).sample(objs, 5_000)

    def lookups():
        for obj in sample:
            table.find(obj.key, obj.hash_val)

    benchmark(lookups)


def test_resize_rate_decays_geometrically(benchmark):
    """Count resizes per decade of inserts: each decade must resize fewer
    times per insert than the last (geometric ladder)."""

    def run():
        table = LocationTable()
        marks = []
        paths = hep_paths(200_000, rng=random.Random(4), runs=1_000_000)
        prev_resizes = 0
        next_mark = 2_000
        for i, p in enumerate(paths, 1):
            obj = LocationObject()
            obj.assign(p, hash_name(p), c_n=0, t_a=0)
            table.insert(obj)
            if i == next_mark:
                marks.append((i, table.resizes - prev_resizes, table.size))
                prev_resizes = table.resizes
                next_mark *= 10
        return table, marks

    table, marks = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(upto, delta, size) for upto, delta, size in marks]
    record(
        "F2-resize",
        "resize events per insert decade (geometric growth)",
        ["inserts so far", "resizes this decade", "buckets"],
        rows,
        notes="Resize rate per insert decays; growth effectively ceases.",
    )
    # 2k->20k inserts may resize a few times; 20k->200k at most ~5 more
    # (ladder is geometric), and per-insert rate must strictly decay.
    rates = [delta / upto for upto, delta, _ in marks]
    assert rates == sorted(rates, reverse=True), f"resize rate not decaying: {marks}"


def test_insert_throughput(benchmark):
    """Headline ops figure: inserts/second including growth amortization."""
    paths = hep_paths(30_000, rng=random.Random(5), runs=500_000)

    def run():
        table = LocationTable()
        for p in paths:
            obj = LocationObject()
            obj.assign(p, hash_name(p), c_n=0, t_a=0)
            table.insert(obj)
        return table

    table = benchmark(run)
    assert table.count == 30_000
