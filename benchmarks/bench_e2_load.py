"""E2 — §II-B5: redirection time vs load, "a very low linear slope".

Paper claim reproduced here: "as more simultaneous requests need to be
processed, the average redirection time increases as well.  However, the
cache uses linear and constant-time algorithms, so the redirection time
rises with a very low linear slope as load increases."

Workload: a 64-server cluster, Zipf(1.1)-popular 1,000-file dataset,
N ∈ {1..512} clients each resolving a burst of files concurrently (the
§II-A meta-data-burst shape).  We report mean/p95 warm redirection latency
per concurrency level and fit the slope.
"""

import random

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.monitor import Histogram
from repro.workloads.namegen import hep_paths
from repro.workloads.popularity import ZipfChooser

from reporting import record, us

LEVELS = (1, 8, 32, 128, 512)
FILES_PER_CLIENT = 8


def run_level(n_clients: int, seed: int = 61):
    cluster = ScallaCluster(64, config=ScallaConfig(seed=seed))
    dataset = hep_paths(1_000, rng=random.Random(1))
    cluster.populate(dataset, copies=2, size=1024)
    cluster.settle()

    # Warm the location cache so we measure steady-state behaviour, not the
    # one-off discovery floods.
    warmer = cluster.client("warm")

    def warm():
        for p in dataset[:200]:
            yield from warmer.locate(p)

    cluster.run_process(warm(), limit=120)

    chooser = ZipfChooser(dataset[:200], s=1.1)
    rng = random.Random(seed)
    latencies = Histogram()

    # Clients start across a fixed window, so the *offered rate* scales
    # with the client count (load), rather than modelling one synchronized
    # burst (which measures N/2 queue drain, not load response).
    window = 0.05

    def one_client(name, delay):
        yield cluster.sim.timeout(delay)
        client = cluster.client(name)
        for _ in range(FILES_PER_CLIENT):
            path = chooser.choose(rng)
            t0 = cluster.sim.now
            yield from client.locate(path)
            latencies.record(cluster.sim.now - t0)

    def storm():
        procs = [
            cluster.sim.process(one_client(f"c{i:04d}", rng.uniform(0, window)))
            for i in range(n_clients)
        ]
        yield cluster.sim.all_of(procs)

    cluster.run_process(storm(), limit=600)
    rate = n_clients * FILES_PER_CLIENT / window
    return rate, latencies.summary()


def test_redirection_latency_low_linear_slope(benchmark):
    def run():
        return [(n, *run_level(n)) for n in LEVELS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (n, f"{rate:.0f}/s", s.count, us(s.mean), us(s.p50), us(s.p95), us(s.maximum))
        for n, rate, s in results
    ]
    record(
        "E2",
        "warm redirection latency vs offered load (Zipf popularity)",
        ["clients", "offered rate", "locates", "mean", "p50", "p95", "max"],
        rows,
        notes=(
            "512x the offered rate inflates mean redirection latency only "
            "modestly: the cache's constant-time service keeps the growth a "
            "shallow (queueing-theoretic) linear slope, as §II-B5 claims."
        ),
    )

    means = {n: s.mean for n, _r, s in results}
    # Low linear slope: 512x the offered rate must inflate the mean by far
    # less than 512x — demand under 4x.
    assert means[512] < means[1] * 4, (
        f"slope too steep: {means[1] * 1e6:.1f}us -> {means[512] * 1e6:.1f}us"
    )
    # Latency stays in the tens-of-microseconds regime even at peak load.
    assert results[-1][2].p95 < 1e-3
