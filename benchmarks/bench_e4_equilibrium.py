"""E4 — §III-A2: cache equilibrium and the memory bound.

Paper claims reproduced here:

* "the maximum number of entries in the table is bounded by an equilibrium
  reached between the object creation rate and the object lifetime" —
  population converges to ``create_rate × L_t`` and stays there;
* the arithmetic of the paper's own bound: 1000 creates/s × 8 h =
  28,800,000 objects ≈ 16 GB (≈590 B/object), and at the *typical*
  50-100/s rate the cache stays far smaller;
* storage is recycled, never freed: the allocated-object count equals the
  equilibrium population, not the total ever created.

We run a scaled L_t (64 ticks at 1 s) at several creation rates and check
population against the closed form.
"""

from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.core.eviction import WINDOW_COUNT
from repro.core.models import PAPER_BYTES_PER_OBJECT, equilibrium_objects, memory_bound_bytes

from reporting import record

RATES = (50, 200, 1000)  # objects created per window tick
TICKS = 4 * WINDOW_COUNT  # four lifetimes: ample for convergence


def run_rate(per_tick: int) -> tuple[int, int, int]:
    m = ClusterMembership()
    m.login("srv-0", ["/store"])
    cache = NameCache(m, lifetime=float(WINDOW_COUNT))  # 1 s per tick
    created = 0
    for tick in range(TICKS):
        for i in range(per_tick):
            cache.lookup(f"/store/t{tick}/f{i}.root", now=float(tick))
            created += 1
        cache.tick()
        cache.run_background_removal()
    return cache.live_count(), cache.allocated, created


def test_population_converges_to_rate_times_lifetime(benchmark):
    def run():
        return [(r, *run_rate(r)) for r in RATES]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for rate, live, allocated, created in results:
        expected = equilibrium_objects(rate, WINDOW_COUNT)  # rate/tick x 64 ticks
        rows.append((rate, created, live, int(expected), allocated))
        # Population within one window of the closed form (edge windows in
        # transition are the only slack).
        assert abs(live - expected) <= rate * 2, (
            f"rate {rate}: live {live} vs expected {expected}"
        )
        # Storage recycled: allocations track the equilibrium + transition
        # windows, NOT total creations (4x larger).
        assert allocated < expected + 3 * rate
        assert allocated < created / 2
    record(
        "E4",
        "cache population equilibrium = create rate x lifetime",
        ["rate (objs/tick)", "total created", "live at end", "model rate*L_t", "storage allocated"],
        rows,
        notes=(
            "Population locks to rate*L_t while storage allocation stays at "
            "the equilibrium level (recycling, never freeing).  Four "
            "lifetimes simulated per rate."
        ),
    )


def test_paper_memory_arithmetic(benchmark):
    """The 16 GB bound and the <1 GB typical figure, from the model."""

    def run():
        return (
            equilibrium_objects(1000.0, 8 * 3600.0),
            memory_bound_bytes(1000.0, 8 * 3600.0) / 2**30,
            memory_bound_bytes(50.0, 8 * 3600.0) / 2**30,
        )

    max_objs, max_gb, typical_gb = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max_objs == 28_800_000
    assert abs(max_gb - 16.0) < 0.01
    assert typical_gb < 1.0
    record(
        "E4-memory",
        "paper's memory arithmetic (closed form)",
        ["create rate", "lifetime", "objects", "memory"],
        [
            ("1000/s (NIC-bound max)", "8h", f"{max_objs:,}", f"{max_gb:.1f} GB"),
            ("50/s (typical)", "8h", f"{int(equilibrium_objects(50, 8 * 3600)):,}", f"{typical_gb:.2f} GB"),
        ],
        notes=f"Implied object footprint: {PAPER_BYTES_PER_OBJECT:.0f} bytes.",
    )


def test_measured_python_object_footprint(benchmark):
    """Our Python location objects are fatter than the paper's C structs;
    report the honest measured figure next to the paper's ~590 B."""
    import sys

    def run():
        m = ClusterMembership()
        m.login("srv-0", ["/store"])
        cache = NameCache(m, lifetime=64.0)
        n = 10_000
        for i in range(n):
            cache.lookup(f"/store/footprint/f{i:06d}.root", now=0.0)
        obj_ref, _ = cache.lookup("/store/footprint/f000000.root", now=0.0)
        obj = obj_ref.get()
        per_obj = (
            sys.getsizeof(obj)
            + sys.getsizeof(obj.key)
            + 8 * len(obj.__slots__)  # slot references
        )
        return per_obj

    per_obj = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "E4-footprint",
        "measured per-object footprint (Python) vs paper (C)",
        ["implementation", "bytes/object"],
        [("this repo (CPython, slots)", per_obj), ("paper's cmsd (C structs)", f"{PAPER_BYTES_PER_OBJECT:.0f}")],
        notes="Same O(1)-per-file scaling; constant differs by the runtime.",
    )
    assert 100 < per_obj < 5000
