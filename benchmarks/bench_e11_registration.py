"""E11 — §V: prefix registration vs full-manifest registration, and
state-less restart.

Paper claims reproduced here:

* "node registration and de-registration are extremely light operations ...
  Nodes need only identify path prefixes for their hosted data" — a Scalla
  login's payload is constant in the server's file count;
* "In GFS, node registration is more expensive since the incoming server
  must transmit its entire manifest to the master" and (from Scalla's own
  early development) file-list submission "caused long delays (minutes for
  a single server)" — the baseline's payload and time grow linearly with
  files, reaching minutes at WAN-era rates;
* "Scalla clusters of hundreds of nodes can begin to serve files within
  seconds of restarting" — measured restart-to-first-byte on the simulated
  cluster; the GFS-style design must instead re-ingest every manifest.
"""

import random

from repro.baselines.central_master import CentralMaster, register_over_network
from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster import protocol as pr
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed
from repro.sim.network import Network

from reporting import record

FILE_COUNTS = (100, 10_000, 1_000_000)

#: Effective manifest upload bandwidth (2001-era WAN-ish federation link as
#: the paper's anecdote implies): 10 Mbit/s.
UPLOAD_BYTES_PER_SEC = 10e6 / 8


def manifest_paths(n):
    return [f"/store/run{i // 1000:05d}/evts-{i % 1000:04d}.root" for i in range(n)]


def gfs_registration(n_files):
    sim = Simulator()
    net = Network(sim, default_latency=Fixed(1e-3), rng=random.Random(0))
    net.add_host("master")
    net.add_host("srv1")
    master = CentralMaster()

    def master_loop():
        host = net.host("master")
        while True:
            env = yield host.inbox.get()
            master.ingest(env.payload)

    sim.process(master_loop())
    tracker = register_over_network(
        sim, net, master,
        master_host="master", node="srv1", node_host="srv1",
        manifest=manifest_paths(n_files),
    )
    sim.run(until=600.0)
    # Registration time is dominated by payload transfer at the link rate.
    transfer_time = tracker.bytes_sent / UPLOAD_BYTES_PER_SEC
    return tracker.bytes_sent, transfer_time


def test_registration_payload_and_time(benchmark):
    def run():
        rows = []
        login_bytes = pr.estimate_size(
            pr.Login(node="srv00001", role="server", paths=("/store",))
        )
        for n in FILE_COUNTS:
            gfs_bytes, gfs_time = gfs_registration(n)
            rows.append(
                (
                    n,
                    login_bytes,
                    "~20us",
                    f"{gfs_bytes:,}",
                    f"{gfs_time:.1f}s",
                )
            )
        return login_bytes, rows

    login_bytes, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "E11",
        "registration cost: Scalla prefix login vs GFS-style full manifest",
        ["files on server", "scalla bytes", "scalla time", "manifest bytes", "manifest time @10Mbps"],
        rows,
        notes=(
            "The Scalla login is constant-size whatever the disk holds; the "
            "manifest upload reaches minutes per server at 1M files — the "
            "'long delays (minutes for a single server)' §V recounts."
        ),
    )
    # Scalla: constant. GFS: linear, minute-scale at 1M files.
    assert login_bytes < 100
    gfs_bytes_1m, gfs_time_1m = gfs_registration(1_000_000)
    assert gfs_bytes_1m > login_bytes * 100_000
    # Wire time alone is tens of seconds at 10 Mbps; with master-side
    # ingest and 2001-era links this is the paper's "minutes per server".
    assert gfs_time_1m > 10.0


def test_cluster_restart_to_first_byte(benchmark):
    """Cold-restart every cmsd in a 32-server cluster holding 20k files;
    measure time until a client gets data.  Must be seconds, independent of
    the file count (nothing is re-uploaded)."""

    def run():
        cluster = ScallaCluster(
            32,
            config=ScallaConfig(
                seed=111,
                heartbeat_interval=0.5,
                relogin_timeout=1.0,
            ),
        )
        paths = [f"/store/r/{i:05d}.root" for i in range(20_000)]
        cluster.populate(paths, size=128)
        cluster.settle()
        # Power-cycle the entire cluster, manager included.
        for name in list(cluster.nodes):
            cluster.node(name).crash()
        t0 = cluster.sim.now
        for name in list(cluster.nodes):
            cluster.node(name).restart()
        res = cluster.run_process(cluster.client().open(paths[123]), limit=600)
        return cluster.sim.now - t0, res

    elapsed, res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.size == 128
    assert elapsed < 10.0, f"restart-to-first-byte took {elapsed:.1f}s"
    record(
        "E11-restart",
        "full-cluster cold restart to first byte served (32 servers, 20k files)",
        ["files in cluster", "restart-to-first-byte"],
        [(20_000, f"{elapsed:.2f}s")],
        notes=(
            "No state is re-uploaded: logins carry prefixes only, locations "
            "are re-discovered on demand — 'within seconds of restarting'."
        ),
    )
