"""E6-wan: cold locate latency over an 80 ms WAN site link.

The regression this tracks: at seed, query responses crossing an 80 ms
one-way link always landed after the 133 ms fast-response window, so every
cold locate of an *existing* remote file silently degraded to the full 5 s
conservative delay (5.13 s measured).  Late-response reconciliation and the
adaptive window (EXPERIMENTS.md finding #4) bring that to ~160 ms — about
one WAN query round trip.

Both metrics are *simulated* time, deterministic and machine-independent:
any movement means the protocol's behaviour changed, which is exactly what
the perf-smoke gate should catch (SIMTIME_TOLERANCE in check_perf).

* ``wan_cold_locate_us`` — default config (late-response reconciliation
  on, adaptive window off): the parked client is released when the
  straggling response lands.
* ``wan_adaptive_locate_us`` — adaptive window with warm RTT estimates:
  the window is sized to cover the WAN round trip, so the release stays on
  the fast path (no window expiry at all).
"""

from __future__ import annotations

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.ids import cmsd_host, xrootd_host
from repro.sim.latency import Uniform


def _cold_wan_locate_us(*, settle: float, **config_kwargs) -> float:
    cluster = ScallaCluster(4, config=ScallaConfig(seed=74, **config_kwargs))
    net = cluster.network
    remote = [h for s in cluster.servers for h in (cmsd_host(s), xrootd_host(s))]
    net.federate(
        {"remote": remote, "hq": [cmsd_host(cluster.managers[0])]},
        wan_latency=Uniform(78e-3, 82e-3),
    )
    cluster.populate(["/store/wan.root"], size=64)
    cluster.settle(settle)
    client = cluster.client()
    net.set_host_site(client.host.name, "hq")
    t0 = cluster.sim.now

    def probe():
        yield from client.locate("/store/wan.root")
        return cluster.sim.now - t0

    return cluster.run_process(probe(), limit=120) * 1e6


def run_suite(*, scale: int = 1, repeats: int = 3) -> dict[str, float]:
    # Simulated-time metrics: one run is exact, scale/repeats are accepted
    # only for signature symmetry with the wall-clock suites.
    del scale, repeats
    return {
        "wan_cold_locate_us": round(_cold_wan_locate_us(settle=0.5), 3),
        "wan_adaptive_locate_us": round(
            _cold_wan_locate_us(settle=2.5, adaptive_window=True), 3
        ),
    }
