#!/usr/bin/env python
"""Run the tracked perf suite; optionally append to the BENCH trajectory.

Usage::

    python benchmarks/perf/run.py                      # measure + print
    python benchmarks/perf/run.py --record "label"     # append to BENCH_*.json
    python benchmarks/perf/run.py --json out.json      # machine-readable dump
    python benchmarks/perf/run.py --quick              # CI-sized workloads

The kernel + e2e metrics land in ``BENCH_kernel.json``, the cache metrics
in ``BENCH_cache.json`` (repo root).  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE.parent))  # benchmarks/: the perf package + reporting
sys.path.insert(0, str(_HERE.parent.parent / "src"))  # src/: repro

from perf import QUICK, calibrate  # noqa: E402
from perf import perf_cache, perf_e2e, perf_kernel, perf_wan  # noqa: E402
from reporting import record_bench  # noqa: E402


def run_all(*, quick: bool = False) -> dict:
    """Run every suite; returns ``{"kernel": {...}, "cache": {...}, ...}``."""
    scale = QUICK if quick else 1
    repeats = 2 if quick else 3
    return {
        "calibration": calibrate(n=500_000 if quick else 2_000_000),
        "kernel": {
            **perf_kernel.run_suite(scale=scale, repeats=repeats),
            **perf_e2e.run_suite(scale=scale, repeats=repeats),
        },
        "cache": {
            **perf_cache.run_suite(scale=scale, repeats=repeats),
            **perf_wan.run_suite(scale=scale, repeats=repeats),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/perf/run.py",
        description="Kernel/cache/e2e perf suite for the BENCH_*.json trajectory",
    )
    parser.add_argument("--record", metavar="LABEL", help="append entries to BENCH_*.json")
    parser.add_argument("--json", metavar="PATH", help="write raw results to PATH")
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument("--notes", default="", help="free-form note stored with --record")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    for suite in ("kernel", "cache"):
        for metric, value in sorted(results[suite].items()):
            print(f"{suite:>6}  {metric:<28} {value:>14,.1f}")
    print(f"{'host':>6}  {'calibration':<28} {results['calibration']:>14,.1f}")

    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
    if args.record:
        for suite in ("kernel", "cache"):
            record_bench(
                suite,
                args.record,
                results[suite],
                calibration=results["calibration"],
                notes=args.notes,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
