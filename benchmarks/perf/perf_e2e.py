"""End-to-end E1 resolution: whole-stack locate throughput and latency.

Drives the full cluster — client, xrootd redirectors, cmsd tree, name
cache, fast response queue, simulated network — through repeated warm
locates on a depth-2 tree (16 servers, fanout 4), the E1 configuration.

Two metrics:

* ``locate_per_sec`` — wall-clock resolutions per second, the
  whole-stack hot-path throughput (kernel + cache + protocol);
* ``warm_locate_us`` — *simulated* warm locate latency in microseconds.
  This is deterministic and machine-independent: any change here means
  the protocol behaviour changed, not just its speed.
"""

from __future__ import annotations

import time

from repro.cluster import ScallaCluster, ScallaConfig


def _build(seed: int = 51) -> tuple[ScallaCluster, list[str]]:
    cluster = ScallaCluster(16, config=ScallaConfig(seed=seed, fanout=4))
    paths = [f"/store/perf/f{i:03d}.root" for i in range(32)]
    cluster.populate(paths)
    cluster.settle()
    return cluster, paths


def run_suite(*, scale: int = 1, repeats: int = 3) -> dict[str, float]:
    n_locates = 600 // scale
    best = 0.0
    warm_us = 0.0
    for _ in range(repeats):
        cluster, paths = _build()
        client = cluster.client()
        # Warm the cache once so the measured loop is the cached fetch path.
        for p in paths:
            cluster.run_process(client.locate(p))
        t0 = cluster.sim.now
        cluster.run_process(client.locate(paths[0]))
        warm_us = (cluster.sim.now - t0) * 1e6
        w0 = time.perf_counter()
        for i in range(n_locates):
            cluster.run_process(client.locate(paths[i % len(paths)]))
        elapsed = time.perf_counter() - w0
        if elapsed > 0:
            best = max(best, n_locates / elapsed)
    return {
        "locate_per_sec": round(best, 1),
        "warm_locate_us": round(warm_us, 3),
    }
