"""Kernel microbenchmarks: raw event-dispatch throughput.

Three scenarios cover the kernel's distinct hot paths, sized so the
per-event kernel overhead (allocation, heap traffic, callback dispatch)
dominates over the trivial process bodies:

* ``spawn`` — per-message process creation, the ``Network.deliver``
  pattern: thousands of short-lived processes, each one bootstrap +
  one timeout + one completion event.  This is the path the
  deferred-resume ring and ``__slots__`` target.
* ``timeout`` — long-running processes looping on ``sim.sleep`` (the
  kernel-pooled timeout; plain ``sim.timeout`` on kernels that predate
  pooling).  Pure heap + timeout-object traffic.
* ``store`` — producer/consumer handoff through ``sim.sync.Store``, the
  cmsd-inbox pattern: per-item Event allocation and same-time handoff.

The headline ``events_per_sec`` aggregates all three (total events over
total wall time), weighting each path by the events it generates.
"""

from __future__ import annotations

import time

from repro.sim.kernel import Simulator
from repro.sim.sync import Store


def _sleeper(sim):
    """``yield sim.sleep(...)`` where available (pooled), else timeout."""
    return getattr(sim, "sleep", None) or sim.timeout


def run_spawn(n_procs: int = 30_000, batch: int = 200) -> tuple[int, float]:
    """Spawn *n_procs* one-shot processes in waves; return (events, elapsed).

    A driver process launches *batch* processes per simulated second, the
    way ``Network.deliver`` spawns one handler per in-flight message: a
    few hundred live processes at any instant, not all of them at once
    (which would measure the garbage collector, not the kernel).
    """
    sim = Simulator()
    sleep = _sleeper(sim)

    def one_shot(d):
        yield sleep(d)

    def driver():
        for start in range(0, n_procs, batch):
            for i in range(start, start + batch):
                sim.process(one_shot(float(i % 7)))
            yield sleep(8.0)  # past the longest one_shot delay

    t0 = time.perf_counter()
    sim.process(driver())
    sim.run()
    return sim.events_processed, time.perf_counter() - t0


def run_timeout(n_procs: int = 100, n_waits: int = 600) -> tuple[int, float]:
    """Looping sleepers with interleaved wakeup times; (events, elapsed)."""
    sim = Simulator()
    sleep = _sleeper(sim)

    def looper(step):
        for _ in range(n_waits):
            yield sleep(step)

    t0 = time.perf_counter()
    for i in range(n_procs):
        sim.process(looper(1.0 + (i % 13) * 0.25))
    sim.run()
    return sim.events_processed, time.perf_counter() - t0


def run_store(n_items: int = 40_000) -> tuple[int, float]:
    """Producer/consumer handoff through a Store; (events, elapsed)."""
    sim = Simulator()
    store = Store(sim)
    sleep = _sleeper(sim)

    def producer():
        for i in range(n_items):
            store.put(i)
            yield sleep(0.001)

    def consumer():
        for _ in range(n_items):
            yield store.get()

    t0 = time.perf_counter()
    sim.process(consumer())
    sim.process(producer())
    sim.run()
    return sim.events_processed, time.perf_counter() - t0


def run_suite(*, scale: int = 1, repeats: int = 3) -> dict[str, float]:
    """Run every scenario; return the kernel metric dict.

    *scale* divides workload sizes (CI smoke uses a larger divisor); the
    rates are size-independent so entries stay comparable.
    """
    scenarios = {
        "spawn": lambda: run_spawn(30_000 // scale),
        "timeout": lambda: run_timeout(100, 600 // scale),
        "store": lambda: run_store(40_000 // scale),
    }
    metrics: dict[str, float] = {}
    agg_events = 0
    agg_elapsed = 0.0
    for name, fn in scenarios.items():
        best_rate = 0.0
        best = None
        for _ in range(repeats):
            events, elapsed = fn()
            if elapsed > 0 and events / elapsed > best_rate:
                best_rate = events / elapsed
                best = (events, elapsed)
        assert best is not None
        metrics[f"{name}_events_per_sec"] = round(best_rate, 1)
        agg_events += best[0]
        agg_elapsed += best[1]
    metrics["events_per_sec"] = round(agg_events / agg_elapsed, 1)
    return metrics
