"""Name-cache microbenchmarks: the fetch path at memory speed.

The paper's central latency argument is that a cmsd answers cached
lookups without leaving memory (§III-A); these scenarios measure our
reproduction's cost per operation on exactly those paths:

* ``lookup_hit``  — warm fetches, no corrections pending (the common case);
* ``insert``      — miss + add, including table growth and window chaining;
* ``correct``     — fetches that must apply Figure-3 corrections through
  the per-window ``V_wc`` memo after membership churn;
* ``live_count``  — the population probe observability reads every tick;
* ``tick``        — window-clock advance + background removal with
  observability attached (the ``cache_population`` gauge update path).
"""

from __future__ import annotations

import time

from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.obs import Observability

from perf import best_rate


def _membership(n_servers: int = 16) -> ClusterMembership:
    m = ClusterMembership()
    for i in range(n_servers):
        m.login(f"srv-{i:02d}", ["/store"])
    return m


def _paths(n: int) -> list[str]:
    return [f"/store/d{i % 17}/run{i % 251}/f{i:06d}.root" for i in range(n)]


def run_lookup_hit(n_paths: int = 5_000, n_lookups: int = 60_000) -> float:
    cache = NameCache(_membership(), lifetime=64.0)
    paths = _paths(n_paths)
    for p in paths:
        cache.lookup(p, now=0.0)

    def fetch() -> int:
        n = len(paths)
        for i in range(n_lookups):
            cache.lookup(paths[i % n], now=1.0)
        return n_lookups

    return best_rate(fetch)


def run_insert(n_paths: int = 25_000) -> float:
    paths = _paths(n_paths)

    def insert() -> int:
        cache = NameCache(_membership(), lifetime=64.0)
        for p in paths:
            cache.lookup(p, now=0.0)
        return n_paths

    return best_rate(insert)


def run_correct(n_paths: int = 4_000, rounds: int = 6) -> float:
    """Corrected fetches: each round logs in a server then re-fetches all."""
    paths = _paths(n_paths)

    def correct() -> int:
        cache = NameCache(_membership(), lifetime=64.0)
        for p in paths:
            cache.lookup(p, now=0.0)
        for r in range(rounds):
            cache.membership.login(f"late-{r}", ["/store"])
            for p in paths:
                cache.lookup(p, now=1.0 + r)
        return n_paths * rounds

    return best_rate(correct)


def run_live_count(n_paths: int = 20_000, n_calls: int = 50_000) -> float:
    cache = NameCache(_membership(), lifetime=64.0)
    for p in _paths(n_paths):
        cache.lookup(p, now=0.0)

    def probe() -> int:
        total = 0
        for _ in range(n_calls):
            total += cache.live_count()
        assert total  # keep the loop honest
        return n_calls

    return best_rate(probe)


def run_tick(n_paths: int = 20_000, n_ticks: int = 512) -> float:
    """Window ticks + background removal over a populated, observed cache."""
    obs = Observability()
    paths = _paths(n_paths)

    def ticks() -> int:
        cache = NameCache(_membership(), lifetime=64.0, obs=obs, node="bench")
        for i, p in enumerate(paths):
            cache.lookup(p, now=0.0)
            if i % (n_paths // 32) == 0:
                cache.tick()  # spread objects across windows
        for _ in range(n_ticks):
            cache.tick()
            cache.run_background_removal()
        return n_ticks

    return best_rate(ticks)


def run_suite(*, scale: int = 1, repeats: int = 3) -> dict[str, float]:
    del repeats  # each scenario already does best-of internally
    return {
        "lookup_hit_per_sec": round(run_lookup_hit(5_000, 60_000 // scale), 1),
        "insert_per_sec": round(run_insert(25_000 // scale), 1),
        "correct_per_sec": round(run_correct(4_000 // scale, 6), 1),
        # n_calls is never scaled down: the probe is O(1), and a timed
        # region much under a millisecond just measures timer jitter.
        "live_count_per_sec": round(run_live_count(20_000 // scale, 50_000), 1),
        "tick_per_sec": round(run_tick(20_000 // scale, 512 // scale), 1),
    }
