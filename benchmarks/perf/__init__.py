"""The tracked performance-benchmark suite.

Unlike the ``bench_e*`` experiment benches (which reproduce the paper's
*simulated-time* claims), this package measures the reproduction's own
*wall-clock* hot paths — the discrete-event kernel, the name-cache fetch
path, and end-to-end E1 resolution — and appends the numbers to the
``BENCH_kernel.json`` / ``BENCH_cache.json`` trajectory files at the repo
root, so every PR can see what it did to throughput.

Conventions (``scripts/check_perf.py`` relies on them):

* metrics ending in ``_per_sec`` are wall-clock throughput — higher is
  better, machine-dependent, compared after normalizing by the entry's
  ``calibration`` rate;
* metrics ending in ``_us`` are *simulated-time* latencies — lower is
  better, machine-independent, compared raw;
* every run stamps a ``calibration`` rate: a fixed pure-Python spin loop
  whose speed tracks the host's single-thread Python performance, so a
  baseline recorded on one machine can gate a run on another.

Run the whole suite with ``python benchmarks/perf/run.py`` (see
``docs/performance.md``).
"""

from __future__ import annotations

import time

__all__ = ["best_rate", "calibrate", "QUICK"]

#: Scale factor applied to workload sizes in --quick mode (CI smoke).
QUICK = 4


def best_rate(fn, *, repeats: int = 3) -> float:
    """Best-of-*repeats* throughput of *fn* in operations per second.

    *fn* runs the workload from scratch and returns the number of
    operations it performed.  Best-of (not mean) is the standard
    microbenchmark estimator: the minimum-interference run is the closest
    to the code's true cost, and it is far more stable under CI noise.
    """
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


def calibrate(*, n: int = 2_000_000) -> float:
    """Host-speed reference: iterations/sec of a fixed arithmetic loop.

    Used by ``scripts/check_perf.py`` to compare throughput entries
    recorded on different machines: ``metric / calibration`` is a rough
    machine-independent cost ratio.
    """

    def spin() -> int:
        acc = 0
        for i in range(n):
            acc += i & 7
        return n

    return best_rate(spin, repeats=3)
