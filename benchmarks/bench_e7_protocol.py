"""E7 — §III-B: request-rarely-respond message efficiency.

Paper claim reproduced here: the non-response-as-negative protocol "is
provably the most efficient way of maintaining location information in the
event that less than half the servers have the file".

Two measurements:

* the closed-form sweep: messages per resolution vs holder fraction for
  rarely-respond (n + h·n) and always-respond (2n), with the savings
  margin at the paper's <50% criterion;
* a measured sweep on the simulated cluster: populate a file on k of 16
  servers, flood once, count actual control-plane messages — they must
  match the closed form exactly.
"""

from repro.baselines.always_respond import always_respond_messages, rarely_respond_messages
from repro.cluster import ScallaCluster, ScallaConfig

from reporting import record

N = 64


def test_closed_form_sweep(benchmark):
    def run():
        rows = []
        for holders in (0, 1, 4, 16, 32, 48, 64):
            rare = rarely_respond_messages(N, holders)
            always = always_respond_messages(N, holders)
            saving = (always.total - rare.total) / always.total
            rows.append(
                (f"{holders}/{N}", rare.total, always.total, f"{saving:.0%}")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "E7",
        "messages per resolution: rarely-respond vs always-respond (64 servers)",
        ["holders", "rarely-respond", "always-respond", "saving"],
        rows,
        notes=(
            "Saving >= 25% whenever fewer than half the servers hold the "
            "file (the paper's criterion); the designs only meet at 100% "
            "replication."
        ),
    )
    # The paper's criterion, asserted over the whole <1/2 range:
    for holders in range(N // 2):
        rare = rarely_respond_messages(N, holders).total
        always = always_respond_messages(N, holders).total
        assert (always - rare) / always >= 0.25


def test_measured_messages_match_model(benchmark):
    """Count real control messages in the simulated cluster."""

    def run():
        rows = []
        n = 16
        for holders in (1, 4, 8, 15):
            cluster = ScallaCluster(n, config=ScallaConfig(seed=73))
            for s in cluster.servers[:holders]:
                cluster.place("/store/probe.root", s, size=64)
            cluster.settle()
            mgr = cluster.manager_cmsd()
            q0, h0 = mgr.stats.queries_sent, mgr.stats.haves_received
            cluster.run_process(cluster.client().locate("/store/probe.root"), limit=60)
            cluster.settle(0.01)  # let the stragglers' responses land
            queries = mgr.stats.queries_sent - q0
            responses = mgr.stats.haves_received - h0
            model = rarely_respond_messages(n, holders)
            rows.append((f"{holders}/{n}", queries, responses, model.queries, model.responses))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, q, r, mq, mr in rows:
        assert q == mq, f"{label}: {q} queries != model {mq}"
        assert r == mr, f"{label}: {r} responses != model {mr}"
    record(
        "E7-measured",
        "measured control messages per cold resolution (16 servers)",
        ["holders", "queries sent", "responses received", "model queries", "model responses"],
        rows,
        notes="Only holders answer; silence from the rest is the negative response.",
    )
