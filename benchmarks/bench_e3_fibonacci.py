"""E3 — footnote 4: CRC32 mod Fibonacci vs power-of-two tables (ablation).

Paper claim: "Despite the uniform distribution of CRC32, we found much
higher collision rates with power-of-two sized tables compared to
Fibonacci-sized."

Reproduction finding (the honest version, recorded in EXPERIMENTS.md):

* with zlib's true CRC32 the claim does NOT reproduce — CRC32's low bits
  are well mixed and the power-of-two table performs on par;
* the claim reproduces dramatically once the hash has correlated low bits,
  which classic accumulate-style string hashes (the lineage of the era's
  production hash functions) do on names sharing a constant ``.root``
  suffix;
* the Fibonacci modulus is the robust choice: it is within noise of ideal
  for *every* hash tried, i.e. it makes the table insensitive to hash
  quality — which is the engineering property that mattered.

Cost metric: expected probes per successful lookup = sum(chain^2)/n.
"""

from collections import Counter

from repro.core.crc32 import hash_name as crc32
from repro.core.hashes import java31, sdbm, shift_add
from repro.workloads.namegen import hep_paths, sequential_paths

from reporting import record

import random

N = 20_000
FIB_SIZE = 28657  # Fibonacci ~= N/0.7
POW2_SIZE = 32768  # 2^15, the neighbouring power of two


def chain_cost(hashes, modulus, *, pow2):
    chains = Counter((h & (modulus - 1)) if pow2 else (h % modulus) for h in hashes)
    return sum(c * c for c in chains.values()) / len(hashes)


def max_chain(hashes, modulus, *, pow2):
    chains = Counter((h & (modulus - 1)) if pow2 else (h % modulus) for h in hashes)
    return max(chains.values())


HASHES = [("crc32", crc32), ("java31", java31), ("sdbm", sdbm), ("shift_add", shift_add)]
FAMILIES = [
    ("sequential", sequential_paths(N)),
    ("hep", hep_paths(N, rng=random.Random(3), runs=100_000)),
]


def test_collision_sweep(benchmark):
    def run():
        rows = []
        for fam_name, paths in FAMILIES:
            for hname, fn in HASHES:
                hs = [fn(p) for p in paths]
                fib = chain_cost(hs, FIB_SIZE, pow2=False)
                p2 = chain_cost(hs, POW2_SIZE, pow2=True)
                rows.append(
                    (
                        fam_name,
                        hname,
                        f"{fib:.2f}",
                        f"{p2:.2f}",
                        f"{p2 / fib:.1f}x",
                        max_chain(hs, FIB_SIZE, pow2=False),
                        max_chain(hs, POW2_SIZE, pow2=True),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "E3",
        "expected probes per lookup: Fibonacci vs power-of-two, by hash",
        ["names", "hash", "fib cost", "pow2 cost", "pow2/fib", "fib max chain", "pow2 max chain"],
        rows,
        notes=(
            "Footnote 4 reproduces for low-bit-correlated hashes (sdbm, "
            "shift_add: pow2 collapses, Fibonacci stays ideal) but NOT for "
            "zlib CRC32, whose low bits are already uniform.  Fibonacci "
            "sizing is the hash-robust choice."
        ),
    )

    by = {(r[0], r[1]): float(r[4][:-1]) for r in rows}
    # The paper's claim, on the hash family where it holds:
    assert by[("sequential", "sdbm")] > 2.0
    assert by[("sequential", "shift_add")] > 20.0
    # The negative result: with true CRC32 pow2 is within 15% of Fibonacci.
    assert by[("sequential", "crc32")] < 1.15
    assert by[("hep", "crc32")] < 1.15


def test_fibonacci_near_ideal_for_all_hashes(benchmark):
    """Fibonacci cost ~ ideal (1 + load) for every hash and family."""

    def run():
        load = N / FIB_SIZE
        ideal = 1 + load
        worst = 0.0
        for _fam, paths in FAMILIES:
            # shift_add excluded: it maps many *names* to one 32-bit value
            # outright, which no table sizing can repair (its Fibonacci max
            # chain in the sweep above equals its hash-collision count).
            for _hname, fn in HASHES:
                if fn is shift_add:
                    continue
                hs = [fn(p) for p in paths]
                worst = max(worst, chain_cost(hs, FIB_SIZE, pow2=False) / ideal)
        return worst, ideal

    worst, ideal = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst < 1.25, f"Fibonacci cost {worst:.2f}x ideal"
    record(
        "E3-ideal",
        "Fibonacci table vs ideal random hashing (injective-ish hashes)",
        ["ideal cost (1+load)", "worst observed / ideal"],
        [(f"{ideal:.2f}", f"{worst:.2f}x")],
        notes=(
            "Excludes shift_add, whose 32-bit outputs themselves collide "
            "(identical hash values) — unfixable by any modulus."
        ),
    )
