"""E8 — §III-B2: parallel prepare amortizes the create/stage full delay.

Paper claim reproduced here: "While each background look-up suffers a full
delay; externally, at most a single full delay is encountered by the
client" — versus one full delay *per file* for naive sequential creates.

Sweep N (files per batch); measure wall time of the create batch with and
without a preceding prepare.  Shape: without prepare the cost is ~N × 5 s;
with prepare it is ~5 s flat.
"""

from repro.cluster import ScallaCluster, ScallaConfig

from reporting import record

BATCHES = (1, 4, 8, 16)
FULL_DELAY = 5.0


def run_batch(n_files: int, *, use_prepare: bool) -> float:
    cluster = ScallaCluster(8, config=ScallaConfig(seed=81))
    cluster.settle()
    client = cluster.client()
    paths = [f"/store/bulk/f{i}.root" for i in range(n_files)]

    def scenario():
        t0 = cluster.sim.now
        if use_prepare:
            yield from client.prepare(paths)
        for p in paths:
            res = yield from client.open(p, mode="w", create=True)
            yield from client.close(res)
        return cluster.sim.now - t0

    return cluster.run_process(scenario(), limit=3600)


def test_prepare_amortizes_creates(benchmark):
    def run():
        rows = []
        for n in BATCHES:
            naive = run_batch(n, use_prepare=False)
            prepared = run_batch(n, use_prepare=True)
            rows.append((n, naive, prepared, naive / prepared))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, naive, prepared, _speedup in rows:
        # Naive pays one full delay per file...
        assert naive >= n * FULL_DELAY
        # ...prepared pays a single full delay, plus protocol epsilon.
        assert prepared < 2 * FULL_DELAY, f"N={n}: prepared batch took {prepared:.1f}s"
    # The speedup grows ~linearly in batch size.
    assert rows[-1][3] > rows[0][3] * (BATCHES[-1] / BATCHES[0]) * 0.5
    record(
        "E8",
        "bulk file creation: sequential full delays vs parallel prepare",
        ["files", "naive (s)", "with prepare (s)", "speedup"],
        [(n, f"{a:.2f}", f"{b:.2f}", f"{s:.1f}x") for n, a, b, s in rows],
        notes=(
            "Prepare floods all look-ups in the background; externally the "
            "client sees at most one 5 s delay regardless of batch size."
        ),
    )
