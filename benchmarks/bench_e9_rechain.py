"""E9 — §III-C1: deferred re-chaining is linear where eager is quadratic.

Paper claim reproduced here: "By deferring the re-chaining operation, a
single linear-cost task can re-chain all objects whose T_a has changed,
where re-chaining each object individually results in a more quadratic
cost."

Workload: R hot objects chained into one window are all refreshed (the
paper's cache-refresh path renews T_a).  The eager design removes each
object from its old chain immediately — every removal scans that chain, so
one refresh round costs ~R²/2 chain steps.  The deferred design makes the
refresh a field write and re-chains everything in the next sweep of the old
window — R steps total, once per L_t.

Metric: chain positions visited (machine-independent) plus wall time, as R
grows 8x.
"""

import time

from repro.baselines.naive_eviction import EagerWindows
from repro.core.crc32 import hash_name
from repro.core.eviction import WINDOW_COUNT, EvictionWindows
from repro.core.location import LocationObject

from reporting import record

HOT_SETS = (500, 2_000, 4_000)


def make(key):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


def run_eager(r: int) -> tuple[int, float]:
    w = EagerWindows()
    objs = [make(f"/hot{i}") for i in range(r)]
    for o in objs:
        w.add(o)
    w.tick()  # move the clock off window 0
    t0 = time.perf_counter()
    for o in objs:
        w.refresh(o)  # scans window-0's chain to unlink, every time
    return w.scan_steps, time.perf_counter() - t0


def run_deferred(r: int) -> tuple[int, float]:
    w = EvictionWindows()
    objs = [make(f"/hot{i}") for i in range(r)]
    for o in objs:
        w.add(o)
    w.tick()
    t0 = time.perf_counter()
    for o in objs:
        w.refresh(o)  # O(1): stamps the new T_a, nothing moves
    # The re-chaining happens in the single linear sweep when the clock
    # returns to window 0 (63 empty ticks later).
    rechained = 0
    swept = 0
    for _ in range(WINDOW_COUNT - 1):
        result = w.tick()
        rechained += result.rechained
        swept += result.swept
    elapsed = time.perf_counter() - t0
    assert rechained == r, f"sweep rechained {rechained} != {r}"
    return swept, elapsed


def test_eager_rechaining_is_quadratic_deferred_linear(benchmark):
    def run():
        rows = []
        for r in HOT_SETS:
            eager_steps, eager_time = run_eager(r)
            deferred_steps, deferred_time = run_deferred(r)
            rows.append((r, eager_steps, deferred_steps, eager_time, deferred_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "E9",
        "chain-scan work to refresh R hot objects: eager vs deferred re-chaining",
        ["hot objects R", "eager scan steps", "deferred scan steps", "eager wall (s)", "deferred wall (s)"],
        [(r, es, ds, f"{et:.4f}", f"{dt:.4f}") for r, es, ds, et, dt in rows],
        notes=(
            "Eager steps ~ R^2/2 (each refresh walks the chain to unlink); "
            "deferred steps = R exactly (one linear sweep at window "
            "recycle).  The paper's 'more quadratic cost', measured."
        ),
    )
    r0, e0, d0 = rows[0][0], rows[0][1], rows[0][2]
    r2, e2, d2 = rows[-1][0], rows[-1][1], rows[-1][2]
    size_ratio = r2 / r0  # 8x
    assert e2 / e0 > size_ratio * 4, "eager work did not grow superlinearly"
    assert d2 / d0 <= size_ratio * 1.1, "deferred work grew superlinearly"
    assert d2 == r2  # exactly linear: one step per hot object


def test_deferred_refresh_op_is_constant_time(benchmark):
    """The refresh operation itself: a field write, ~constant nanoseconds."""
    w = EvictionWindows()
    objs = [make(f"/hot{i}") for i in range(10_000)]
    for o in objs:
        w.add(o)
    w.tick()

    def refresh_all():
        for o in objs:
            w.refresh(o)

    benchmark(refresh_all)
