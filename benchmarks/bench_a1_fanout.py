"""A1 (ablation) — footnote 2: "The choice of cluster size is crucial."

The paper fixes the fanout at 64 and cites organizational-design work for
why.  This ablation makes the trade-off measurable by resolving files in a
64-server cluster arranged at fanouts 4 / 8 / 64:

* **latency** — each extra level adds a redirect hop and a query hop, so
  cached and cold locate latency grow with depth (favoring wide trees);
* **total flood traffic** — an unknown file floods the *whole* tree
  whatever its shape (every server must be asked), and interior nodes add
  their own query messages, so deep trees send slightly *more* total
  messages (84 at fanout 4 vs 64 flat for 64 servers);
* **per-node burst** — what trees actually buy: no single cmsd ever sends
  more than ``fanout`` queries per lookup, so the manager's burst drops
  from 64 to 4 as the tree deepens — the load-spreading that lets the
  design scale to thousands of servers without any node melting;
* **vector width** — fanout is capped at 64 by the one-machine-word vectors
  that make every cache operation O(1) (§III-A1).

The paper's 64 sits at the corner: the widest (lowest-latency) tree whose
per-node state still fits one machine word.  Deeper trees trade latency for
per-node burst relief — worthwhile only beyond 64 servers, exactly where
the design forces supervisors anyway.
"""

from repro.cluster import ScallaCluster, ScallaConfig

from reporting import record, us

N_SERVERS = 64
FANOUTS = (4, 8, 64)


def run_fanout(fanout: int):
    cluster = ScallaCluster(N_SERVERS, config=ScallaConfig(seed=141, fanout=fanout))
    cluster.populate(["/store/probe.root"], size=64)
    cluster.settle()
    depth = cluster.topology.depth()

    def total_queries():
        return sum(
            node.cmsd.stats.queries_sent
            for node in cluster.nodes.values()
            if node.cmsd is not None and node.cmsd.stats is not None
        )

    def max_burst():
        return max(
            node.cmsd.stats.queries_sent
            for node in cluster.nodes.values()
            if node.cmsd is not None and node.cmsd.stats is not None
        )

    q0 = total_queries()
    client = cluster.client()
    t0 = cluster.sim.now

    def cold():
        yield from client.locate("/store/probe.root")
        return cluster.sim.now - t0

    cold_latency = cluster.run_process(cold(), limit=60)
    cluster.settle(0.01)  # let straggler responses land
    flood_queries = total_queries() - q0
    burst = max_burst()

    t1 = cluster.sim.now

    def warm():
        yield from client.locate("/store/probe.root")
        return cluster.sim.now - t1

    warm_latency = cluster.run_process(warm(), limit=60)
    return depth, cold_latency, warm_latency, flood_queries, burst


def test_fanout_tradeoff(benchmark):
    def run():
        return [(f, *run_fanout(f)) for f in FANOUTS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "A1",
        f"fanout trade-off resolving one file in a {N_SERVERS}-server cluster",
        ["fanout", "tree depth", "cold locate", "warm locate", "total flood msgs", "max per-node burst"],
        [(f, d, us(c), us(w), q, b) for f, d, c, w, q, b in rows],
        notes=(
            "Latency and total traffic favor wide-and-flat; the per-node "
            "burst (what actually limits scale) favors deep-and-narrow. "
            "64 is the widest tree whose per-node state fits one machine "
            "word — the paper's crucial choice (footnote 2), measured."
        ),
    )
    by = {f: (d, c, w, q, b) for f, d, c, w, q, b in rows}
    # Latency strictly improves with fanout (fewer levels)...
    assert by[64][1] < by[8][1] < by[4][1]
    # ...total flood traffic also mildly improves (fewer interior nodes)...
    assert by[64][3] <= by[8][3] <= by[4][3]
    # ...but the per-node burst is exactly the fanout: the deep tree's win.
    assert by[4][4] == 4 and by[8][4] == 8 and by[64][4] == 64
    # Depths are as the closed form predicts for 64 servers.
    assert by[64][0] == 1 and by[8][0] == 2 and by[4][0] == 3
