"""E1 — §II-B5: redirection latency, cached vs uncached, per tree level.

Paper claims reproduced here (simulated time; latency parameters set to the
paper's hardware: 10 µs per LAN hop, 5 µs manager CPU per message, 80 µs
server-side query handling so a query round trip is ~100 µs):

* "requests for files whose information has been cached require less than
  50us per tree level";
* "requests for unknown files incur an additional latency equal to the time
  it takes a leaf node to respond; increasing the redirection time to about
  150us".

We measure the *locate* portion (first request to final redirect, excluding
the data-plane open) for cold and warm caches at tree depths 1..3.
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.core.models import PaperClaims

from reporting import record, record_snapshot, us

CLAIMS = PaperClaims()


def locate_latency(cluster, path):
    """Time one locate (resolution only, no open) through the cluster."""
    client = cluster.client()
    t0 = cluster.sim.now

    def probe():
        yield from client.locate(path)
        return cluster.sim.now - t0

    return cluster.run_process(probe(), limit=60)


def run_depth(n, fanout, seed=51):
    cluster = ScallaCluster(
        n, config=ScallaConfig(seed=seed, fanout=fanout, observability=True)
    )
    cluster.populate(["/store/probe.root"], size=64)
    cluster.settle()
    depth = cluster.topology.depth()
    cold = locate_latency(cluster, "/store/probe.root")
    warm = locate_latency(cluster, "/store/probe.root")
    return depth, cold, warm, cluster


def test_cached_latency_under_50us_per_level(benchmark):
    def run():
        return [run_depth(4, 64), run_depth(16, 4), run_depth(8, 2)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for depth, cold, warm, _cluster in results:
        per_level = warm / depth
        rows.append((depth, us(cold), us(warm), us(per_level)))
        assert per_level < CLAIMS.cached_latency_per_level, (
            f"depth {depth}: cached {per_level * 1e6:.1f}us/level >= 50us"
        )
    # Observability snapshot from the deepest run: one cold + one warm
    # locate, so the derived hit ratio and message fanout are inspectable.
    deepest = max(results, key=lambda r: r[0])[3]
    snap = deepest.obs_snapshot(extra={"experiment": "E1", "depth": max(r[0] for r in results)})
    d = snap["derived"]
    assert d["resolutions"] == 2  # cold + warm locate
    assert 0.0 < d["cache_hit_ratio"] <= 1.0
    assert d["messages_per_resolution"] > 0
    record_snapshot("E1", snap)
    record(
        "E1",
        "locate latency: cold vs warm cache by tree depth",
        ["tree depth", "cold locate", "warm locate", "warm per level"],
        rows,
        notes=(
            "Paper: <50us per level cached, ~150us uncached. "
            "Parameters: 10us/hop wire, 5us manager CPU, 80us server query handling."
        ),
    )


def test_uncached_latency_near_150us(benchmark):
    """Cold locate at depth 1 = cached cost + one leaf query round trip."""

    def run():
        return run_depth(64, 64)

    depth, cold, warm, _cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    assert depth == 1
    # ~150 us claim: accept the band the paper's "depending on the network
    # speed" hedges — 100..250 us.
    assert 100e-6 <= cold <= 250e-6, f"cold locate {cold * 1e6:.1f}us outside paper band"
    extra = cold - warm
    # The uncached premium is about one server response time (~100 us).
    assert 0.5 * CLAIMS.server_response_time <= extra <= 2.0 * CLAIMS.server_response_time
    record(
        "E1-uncached",
        "uncached premium = leaf response time (64-server flat cluster)",
        ["cold locate", "warm locate", "uncached premium", "paper's server response"],
        [(us(cold), us(warm), us(extra), us(CLAIMS.server_response_time))],
    )


def test_latency_additive_in_depth(benchmark):
    """Warm locate grows linearly with depth — no superlinear term."""

    def run():
        return [run_depth(4, 64), run_depth(16, 4), run_depth(8, 2), run_depth(16, 2)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_depth = {d: w for d, _c, w, _cl in results}
    increments = [
        by_depth[d + 1] - by_depth[d] for d in sorted(by_depth) if d + 1 in by_depth
    ]
    rows = [(d, us(by_depth[d])) for d in sorted(by_depth)]
    record(
        "E1-depth",
        "warm locate latency vs depth (additive per level)",
        ["depth", "warm locate"],
        rows,
    )
    for inc in increments:
        assert 0 < inc < CLAIMS.cached_latency_per_level
    # Increments are roughly equal: linear in depth.
    assert max(increments) < min(increments) * 2.5
