"""E13 — §IV-B: Qserv distributed dispatch over the Scalla file abstraction.

Paper claims reproduced here:

* masters reach "a worker hosting that particular partition" purely by
  opening partition paths — no worker configuration exists, and the first
  query to each chunk pays one Scalla locate that later queries reuse;
* scatter/gather scales: a full-catalog query's latency tracks the slowest
  chunk, not the chunk count (shared-nothing parallelism);
* "simplifies fault-tolerance, replication, and load balancing": with a
  worker down, re-dispatch through Scalla's mapping completes the query at
  one extra locate's cost.
"""

import random

from repro.cluster import ScallaCluster, ScallaConfig
from repro.qserv import (
    Query,
    QservMaster,
    QservWorker,
    SkyPartitioner,
    make_catalog_chunk,
)

from reporting import record, ms


def build(n_workers=8, ra=8, dec=4, rows=200, copies=2, seed=131):
    cluster = ScallaCluster(
        n_workers,
        config=ScallaConfig(
            seed=seed,
            exports=("/qserv",),
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
        ),
    )
    part = SkyPartitioner(ra_stripes=ra, dec_stripes=dec)
    rng = random.Random(1)
    workers = {}
    for i, p in enumerate(part.all_chunks()):
        table = make_catalog_chunk(p, partitioner=part, rows=rows, rng=rng, id_base=p * 10_000)
        for c in range(copies):
            server = cluster.servers[(i + c) % n_workers]
            if server not in workers:
                workers[server] = QservWorker(cluster.node(server))
            workers[server].host_chunk(p, table, cnsd=cluster.cnsd)
    cluster.settle()
    master = QservMaster(cluster.client("qserv-master"))
    return cluster, part, master, workers


def test_query_latency_tracks_slowest_chunk_not_count(benchmark):
    def run():
        rows = []
        for n_chunks in (1, 4, 16, 32):
            cluster, part, master, _w = build()
            chunks = part.all_chunks()[:n_chunks]
            outcome = cluster.run_process(
                master.run_query(Query(kind="count"), chunks), limit=240
            )
            slowest = max(outcome.per_chunk_latency.values())
            rows.append((n_chunks, outcome.duration, slowest))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "E13",
        "distributed query latency vs chunk count (scatter/gather)",
        ["chunks", "query latency", "slowest chunk"],
        [(n, ms(d), ms(s)) for n, d, s in rows],
        notes="Latency is pinned to the slowest chunk; 32 chunks cost ~1 chunk's time.",
    )
    one_chunk = rows[0][1]
    all_chunks = rows[-1][1]
    # 32x the work, far less than 32x the time (demand < 4x).
    assert all_chunks < one_chunk * 4
    for _n, duration, slowest in rows:
        assert duration < slowest * 3


def test_channel_discovery_amortized(benchmark):
    """First touch of a chunk pays a Scalla locate; repeats are direct."""

    def run():
        cluster, part, master, _w = build()
        chunks = part.all_chunks()[:8]
        first = cluster.run_process(
            master.run_query(Query(kind="count"), chunks), limit=240
        )
        locates_after_first = master.client.stats.locates
        second = cluster.run_process(
            master.run_query(Query(kind="count"), chunks), limit=240
        )
        return first.duration, second.duration, locates_after_first, master.client.stats.locates

    d1, d2, loc1, loc2 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert loc2 == loc1  # zero new locates on the repeat query
    assert d2 <= d1
    record(
        "E13-channels",
        "channel discovery is one-time (8 chunks)",
        ["query", "latency", "cumulative locates"],
        [("first (cold channels)", ms(d1), loc1), ("second (cached channels)", ms(d2), loc2)],
        notes="'Scalla guarantees a communications channel' — looked up once, reused after.",
    )


def test_worker_loss_costs_one_redispatch(benchmark):
    def run():
        cluster, part, master, _w = build()
        healthy = cluster.run_process(
            master.run_query(Query(kind="count"), [0]), limit=240
        )
        victim = master.channels[0]
        cluster.node(victim).crash()
        cluster.settle(1.0)
        recovered = cluster.run_process(
            master.run_query(Query(kind="count"), [0]), limit=600
        )
        return healthy, recovered, victim, master.channels[0]

    healthy, recovered, victim, replacement = benchmark.pedantic(run, rounds=1, iterations=1)
    assert recovered.result.count == healthy.result.count
    assert replacement != victim
    assert recovered.redispatches == 1
    record(
        "E13-failover",
        "worker loss mid-campaign: re-dispatch through Scalla's mapping",
        ["phase", "latency", "count", "re-dispatches"],
        [
            ("healthy", ms(healthy.duration), healthy.result.count, 0),
            (f"after {victim} crash", ms(recovered.duration), recovered.result.count, recovered.redispatches),
        ],
        notes="No worker list anywhere: the replica was found by re-opening the chunk path.",
    )
