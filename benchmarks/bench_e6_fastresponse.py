"""E6 — §III-B: the fast response queue vs the conservative full delay.

Paper claims reproduced here (simulated time):

* with the fast response queue, a cold lookup of an *existing* file is
  answered in about one server response time (~100-150 µs measured),
  "without risking a missed response";
* without it (ablation: ``fast_response=False``), the same lookup costs the
  full conservative delay (~5 s) — a ~30,000x latency gap;
* non-existent files cost the full delay either way (silence is the only
  negative signal);
* the 133 ms clocking bound comfortably covers even heavy-tailed server
  response times (log-normal tail test: zero missed responses).
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.latency import LogNormal
from repro.sim.monitor import Histogram

from reporting import record, record_snapshot, us

N_FILES = 50


def run_cluster(fast_response: bool, *, server_latency=None):
    cfg = ScallaConfig(seed=71, fast_response=fast_response, observability=True)
    if server_latency is not None:
        cfg.server_service = server_latency
    cluster = ScallaCluster(16, config=cfg)
    paths = [f"/store/e6/f{i}.root" for i in range(N_FILES)]
    cluster.populate(paths, size=256)
    cluster.settle()
    lat = Histogram()
    client = cluster.client()

    def probe():
        for p in paths:
            t0 = cluster.sim.now
            yield from client.locate(p)
            lat.record(cluster.sim.now - t0)

    cluster.run_process(probe(), limit=1000)
    return cluster, lat.summary()


def test_fast_response_vs_full_delay(benchmark):
    def run():
        c1, with_queue = run_cluster(True)
        _c2, without = run_cluster(False)
        snap = c1.obs_snapshot(extra={"experiment": "E6", "design": "fast-response"})
        return with_queue, without, snap

    with_queue, without, snap = benchmark.pedantic(run, rounds=1, iterations=1)
    # The snapshot carries the acceptance metrics: queue-wait percentiles
    # from the manager's fast response queue, hit ratio, message fanout.
    d = snap["derived"]
    assert d["resolutions"] == N_FILES
    assert d["queue_wait"]["count"] > 0, "no anchors waited — queue never engaged?"
    assert 0 < d["queue_wait"]["p50"] <= d["queue_wait"]["p99"] < 0.133
    assert d["fast_release_ratio"] == 1.0, "some waiters expired instead of releasing"
    assert d["messages_per_resolution"] > 0
    record_snapshot("E6", snap)
    record(
        "E6",
        "cold locate of existing files: fast response queue vs full delay",
        ["design", "mean", "p95", "max"],
        [
            ("fast response queue (paper)", us(with_queue.mean), us(with_queue.p95), us(with_queue.maximum)),
            ("full-delay only (ablation)", us(without.mean), us(without.p95), us(without.maximum)),
            ("speedup", f"{without.mean / with_queue.mean:.0f}x", "", ""),
        ],
        notes=(
            "Paper: ~100us server responses make the 5s conservative wait "
            "unnecessary for files that exist; the queue recovers 4 orders "
            "of magnitude."
        ),
    )
    # With the queue: about one query round trip (well under 1 ms).
    assert with_queue.mean < 1e-3
    # Without: every cold locate eats the full 5 s delay.
    assert without.mean > 4.9
    assert without.mean / with_queue.mean > 1000


def test_nonexistent_files_cost_full_delay_regardless(benchmark):
    def run():
        cluster = ScallaCluster(8, config=ScallaConfig(seed=72))
        cluster.populate(["/store/real.root"], size=64)
        cluster.settle()
        client = cluster.client()
        t0 = cluster.sim.now

        def probe():
            from repro.cluster.client import NoSuchFile

            try:
                yield from client.locate("/store/ghost.root")
            except NoSuchFile:
                return cluster.sim.now - t0
            raise AssertionError("ghost file resolved?!")

        return cluster.run_process(probe(), limit=120), cluster.config.full_delay

    elapsed, full_delay = benchmark.pedantic(run, rounds=1, iterations=1)
    assert elapsed >= full_delay
    record(
        "E6-negative",
        "non-existence verdict requires the full conservative wait",
        ["full delay configured", "measured time to NotFound"],
        [(f"{full_delay:.1f}s", f"{elapsed:.2f}s")],
        notes="Silence is the only negative signal; no queue can shorten it.",
    )


def test_133ms_window_is_lan_scoped(benchmark):
    """Extension finding: the 133 ms constant assumes LAN response times.

    With an 80 ms one-way WAN link between manager and servers (a
    transatlantic federation, §IV-A), query responses arrive after ~160 ms
    — beyond the window — so every cold lookup of an *existing* file
    degrades to the full 5 s wait.  Raising the window to cover the slowest
    site restores ~160 ms lookups.  The constant is deployment-scoped, not
    universal.
    """

    def run_wan(period: float) -> float:
        from repro.cluster.ids import cmsd_host, xrootd_host
        from repro.sim.latency import Uniform

        cluster = ScallaCluster(4, config=ScallaConfig(seed=74, fast_period=period))
        net = cluster.network
        for server in cluster.servers:
            net.set_host_site(cmsd_host(server), "remote")
            net.set_host_site(xrootd_host(server), "remote")
        net.set_host_site(cmsd_host(cluster.managers[0]), "hq")
        net.set_site_latency("hq", "remote", Uniform(78e-3, 82e-3))
        cluster.populate(["/store/wan.root"], size=64)
        cluster.settle(0.5)
        client = cluster.client()
        net.set_host_site(client.host.name, "hq")
        t0 = cluster.sim.now

        def probe():
            yield from client.locate("/store/wan.root")
            return cluster.sim.now - t0

        return cluster.run_process(probe(), limit=120)

    def run():
        return run_wan(0.133), run_wan(0.5)

    lan_window, wan_window = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lan_window > 5.0  # degraded to the full delay
    assert wan_window < 0.5  # one WAN query round trip
    record(
        "E6-wan",
        "cold locate over an 80ms WAN link, by fast-response window",
        ["window", "cold locate"],
        [("133ms (paper default)", f"{lan_window:.2f}s"), ("500ms (WAN-sized)", f"{wan_window * 1e3:.0f}ms")],
        notes=(
            "Responses landing after the window are treated as absent and "
            "the client eats the 5 s wait: the 133 ms constant must be "
            "sized to the slowest site's response time in WAN federations."
        ),
    )


def test_133ms_bound_covers_heavy_tails(benchmark):
    """Log-normal server response (median 100us, sigma 1.0 — p99 ~1ms):
    every request must still be satisfied by the queue, none falling back
    to the full delay."""

    def run():
        cluster, summary = run_cluster(
            True, server_latency=LogNormal(median=100e-6, sigma=1.0)
        )
        mgr = cluster.manager_cmsd()
        return summary, mgr.rq.fast_responses, mgr.rq.timeouts

    summary, fast, timeouts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert timeouts == 0, f"{timeouts} requests missed the 133ms window"
    assert summary.maximum < 0.133
    record(
        "E6-margin",
        "133ms clocking vs heavy-tailed (log-normal) server responses",
        ["queue releases", "queue timeouts", "max locate", "window"],
        [(fast, timeouts, us(summary.maximum), "133ms")],
        notes="'a comfortable margin of safety': even the p100 tail fits the window.",
    )
