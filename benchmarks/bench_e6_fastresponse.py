"""E6 — §III-B: the fast response queue vs the conservative full delay.

Paper claims reproduced here (simulated time):

* with the fast response queue, a cold lookup of an *existing* file is
  answered in about one server response time (~100-150 µs measured),
  "without risking a missed response";
* without it (ablation: ``fast_response=False``), the same lookup costs the
  full conservative delay (~5 s) — a ~30,000x latency gap;
* non-existent files cost the full delay either way (silence is the only
  negative signal);
* the 133 ms clocking bound comfortably covers even heavy-tailed server
  response times (log-normal tail test: zero missed responses).
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.latency import LogNormal
from repro.sim.monitor import Histogram

from reporting import record, record_snapshot, us

N_FILES = 50


def run_cluster(fast_response: bool, *, server_latency=None):
    cfg = ScallaConfig(seed=71, fast_response=fast_response, observability=True)
    if server_latency is not None:
        cfg.server_service = server_latency
    cluster = ScallaCluster(16, config=cfg)
    paths = [f"/store/e6/f{i}.root" for i in range(N_FILES)]
    cluster.populate(paths, size=256)
    cluster.settle()
    lat = Histogram()
    client = cluster.client()

    def probe():
        for p in paths:
            t0 = cluster.sim.now
            yield from client.locate(p)
            lat.record(cluster.sim.now - t0)

    cluster.run_process(probe(), limit=1000)
    return cluster, lat.summary()


def test_fast_response_vs_full_delay(benchmark):
    def run():
        c1, with_queue = run_cluster(True)
        _c2, without = run_cluster(False)
        snap = c1.obs_snapshot(extra={"experiment": "E6", "design": "fast-response"})
        return with_queue, without, snap

    with_queue, without, snap = benchmark.pedantic(run, rounds=1, iterations=1)
    # The snapshot carries the acceptance metrics: queue-wait percentiles
    # from the manager's fast response queue, hit ratio, message fanout.
    d = snap["derived"]
    assert d["resolutions"] == N_FILES
    assert d["queue_wait"]["count"] > 0, "no anchors waited — queue never engaged?"
    assert 0 < d["queue_wait"]["p50"] <= d["queue_wait"]["p99"] < 0.133
    assert d["fast_release_ratio"] == 1.0, "some waiters expired instead of releasing"
    assert d["messages_per_resolution"] > 0
    record_snapshot("E6", snap)
    record(
        "E6",
        "cold locate of existing files: fast response queue vs full delay",
        ["design", "mean", "p95", "max"],
        [
            ("fast response queue (paper)", us(with_queue.mean), us(with_queue.p95), us(with_queue.maximum)),
            ("full-delay only (ablation)", us(without.mean), us(without.p95), us(without.maximum)),
            ("speedup", f"{without.mean / with_queue.mean:.0f}x", "", ""),
        ],
        notes=(
            "Paper: ~100us server responses make the 5s conservative wait "
            "unnecessary for files that exist; the queue recovers 4 orders "
            "of magnitude."
        ),
    )
    # With the queue: about one query round trip (well under 1 ms).
    assert with_queue.mean < 1e-3
    # Without: every cold locate eats the full 5 s delay.
    assert without.mean > 4.9
    assert without.mean / with_queue.mean > 1000


def test_nonexistent_files_cost_full_delay_regardless(benchmark):
    def run():
        cluster = ScallaCluster(8, config=ScallaConfig(seed=72))
        cluster.populate(["/store/real.root"], size=64)
        cluster.settle()
        client = cluster.client()
        t0 = cluster.sim.now

        def probe():
            from repro.cluster.client import NoSuchFile

            try:
                yield from client.locate("/store/ghost.root")
            except NoSuchFile:
                return cluster.sim.now - t0
            raise AssertionError("ghost file resolved?!")

        return cluster.run_process(probe(), limit=120), cluster.config.full_delay

    elapsed, full_delay = benchmark.pedantic(run, rounds=1, iterations=1)
    assert elapsed >= full_delay
    record(
        "E6-negative",
        "non-existence verdict requires the full conservative wait",
        ["full delay configured", "measured time to NotFound"],
        [(f"{full_delay:.1f}s", f"{elapsed:.2f}s")],
        notes="Silence is the only negative signal; no queue can shorten it.",
    )


def run_wan_locate(*, settle: float = 0.5, **config_kwargs):
    """Cold locate of an existing file over an 80 ms one-way site link.

    Returns (elapsed seconds, manager CmsdStats, manager ResponseQueue).
    Shared by this bench, the integration tests, and perf_wan.
    """
    from repro.cluster.ids import cmsd_host, xrootd_host
    from repro.sim.latency import Uniform

    cluster = ScallaCluster(4, config=ScallaConfig(seed=74, **config_kwargs))
    net = cluster.network
    remote = [h for s in cluster.servers for h in (cmsd_host(s), xrootd_host(s))]
    net.federate(
        {"remote": remote, "hq": [cmsd_host(cluster.managers[0])]},
        wan_latency=Uniform(78e-3, 82e-3),
    )
    cluster.populate(["/store/wan.root"], size=64)
    cluster.settle(settle)
    client = cluster.client()
    net.set_host_site(client.host.name, "hq")
    t0 = cluster.sim.now

    def probe():
        yield from client.locate("/store/wan.root")
        return cluster.sim.now - t0

    elapsed = cluster.run_process(probe(), limit=120)
    mgr = cluster.manager_cmsd()
    return elapsed, mgr.stats, mgr.rq


def test_wan_window_fix(benchmark):
    """The 133 ms constant assumes LAN response times; the fix unmakes that.

    With an 80 ms one-way WAN link between manager and servers (a
    transatlantic federation, §IV-A), query responses arrive after ~160 ms
    — beyond the window — so at seed every cold lookup of an *existing*
    file degraded to the full 5 s wait.  Late-response reconciliation
    (default on) releases the parked client the moment the answer lands
    (~160 ms); adaptive windowing + bounded re-query additionally keep the
    release on the fast path (no timeout at all once RTT estimates warm).
    """

    def run():
        before, _, _ = run_wan_locate(late_release=False)
        late, st_late, _ = run_wan_locate()
        adaptive, _, rq_adaptive = run_wan_locate(settle=2.5, adaptive_window=True)
        return before, late, st_late, adaptive, rq_adaptive

    before, late, st_late, adaptive, rq_adaptive = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert before > 5.0  # seed behaviour: degraded to the full delay
    assert late < 0.3 and st_late.late_released >= 1
    assert adaptive < 0.3 and rq_adaptive.timeouts == 0
    record(
        "E6-wan",
        "cold locate over an 80ms WAN link, before/after the window fix",
        ["design", "cold locate"],
        [
            ("133ms window, late answers dropped (seed)", f"{before:.2f}s"),
            ("late-response reconciliation (default)", f"{late * 1e3:.0f}ms"),
            ("adaptive window (RTT-sized, warm)", f"{adaptive * 1e3:.0f}ms"),
        ],
        notes=(
            "At seed, responses landing after the window were treated as "
            "absent and the client ate the 5 s wait.  A late answer now "
            "releases the parked client immediately, and the adaptive "
            "window sizes itself to the slowest site so the answer is not "
            "late in the first place."
        ),
    )


def test_133ms_bound_covers_heavy_tails(benchmark):
    """Log-normal server response (median 100us, sigma 1.0 — p99 ~1ms):
    every request must still be satisfied by the queue, none falling back
    to the full delay."""

    def run():
        cluster, summary = run_cluster(
            True, server_latency=LogNormal(median=100e-6, sigma=1.0)
        )
        mgr = cluster.manager_cmsd()
        return summary, mgr.rq.fast_responses, mgr.rq.timeouts

    summary, fast, timeouts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert timeouts == 0, f"{timeouts} requests missed the 133ms window"
    assert summary.maximum < 0.133
    record(
        "E6-margin",
        "133ms clocking vs heavy-tailed (log-normal) server responses",
        ["queue releases", "queue timeouts", "max locate", "window"],
        [(fast, timeouts, us(summary.maximum), "133ms")],
        notes="'a comfortable margin of safety': even the p100 tail fits the window.",
    )
