"""E5 — §III-A3: sliding-window eviction cost is spread and non-blocking.

Paper claims reproduced here:

* "the cost of cache maintenance is equally spread across L_t and overhead
  scales linearly with the number of entries; on average only 1.6% of the
  cache is processed at any one time" — per-tick sweep size ≈ population/64
  and per-tick wall time scales linearly in population;
* "As physical removal is a background task, it has minimal interference
  with cache look-ups" — lookup cost during heavy pending-removal backlogs
  matches idle lookup cost (hiding is O(1), unchaining is deferred).
"""

import random
import time

from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.core.eviction import WINDOW_COUNT
from repro.workloads.namegen import hep_paths

from reporting import record

POPULATIONS = (16_000, 64_000, 256_000)


def build(population: int) -> tuple[NameCache, list[str]]:
    m = ClusterMembership()
    m.login("srv-0", ["/store"])
    cache = NameCache(m, lifetime=float(WINDOW_COUNT))
    paths = hep_paths(population, rng=random.Random(1), runs=10 * population)
    per_window = population // WINDOW_COUNT
    it = iter(paths)
    for w in range(WINDOW_COUNT):
        for _ in range(per_window):
            cache.lookup(next(it, f"/store/extra{w}"), now=float(w))
        cache.tick()
        cache.run_background_removal()
    return cache, paths


def test_tick_sweeps_one_64th_linearly(benchmark):
    def run():
        rows = []
        for population in POPULATIONS:
            cache, _ = build(population)
            live_before = cache.live_count()
            t0 = time.perf_counter()
            result = cache.tick()
            tick_cost = time.perf_counter() - t0
            frac = result.swept / max(live_before, 1)
            rows.append((population, live_before, result.swept, f"{frac:.1%}", tick_cost))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = [r[4] for r in rows]
    for population, live, swept, frac_s, _cost in rows:
        frac = swept / live
        assert 0.5 / WINDOW_COUNT < frac < 2.5 / WINDOW_COUNT, (
            f"{population}: swept {frac:.2%}, expected ~1/64"
        )
    # Linear scaling: 16x the population costs ~16x per tick, not more.
    assert costs[-1] < costs[0] * 16 * 3
    record(
        "E5",
        "per-tick sweep size and cost vs cache population",
        ["population", "live objects", "swept this tick", "fraction", "tick wall time (s)"],
        [(p, live, s, f, f"{c:.6f}") for p, live, s, f, c in rows],
        notes="Each tick touches ~1/64 (1.6%) of the cache; cost linear in population.",
    )


def test_lookups_unaffected_by_removal_backlog(benchmark):
    """Hide is O(1); physical removal is deferred — lookups during a huge
    pending-removal backlog cost the same as on an idle cache."""

    def run():
        cache, paths = build(64_000)
        sample = random.Random(2).choices(paths[: cache.live_count()], k=20_000)

        def time_lookups():
            t0 = time.perf_counter()
            for p in sample:
                cache.lookup(p, now=100.0, add=False)
            return (time.perf_counter() - t0) / len(sample)

        idle = time_lookups()
        # Expire half the cache without running background removal: a
        # maximal backlog of hidden-but-chained objects.
        for _ in range(WINDOW_COUNT // 2):
            cache.tick()
        backlog = cache.pending_removals
        during = time_lookups()
        cache.run_background_removal()
        after = time_lookups()
        return idle, during, after, backlog

    idle, during, after, backlog = benchmark.pedantic(run, rounds=1, iterations=1)
    assert backlog > 10_000
    assert during < idle * 2.0, f"lookups slowed {during / idle:.1f}x by backlog"
    record(
        "E5-interference",
        "lookup cost vs pending-removal backlog",
        ["state", "per-lookup", "pending removals"],
        [
            ("idle cache", f"{idle * 1e9:.0f}ns", 0),
            ("half the cache hidden, unremoved", f"{during * 1e9:.0f}ns", backlog),
            ("after background removal", f"{after * 1e9:.0f}ns", 0),
        ],
        notes="Hiding is a key-length write; lookups skip hidden entries at chain cost only.",
    )


def test_tick_throughput(benchmark):
    """Raw tick+removal rate at the 64k population (for the record)."""
    cache, _ = build(64_000)

    def cycle():
        cache.tick()
        cache.run_background_removal()

    benchmark(cycle)
