"""A2 (supplementary) — the data plane scales with servers, not managers.

The paper's scaling story is that the *control* plane (locate/redirect) is
the only centralized work, so aggregate data bandwidth grows linearly with
data servers: "cluster hundreds of physical data servers just to handle the
amount of data" (§II-A).  This bench transfers a fixed aggregate volume
through 1 / 4 / 16 servers (1 Gb/s each, the paper's NICs) and verifies the
wall-clock (simulated) completion time drops ~linearly — the manager's
microsecond redirects never become the bottleneck.
"""

from repro.cluster import ScallaCluster, ScallaConfig

from reporting import record

FILE_SIZE = 4 * 1024 * 1024  # 4 MiB per file
FILES = 32  # 128 MiB aggregate


def run_scale(n_servers: int) -> tuple[float, float]:
    cluster = ScallaCluster(n_servers, config=ScallaConfig(seed=151))
    paths = [f"/store/bulk/f{i:03d}.bin" for i in range(FILES)]
    cluster.populate(paths, size=FILE_SIZE)
    cluster.settle()
    t0 = cluster.sim.now

    def reader(path):
        client = cluster.client()
        yield from client.fetch(path, chunk=FILE_SIZE)

    def storm():
        procs = [cluster.sim.process(reader(p)) for p in paths]
        yield cluster.sim.all_of(procs)

    cluster.run_process(storm(), limit=3600)
    elapsed = cluster.sim.now - t0
    throughput = FILES * FILE_SIZE / elapsed  # bytes/s aggregate
    return elapsed, throughput


def test_aggregate_bandwidth_scales_with_servers(benchmark):
    def run():
        return [(n, *run_scale(n)) for n in (1, 4, 16)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "A2",
        f"time to read {FILES} x {FILE_SIZE // 2**20} MiB through N servers (1 Gb/s NICs)",
        ["servers", "completion (s)", "aggregate throughput"],
        [(n, f"{e:.3f}", f"{t / 1e9 * 8:.2f} Gb/s") for n, e, t in rows],
        notes=(
            "Throughput grows with the server count because redirection is "
            "microseconds against megabyte transfers — the control plane "
            "never serializes the data plane."
        ),
    )
    by = {n: t for n, _e, t in rows}
    assert by[4] > by[1] * 3.0  # near-linear speedup 1 -> 4
    assert by[16] > by[4] * 3.0  # and 4 -> 16
    # Single-server ceiling is the NIC: ~1 Gb/s.
    assert 0.5e9 / 8 < by[1] < 1.5e9 / 8
