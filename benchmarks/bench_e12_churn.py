"""E12 — §III-A4: cache accuracy under sustained membership churn.

Paper claims reproduced here:

* the four membership cases (disconnect / drop / un-dropped reconnect /
  new server) leave the cache *correctable*: after churn settles, every
  open lands on a server that actually has the file — zero stale
  redirect-to-nothing outcomes surviving the client recovery loop;
* corrections are lazy: membership changes themselves never touch cached
  objects (the O(1) claim, measured here as corrections-per-fetch);
* the client recovery mechanism (refresh + avoid) absorbs whatever the
  lazy corrections miss during the storm.
"""

import random

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.monitor import Histogram

from reporting import record

N_SERVERS = 12
N_FILES = 120
CRASHES = 8


def run_churn(seed: int):
    cluster = ScallaCluster(
        N_SERVERS,
        config=ScallaConfig(
            seed=seed,
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
            drop_timeout=3.0,
            relogin_timeout=0.5,
            full_delay=1.0,
        ),
    )
    paths = [f"/store/churn/f{i:03d}.root" for i in range(N_FILES)]
    cluster.populate(paths, copies=3, size=64)
    cluster.settle()

    # Warm the manager cache over every file.
    warm = cluster.client("warm")

    def warm_all():
        for p in paths:
            yield from warm.locate(p)

    cluster.run_process(warm_all(), limit=240)

    # Churn storm: crashes and restarts over 20 simulated seconds, with
    # clients continuously reading throughout.
    rng = random.Random(seed)
    read_errors = []
    reads_done = []

    def churner():
        for _ in range(CRASHES):
            yield cluster.sim.timeout(rng.uniform(0.5, 2.0))
            victim = rng.choice(cluster.servers)
            if cluster.node(victim).running:
                cluster.node(victim).crash()
            yield cluster.sim.timeout(rng.uniform(0.5, 4.0))
            if not cluster.node(victim).running:
                cluster.node(victim).restart()

    def reader(i):
        client = cluster.client(f"r{i}")
        for _ in range(30):
            p = rng.choice(paths)
            try:
                res = yield from client.open(p)
                yield from client.close(res)
                reads_done.append(p)
            except Exception as exc:  # noqa: BLE001 - tally, don't die
                read_errors.append((p, repr(exc)))
            yield cluster.sim.timeout(rng.uniform(0.05, 0.3))

    churn_proc = cluster.sim.process(churner())
    readers = [cluster.sim.process(reader(i)) for i in range(6)]

    def scenario():
        yield cluster.sim.all_of([churn_proc] + readers)

    cluster.run_process(scenario(), limit=600)
    # Let all servers come back and heartbeats settle.
    for name in cluster.servers:
        if not cluster.node(name).running:
            cluster.node(name).restart()
    cluster.run(until=cluster.sim.now + 2.0)
    return cluster, paths, reads_done, read_errors


def test_zero_stale_results_after_churn(benchmark):
    def run():
        cluster, paths, reads_done, read_errors = run_churn(seed=121)
        # Post-churn sweep: every file must resolve to a genuine holder.
        stale = 0
        lat = Histogram()
        client = cluster.client("verify")

        def verify():
            nonlocal stale
            for p in paths:
                t0 = cluster.sim.now
                res = yield from client.open(p)
                lat.record(cluster.sim.now - t0)
                if not cluster.node(res.node).fs.exists(p):
                    stale += 1
                yield from client.close(res)

        cluster.run_process(verify(), limit=1200)
        mgr = cluster.manager_cmsd()
        return cluster, stale, lat.summary(), len(reads_done), len(read_errors), mgr

    cluster, stale, lat, reads, errors, mgr = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stale == 0, f"{stale} opens landed on servers without the file"
    assert reads > 100
    # During the storm itself a read may exhaust retries only if all three
    # replicas were down simultaneously; allow a small residue.
    assert errors <= reads * 0.05
    cstats = mgr.cache.stats
    record(
        "E12",
        f"cache accuracy through {CRASHES} crash/restart cycles (3-way replication)",
        ["metric", "value"],
        [
            ("reads during storm", reads),
            ("read failures during storm", errors),
            ("post-churn verification opens", lat.count),
            ("stale results (server lacked file)", stale),
            ("post-churn open p95", f"{lat.p95 * 1e3:.2f}ms"),
            ("lazy corrections applied", cstats.corrections),
            ("fetches", cstats.lookups),
            ("client-driven refreshes", mgr.stats.refreshes),
        ],
        notes=(
            "Membership churn never walks the cache; corrections fire only "
            "at fetch (O(1) each), and the refresh+avoid client loop "
            "absorbs the in-flight races — zero stale outcomes."
        ),
    )
    # Lazy-correction economy: corrections are a fraction of fetches.
    assert cstats.corrections < cstats.lookups
