#!/usr/bin/env python
"""WAN federation: geographically distributed sites under one namespace.

§IV-A: "The ALICE LHC experiment uses Scalla to provide world-wide file
access by clustering storage over 60 sites in 20 countries."  This example
builds a scaled model: three sites (CERN, IN2P3, SLAC) whose data servers
all join one CERN-hosted manager, with realistic one-way WAN latencies per
site pair.  It shows:

* the uniform namespace — every client opens the same path regardless of
  where the bytes live;
* what WAN distance costs — the same file read from the local site vs
  across the Atlantic;
* replica placement paying off — with the locality-aware selection
  extension enabled, each client's reads of a replicated hot file stay at
  its own site, and the measured gap against a remote replica quantifies
  why federations replicate hot data;
* staging from a remote tape archive (MSS), the V_p path at WAN scale.

A reproduction finding worth noting: with the paper's default 133 ms
fast-response window, transatlantic query responses (~160 ms round trip)
*miss the window*, so every cold WAN lookup silently degrades to the full
5 s wait.  The 133 ms constant is a LAN-era choice; WAN federations must
raise it to cover the slowest site's response time, as this example does
(``fast_period=0.5``).  Comment that line out to watch cold SLAC lookups
jump from ~160 ms to ~5.2 s.

Run:  python examples/wan_federation.py
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.ids import cmsd_host, xrootd_host
from repro.sim.latency import Fixed, Uniform

# Three sites, four servers each.  One-way latencies between site pairs.
SITES = ["cern", "in2p3", "slac"]
SERVERS_PER_SITE = 4
SITE_LATENCY = {
    ("cern", "in2p3"): Uniform(4e-3, 5e-3),  # intra-Europe
    ("cern", "slac"): Uniform(75e-3, 80e-3),  # transatlantic + transcontinental
    ("in2p3", "slac"): Uniform(78e-3, 84e-3),
}


def site_of_index(i: int) -> str:
    return SITES[i // SERVERS_PER_SITE]


def main() -> None:
    cluster = ScallaCluster(
        len(SITES) * SERVERS_PER_SITE,
        config=ScallaConfig(
            seed=23,
            stage_latency=Fixed(30.0),
            # The LAN-era 133 ms window would drop ~160 ms transatlantic
            # responses; see the module docstring.
            fast_period=0.5,
            # Prefer same-site replicas when redirecting.  The manager
            # learns each child's site from heartbeats, so run them often
            # enough to have the map before the first reads.
            locality_aware=True,
            heartbeat_interval=0.2,
        ),
    )
    net = cluster.network

    # Place every daemon host at its site; the manager and cnsd sit at CERN.
    for idx, server in enumerate(cluster.servers):
        site = site_of_index(idx)
        net.set_host_site(cmsd_host(server), site)
        net.set_host_site(xrootd_host(server), site)
    net.set_host_site(cmsd_host(cluster.managers[0]), "cern")
    net.set_host_site("cnsd", "cern")
    for (a, b), model in SITE_LATENCY.items():
        net.set_site_latency(a, b, model)

    # Dataset: each site holds its own runs; one hot file is everywhere.
    site_servers = {
        s: [srv for i, srv in enumerate(cluster.servers) if site_of_index(i) == s]
        for s in SITES
    }
    for s in SITES:
        for i in range(20):
            cluster.place(f"/store/{s}/run{i:02d}.root", site_servers[s][i % SERVERS_PER_SITE], size=4096)
    for s in SITES:
        cluster.place("/store/hot/calibration.root", site_servers[s][0], size=4096)
    # An archived file only on SLAC's tape.
    cluster.archive("/store/slac/tape-archive.root", site_servers["slac"][1], size=4096)
    cluster.settle(1.0)

    def client_at(site: str, name: str):
        c = cluster.client(name)
        net.set_host_site(name, site)
        return c

    print(f"federation: {len(SITES)} sites x {SERVERS_PER_SITE} servers, "
          f"manager at cern\n")

    # -- same namespace, different distances --------------------------------
    for site in SITES:
        client = client_at(site, f"user-{site}")
        res_local = cluster.run_process(client.open(f"/store/{site}/run00.root"), limit=120)
        res_remote = cluster.run_process(client.open("/store/slac/run01.root"), limit=120)
        print(f"client at {site:6s}: local open {res_local.latency * 1e3:7.2f} ms   "
              f"slac-hosted open {res_remote.latency * 1e3:7.2f} ms")

    # -- replication + locality-aware selection pays --------------------------
    print()
    # Warm the hot file's location once and let every site's (WAN-delayed)
    # response reach the manager, so selection sees all three replicas.
    cluster.run_process(client_at("cern", "hot-warm").open("/store/hot/calibration.root"), limit=120)
    cluster.settle(0.5)
    for site in SITES:
        client = client_at(site, f"hot-{site}")
        res = cluster.run_process(client.open("/store/hot/calibration.root"), limit=120)
        local = site_of_index(cluster.servers.index(res.node)) == site
        print(f"client at {site:6s}: replicated hot file -> {res.node} "
              f"({res.latency * 1e3:7.2f} ms, {'local replica' if local else 'remote'})")

    # -- WAN staging ---------------------------------------------------------
    print()
    client = client_at("cern", "analyst")
    res = cluster.run_process(client.open("/store/slac/tape-archive.root"), limit=600)
    print(f"tape-archived file staged at SLAC and opened from CERN in "
          f"{res.latency:.1f} s (30 s stage + WAN hops) -> {res.node}")

    stats = net.stats
    print(f"\nnetwork: {stats.sent} messages, {stats.bytes_sent} bytes, "
          f"{stats.dropped} dropped")


if __name__ == "__main__":
    main()
