#!/usr/bin/env python
"""Quickstart: boot a Scalla cluster, store files, read them back.

Builds a 64-server single-manager cluster with the paper's latency
constants, spreads a small dataset over it, and walks the basic client
operations: open, read, stat, create, remove — printing the redirection
latency each one saw.

Run:  python examples/quickstart.py
"""

from repro.cluster import ScallaCluster, ScallaConfig


def main() -> None:
    # 64 data servers under one manager — the largest flat (single-level)
    # cluster the 64-ary design allows.
    cluster = ScallaCluster(64, config=ScallaConfig(seed=42))
    paths = [f"/store/run2024/evts-{i:04d}.root" for i in range(200)]
    cluster.populate(paths, copies=2, size=64 * 1024)
    cluster.settle()
    print(f"cluster up: {len(cluster.servers)} servers, "
          f"tree depth {cluster.topology.depth()}, manager {cluster.managers[0]}")

    client = cluster.client("demo")

    # -- first open: cold cache, the manager floods a query ---------------
    res = cluster.run_process(client.open(paths[0]))
    print(f"cold open : {paths[0]} -> {res.node}  "
          f"({res.latency * 1e6:.0f} us, {res.redirects} redirect)")

    # -- second open of the same file: served from the location cache -----
    res2 = cluster.run_process(cluster.client().open(paths[0]))
    print(f"warm open : {paths[0]} -> {res2.node}  "
          f"({res2.latency * 1e6:.0f} us)  "
          f"[{res.latency / res2.latency:.1f}x faster than cold]")

    # -- read data through the cluster ------------------------------------
    data = cluster.run_process(client.fetch(paths[1]))
    print(f"fetch     : {paths[1]} -> {len(data)} bytes")

    # -- metadata ----------------------------------------------------------
    exists, size = cluster.run_process(client.stat(paths[2]))
    print(f"stat      : {paths[2]} exists={exists} size={size}")

    # -- create a new file (pays the full 5 s non-existence wait) ----------
    t0 = cluster.sim.now
    res3 = cluster.run_process(client.open("/store/run2024/new.root", mode="w", create=True))
    print(f"create    : /store/run2024/new.root -> {res3.node}  "
          f"(took {cluster.sim.now - t0:.2f} s simulated — the full-delay cost "
          f"the paper's prepare() amortizes)")

    def write_and_read():
        n = yield from client.write(res3, 0, b"brand new physics")
        content = yield from client.read(res3, 0, n)
        yield from client.close(res3)
        return content

    content = cluster.run_process(write_and_read())
    print(f"roundtrip : wrote+read back {content!r}")

    removed = cluster.run_process(client.remove(paths[3]))
    print(f"remove    : {paths[3]} removed={removed}")

    mgr = cluster.manager_cmsd()
    print(f"\nmanager cache: {mgr.cache.live_count()} live location objects, "
          f"{mgr.stats.locates} locates served, {mgr.stats.queries_sent} queries flooded, "
          f"{mgr.stats.haves_received} positive responses")


if __name__ == "__main__":
    main()
