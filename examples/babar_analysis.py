#!/usr/bin/env python
"""BaBar-style analysis campaign — the workload that motivated Scalla.

§II-A of the paper: the Root framework "would perform several meta-data
operations on dozens of files per job prior to commencing analysis" with
"a thousand or more simultaneous analysis jobs".  This example runs a
scaled-down campaign — 200 concurrent jobs, each statting and reading a
Zipf-popular selection of 12 files from a 2,000-file dataset on a
64-server cluster — and reports the meta-data latency distribution the
cmsd cache delivers under that concurrency.

Run:  python examples/babar_analysis.py
"""

import random

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.monitor import Histogram
from repro.workloads.jobs import JobSpec, run_job
from repro.workloads.namegen import hep_paths
from repro.workloads.popularity import ZipfChooser

N_SERVERS = 64
N_FILES = 2_000
N_JOBS = 200
FILES_PER_JOB = 12


def main() -> None:
    rng = random.Random(2024)
    cluster = ScallaCluster(N_SERVERS, config=ScallaConfig(seed=7))
    dataset = hep_paths(N_FILES, rng=rng)
    cluster.populate(dataset, copies=2, size=32 * 1024)
    cluster.settle()
    print(f"dataset: {N_FILES} files x2 replicas over {N_SERVERS} servers")

    chooser = ZipfChooser(dataset, s=1.1)
    results = []

    def campaign():
        procs = []
        for j in range(N_JOBS):
            files = tuple({chooser.choose(rng) for _ in range(FILES_PER_JOB)})
            client = cluster.client(f"job{j:04d}")
            # Jobs start over a 2-second window, as a batch system releases them.
            start_delay = rng.uniform(0.0, 2.0)

            def one_job(client=client, files=files, delay=start_delay):
                yield cluster.sim.timeout(delay)
                res = yield from run_job(client, JobSpec(files=files, read_bytes=4096))
                results.append(res)

            procs.append(cluster.sim.process(one_job()))
        yield cluster.sim.all_of(procs)

    cluster.run_process(campaign(), limit=600)

    stats = Histogram()
    opens = Histogram()
    for r in results:
        stats.extend(r.stat_latencies)
        opens.extend(r.open_latencies)
    total_md = sum(r.metadata_ops for r in results)
    span = max(r.finished_at for r in results) - min(r.started_at for r in results)
    failures = sum(r.failures for r in results)

    print(f"\n{len(results)} jobs finished in {span:.2f} s simulated, {failures} failures")
    print(f"meta-data ops: {total_md} ({total_md / span:.0f}/s sustained — "
          f"the 'thousands of transactions per second' requirement)")
    print(f"stat latency : {stats.summary().format(scale=1e6, unit='us')}")
    print(f"open latency : {opens.summary().format(scale=1e6, unit='us')}")

    mgr = cluster.manager_cmsd()
    cache_stats = mgr.cache.stats
    print(f"\nmanager cache: {cache_stats.lookups} lookups, "
          f"{cache_stats.hits / max(cache_stats.lookups, 1):.0%} hit rate, "
          f"{mgr.cache.live_count()} live objects "
          f"(only requested files are tracked — {N_FILES - mgr.cache.live_count()} "
          f"of {N_FILES} files cost the cache nothing)")


if __name__ == "__main__":
    main()
