#!/usr/bin/env python
"""Qserv astronomical survey queries over Scalla dispatch (paper §IV-B).

Builds an LSST-flavoured deployment: a sky catalog partitioned into 32
chunks, replicated twice across 16 worker nodes, with a Qserv master that
discovers workers purely by opening partition paths through Scalla.  Runs
the paper's two workload classes — quick retrieval (point/cone queries) and
full-catalog summaries — then crashes a worker mid-campaign to show the
master re-dispatching through Scalla's data->host mapping with no worker
configuration anywhere.

Run:  python examples/qserv_survey.py
"""

import random

from repro.cluster import ScallaCluster, ScallaConfig
from repro.qserv import (
    Query,
    QservMaster,
    QservWorker,
    SkyPartitioner,
    make_catalog_chunk,
)

N_WORKERS = 16
ROWS_PER_CHUNK = 400


def main() -> None:
    cluster = ScallaCluster(
        N_WORKERS,
        config=ScallaConfig(
            seed=88,
            exports=("/qserv",),
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
        ),
    )
    part = SkyPartitioner(ra_stripes=8, dec_stripes=4)
    rng = random.Random(3)

    workers: dict[str, QservWorker] = {}
    tables = {}
    for i, chunk in enumerate(part.all_chunks()):
        tables[chunk] = make_catalog_chunk(
            chunk, partitioner=part, rows=ROWS_PER_CHUNK, rng=rng, id_base=chunk * 100_000
        )
        for replica in range(2):
            server = cluster.servers[(i + replica) % N_WORKERS]
            if server not in workers:
                workers[server] = QservWorker(cluster.node(server))
            workers[server].host_chunk(chunk, tables[chunk], cnsd=cluster.cnsd)
    cluster.settle()
    total_rows = sum(len(t) for t in tables.values())
    print(f"catalog: {total_rows} objects in {part.n_chunks} chunks x2 replicas "
          f"on {N_WORKERS} workers (no worker list configured anywhere)")

    master = QservMaster(cluster.client("qserv-master"))

    # -- quick retrieval: one object by id ---------------------------------
    target = tables[11].rows[42]
    out = cluster.run_process(
        master.run_query(Query(kind="point", object_id=target.object_id), [11])
    )
    oid, ra, dec, mag = out.result.rows[0]
    print(f"\npoint query  : object {oid} at (ra={ra:.2f}, dec={dec:.2f}) "
          f"mag={mag:.2f}  [{out.duration * 1e3:.1f} ms, 1 chunk]")

    # -- region scan: a box on the sky touches only overlapping chunks -------
    chunks = part.chunks_overlapping(30.0, 120.0, -45.0, 0.0)
    out = cluster.run_process(
        master.run_query(Query(kind="scan", ra_min=30, ra_max=120, dec_min=-45, dec_max=0, mag_max=18.0), chunks)
    )
    print(f"region scan  : {out.result.count} bright objects in box  "
          f"[{out.duration * 1e3:.1f} ms, {out.chunks}/{part.n_chunks} chunks touched]")

    # -- full-catalog summary: the long-analysis class ----------------------
    out = cluster.run_process(master.run_query(Query(kind="mean_mag"), part.all_chunks()))
    print(f"full summary : mean magnitude {out.result.mean_mag:.3f} over "
          f"{out.result.rows_scanned} rows  [{out.duration * 1e3:.1f} ms, "
          f"all {out.chunks} chunks in parallel]")

    # -- worker failure mid-campaign ----------------------------------------
    victim = master.channels[0]
    print(f"\ncrashing worker {victim} (hosts chunk 0) ...")
    cluster.node(victim).crash()
    cluster.settle(1.0)
    out = cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=240)
    print(f"re-dispatch  : chunk 0 answered by {master.channels[0]} "
          f"(count={out.result.count}, {out.redispatches} re-dispatch) — "
          f"fault tolerance came from Scalla's mapping, not Qserv code")

    executed = sum(w.queries_executed for w in workers.values())
    print(f"\nworkers executed {executed} chunk queries, "
          f"{sum(w.rows_scanned for w in workers.values())} rows scanned")


if __name__ == "__main__":
    main()
