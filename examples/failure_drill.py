#!/usr/bin/env python
"""Failure drill: recoverability, Scalla's third design objective.

Walks a 16-server cluster through the paper's §III-A4 membership cases and
the §V restart argument, printing what the manager believes at each step:

1. a server disconnects       -> marked offline, still a member (case 1),
2. it reconnects in time      -> same slot, interim caches corrected (case 3),
3. another stays away         -> dropped, V_m scrubbed (case 2),
4. the dropped one returns    -> fresh login, new connection epoch (case 4),
5. the manager itself restarts -> state-less recovery from re-logins (§V).

Run:  python examples/failure_drill.py
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.core import bitvec


def describe(cluster, label):
    mgr = cluster.manager_cmsd()
    m = mgr.membership
    print(f"  [{label}] members={bitvec.count(m.v_members)} "
          f"online={bitvec.count(m.v_online)} offline={bitvec.count(m.v_offline)} "
          f"N_c={m.n_c} cache_objects={mgr.cache.live_count()}")


def main() -> None:
    cluster = ScallaCluster(
        16,
        config=ScallaConfig(
            seed=99,
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
            drop_timeout=5.0,
            relogin_timeout=0.5,
            full_delay=1.0,
        ),
    )
    files = [f"/store/drill/f{i}.root" for i in range(64)]
    cluster.populate(files, copies=2, size=4096)
    cluster.settle()

    client = cluster.client()
    for f in files[:16]:  # warm the location cache
        cluster.run_process(client.open(f))
    print("cluster warm:")
    describe(cluster, "t=%.1fs" % cluster.sim.now)

    # -- case 1: transient disconnect ---------------------------------------
    flaky = cluster.servers[0]
    print(f"\n1) {flaky} loses power (transient)")
    cluster.node(flaky).crash()
    cluster.run(until=cluster.sim.now + 2.0)
    describe(cluster, "disconnected")

    # Reads keep working: offline holders are shifted to V_q at fetch and
    # the replica serves.
    res = cluster.run_process(cluster.client().open(files[0]), limit=60)
    print(f"   open {files[0]} still works -> {res.node} "
          f"({res.latency * 1e3:.2f} ms)")

    # -- case 3: reconnect before the drop timer ------------------------------
    print(f"\n2) {flaky} comes back within the drop window")
    cluster.node(flaky).restart()
    cluster.run(until=cluster.sim.now + 1.0)
    describe(cluster, "reconnected")

    # -- case 2: a server stays away past drop_timeout ------------------------
    gone = cluster.servers[1]
    print(f"\n3) {gone} fails hard and stays away")
    cluster.node(gone).crash()
    cluster.run(until=cluster.sim.now + 7.0)
    mgr = cluster.manager_cmsd()
    assert mgr.membership.slot_of(gone) is None
    describe(cluster, "dropped")
    print(f"   {gone} no longer eligible for /store: "
          f"V_m={bitvec.count(mgr.membership.eligible('/store/x'))} servers")

    # -- case 4: the dropped server returns ----------------------------------
    print(f"\n4) {gone} is repaired and rejoins")
    cluster.node(gone).restart()
    cluster.run(until=cluster.sim.now + 1.0)
    describe(cluster, "rejoined")

    # -- §V: manager restart ---------------------------------------------------
    print("\n5) the manager itself restarts (all in-memory state lost)")
    t0 = cluster.sim.now
    cluster.node(cluster.managers[0]).restart()
    describe(cluster, "just restarted")
    cluster.run(until=cluster.sim.now + 2.0)
    describe(cluster, "rebuilt")
    res = cluster.run_process(cluster.client().open(files[1]), limit=60)
    print(f"   first file served {cluster.sim.now - t0:.2f} s after restart "
          f"-> {res.node}  ('within seconds of restarting')")


if __name__ == "__main__":
    main()
