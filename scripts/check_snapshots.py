#!/usr/bin/env python
"""CI gate: validate bench observability snapshots.

Usage: check_snapshots.py SNAPSHOT.json [SNAPSHOT.json ...]

Each file must be strict JSON (no NaN/Infinity), carry the repro.obs/1
schema, and report the headline derived metrics the acceptance criteria
name: cache-hit ratio, messages per resolution, and queue-wait
percentiles.  Exits non-zero with a per-file report on any violation, so
a bench that silently stops exporting metrics fails the pipeline rather
than uploading an empty artifact.
"""

from __future__ import annotations

import json
import math
import sys

REQUIRED_DERIVED = (
    "cache_lookups",
    "cache_hit_ratio",
    "resolutions",
    "messages_per_resolution",
    "queue_wait",
    "fast_release_ratio",
    "evictions",
    "corrections",
    "failovers",
    "rehomes",
    "chaos_msgs_dropped",
)
QUEUE_WAIT_KEYS = ("count", "mean", "p50", "p95", "p99", "minimum", "maximum")


def check(path: str) -> list[str]:
    problems: list[str] = []
    try:
        with open(path) as fh:
            snap = json.load(
                fh, parse_constant=lambda c: problems.append(f"non-finite literal {c}")
            )
    except FileNotFoundError:
        return ["missing file"]
    except json.JSONDecodeError as exc:
        return [f"invalid JSON: {exc}"]

    if snap.get("schema") != "repro.obs/1":
        problems.append(f"schema is {snap.get('schema')!r}, expected 'repro.obs/1'")
    derived = snap.get("derived")
    if not isinstance(derived, dict):
        problems.append("no 'derived' section")
        return problems
    for key in REQUIRED_DERIVED:
        if key not in derived:
            problems.append(f"derived.{key} missing")
    qw = derived.get("queue_wait")
    if isinstance(qw, dict):
        for key in QUEUE_WAIT_KEYS:
            value = qw.get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                problems.append(f"derived.queue_wait.{key} is {value!r}")
    if not derived.get("resolutions"):
        problems.append("derived.resolutions is zero — the bench resolved nothing")
    if not derived.get("cache_lookups"):
        problems.append("derived.cache_lookups is zero — cache instrumentation inactive")
    if not snap.get("metrics"):
        problems.append("no metric series recorded")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_snapshots.py SNAPSHOT.json [...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        problems = check(path)
        if problems:
            failed = True
            print(f"FAIL {path}")
            for p in problems:
                print(f"  - {p}")
        else:
            with open(path) as fh:
                d = json.load(fh)["derived"]
            print(
                f"ok   {path}: resolutions={d['resolutions']} "
                f"hit_ratio={d['cache_hit_ratio']:.3f} "
                f"msgs/resolution={d['messages_per_resolution']:.2f} "
                f"queue_wait_p99={d['queue_wait']['p99'] * 1e6:.1f}us"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
