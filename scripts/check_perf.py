#!/usr/bin/env python
"""Gate on the perf trajectory: fail on a >25% regression.

Compares a fresh run of the ``benchmarks/perf`` suite (or a results file
produced by ``benchmarks/perf/run.py --json``) against the *last committed
entry* of ``BENCH_kernel.json`` / ``BENCH_cache.json``.

Two metric families, two comparison rules (see docs/performance.md):

* ``*_per_sec`` — wall-clock throughput.  Machine-dependent, so the
  baseline is rescaled by the ratio of calibration rates (the fixed
  pure-Python spin loop measured alongside every entry) before the
  threshold is applied.
* ``*_us`` — simulated-time latency.  Deterministic output of the event
  kernel, identical on any machine; compared raw, and held to a much
  tighter tolerance because only a behavior change can move it.

Exit 0 when every metric is within tolerance, 1 on any regression, 2 on
usage errors (no baseline to compare against, unreadable results file).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "src"))

from reporting import load_bench  # noqa: E402

#: Wall-throughput metrics may drift this much below the (calibration-
#: rescaled) baseline before the gate fails.
DEFAULT_THRESHOLD = 0.25

#: Simulated-time latency is deterministic: anything beyond float noise
#: means the kernel's behavior changed, not the machine.
SIMTIME_TOLERANCE = 0.001

SUITES = ("kernel", "cache")


def _load_results(path: str | None, *, quick: bool) -> dict:
    if path is not None:
        try:
            return json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as err:
            print(f"check_perf: cannot read results file {path}: {err}", file=sys.stderr)
            raise SystemExit(2)
    # No pre-measured file: run the suite ourselves.
    sys.path.insert(0, str(REPO / "benchmarks" / "perf"))
    from run import run_all

    return run_all(quick=quick)


def compare_suite(
    suite: str,
    baseline: dict,
    current_metrics: dict[str, float],
    current_calibration: float,
    threshold: float,
) -> list[str]:
    """Return a list of failure descriptions (empty = suite passes)."""
    failures: list[str] = []
    base_cal = baseline.get("calibration") or current_calibration
    scale = current_calibration / base_cal
    label = baseline.get("label", "?")
    for metric, base_val in sorted(baseline.get("metrics", {}).items()):
        cur = current_metrics.get(metric)
        if cur is None or base_val <= 0:
            continue
        if metric.endswith("_per_sec"):
            floor = base_val * scale * (1.0 - threshold)
            ratio = cur / (base_val * scale)
            verdict = "ok" if cur >= floor else "REGRESSION"
            print(
                f"  {suite:>6}  {metric:<28} {cur:>14,.1f}  "
                f"baseline*cal {base_val * scale:>14,.1f}  x{ratio:.2f}  {verdict}"
            )
            if cur < floor:
                failures.append(
                    f"{suite}.{metric}: {cur:,.1f}/s is {(1 - ratio) * 100:.1f}% below "
                    f"baseline «{label}» ({base_val:,.1f}/s, rescaled x{scale:.2f}); "
                    f"threshold {threshold * 100:.0f}%"
                )
        elif metric.endswith("_us"):
            ceiling = base_val * (1.0 + SIMTIME_TOLERANCE)
            verdict = "ok" if cur <= ceiling else "REGRESSION"
            print(
                f"  {suite:>6}  {metric:<28} {cur:>14,.1f}  "
                f"baseline {base_val:>14,.1f}  {verdict}"
            )
            if cur > ceiling:
                failures.append(
                    f"{suite}.{metric}: simulated latency {cur:,.1f}us exceeds "
                    f"baseline «{label}» {base_val:,.1f}us — deterministic metric, "
                    "so the kernel's behavior changed"
                )
        # Other metrics (raw counts, etc.) are informational only.
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/check_perf.py",
        description="Fail when the perf suite regresses >25% vs the committed BENCH baseline",
    )
    parser.add_argument(
        "results",
        nargs="?",
        help="results JSON from `benchmarks/perf/run.py --json` (measured fresh when omitted)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional throughput drop (default %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="measure with CI-sized workloads (only when no results file is given)",
    )
    args = parser.parse_args(argv)

    results = _load_results(args.results, quick=args.quick)
    current_cal = results.get("calibration")
    if not current_cal:
        print("check_perf: results carry no calibration rate", file=sys.stderr)
        return 2

    failures: list[str] = []
    compared = 0
    for suite in SUITES:
        doc = load_bench(suite)
        if not doc["entries"]:
            print(f"check_perf: no committed baseline in BENCH_{suite}.json", file=sys.stderr)
            return 2
        baseline = doc["entries"][-1]
        print(f"== {suite}: vs baseline «{baseline.get('label', '?')}»")
        failures += compare_suite(
            suite, baseline, results.get(suite, {}), current_cal, args.threshold
        )
        compared += 1

    if failures:
        print(f"\ncheck_perf: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\ncheck_perf: {compared} suite(s) within threshold of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
