#!/usr/bin/env bash
# Local pre-push check — the same gates CI runs, in the same order.
#
#   scripts/check.sh           # ruff (if installed) + scalla-lint +
#                              # tier-1 tests + determinism double-run +
#                              # sanitized chaos soak
#   scripts/check.sh --bench   # also run the E1/E6 smoke benches,
#                              # validate their metric snapshots, and
#                              # gate the perf suite against the
#                              # committed BENCH_*.json baseline
#
# Ruff is optional locally (CI always has it): when it is not importable
# the lint step is skipped with a warning instead of failing, so the
# script works in minimal containers.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_bench=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

ruff_cmd=""
if command -v ruff >/dev/null 2>&1; then
  ruff_cmd="ruff"
elif python -c "import ruff" >/dev/null 2>&1; then
  ruff_cmd="python -m ruff"
fi
if [ -n "$ruff_cmd" ]; then
  echo "== ruff check"
  $ruff_cmd check src tests benchmarks scripts
  echo "== ruff format --check (obs + scripts)"
  $ruff_cmd format --check src/repro/obs scripts
else
  echo "== ruff not installed; skipping lint (CI will run it)"
fi

echo "== scalla-lint (repo rules)"
python -m repro.analysis.lint src tests benchmarks

echo "== tier-1 tests"
python -m pytest -x -q

echo "== determinism (same-seed double run, SimSan on run 2)"
python -m repro.analysis.determinism --sanitize

echo "== chaos soak (sanitized)"
SCALLA_SANITIZE=1 python -m pytest tests/integration/test_chaos.py -q

if [ "$run_bench" -eq 1 ]; then
  echo "== smoke benches (E1, E6)"
  python -m pytest benchmarks/bench_e1_redirection.py \
                   benchmarks/bench_e6_fastresponse.py \
                   -p no:cacheprovider -q
  echo "== snapshot gate"
  python scripts/check_snapshots.py \
    benchmarks/results/e1.metrics.json \
    benchmarks/results/e6.metrics.json
  echo "== perf gate (quick suite vs committed BENCH baseline)"
  python scripts/check_perf.py --quick
fi

echo "== all checks passed"
