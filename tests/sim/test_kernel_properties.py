"""Property-based tests of the DES kernel's ordering guarantees."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulator
from repro.sim.sync import Resource, Store


class TestCausalOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_timeouts_fire_in_time_order(self, delays):
        """Whatever order timeouts are created in, wakeups happen in
        nondecreasing time order, and ties preserve creation order."""
        sim = Simulator()
        log = []

        def waiter(i, d):
            yield sim.timeout(d)
            log.append((sim.now, i))

        for i, d in enumerate(delays):
            sim.process(waiter(i, d))
        sim.run()
        times = [t for t, _i in log]
        assert times == sorted(times)
        # Ties keep scheduling order (deterministic heap sequence numbers).
        for (t1, i1), (t2, i2) in zip(log, log[1:]):
            if t1 == t2:
                assert i1 < i2
        assert sim.now == max(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=10.0), st.floats(min_value=0.0, max_value=10.0)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_nested_process_chains_accumulate_time(self, pairs):
        """A parent that awaits a child observes exactly the child's delay."""
        sim = Simulator()
        results = []

        def child(d):
            yield sim.timeout(d)
            return sim.now

        def parent(d1, d2):
            yield sim.timeout(d1)
            start = sim.now
            end = yield sim.process(child(d2))
            results.append((start, end, d2))

        for d1, d2 in pairs:
            sim.process(parent(d1, d2))
        sim.run()
        assert len(results) == len(pairs)
        for start, end, d2 in results:
            assert abs((end - start) - d2) < 1e-12


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_store_preserves_fifo_for_any_sequence(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer():
            for item in items:
                store.put(item)
                yield sim.timeout(0.001)

        def consumer():
            for _ in items:
                v = yield store.get()
                received.append(v)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_resource_never_exceeds_capacity(self, capacity, workers):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        concurrent = []
        active = [0]

        def worker():
            yield res.acquire()
            active[0] += 1
            concurrent.append(active[0])
            yield sim.timeout(1.0)
            active[0] -= 1
            res.release()

        for _ in range(workers):
            sim.process(worker())
        sim.run()
        assert len(concurrent) == workers  # everybody ran
        assert max(concurrent) <= capacity


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_identical_seeds_identical_traces(self, seed):
        """A randomized workload replays bit-identically under one seed."""

        def run_once():
            sim = Simulator()
            rng = random.Random(seed)
            trace = []

            def chatter(i):
                for _ in range(5):
                    yield sim.timeout(rng.random())
                    trace.append((round(sim.now, 12), i))

            for i in range(4):
                sim.process(chatter(i))
            sim.run()
            return trace

        assert run_once() == run_once()
