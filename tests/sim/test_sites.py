"""Unit tests for WAN site-latency modelling in the network."""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed
from repro.sim.network import Network


def make():
    sim = Simulator()
    net = Network(sim, default_latency=Fixed(10e-6), rng=random.Random(0))
    for h in ("a1", "a2", "b1", "ungrouped"):
        net.add_host(h)
    net.set_host_site("a1", "site-a")
    net.set_host_site("a2", "site-a")
    net.set_host_site("b1", "site-b")
    net.set_site_latency("site-a", "site-b", Fixed(5e-3))
    return sim, net


def deliver_time(sim, net, src, dst):
    got = []

    def rx():
        env = yield net.host(dst).inbox.get()
        got.append(env.delivered_at - env.sent_at)

    sim.process(rx())
    net.send(src, dst, "x")
    sim.run()
    return got[0]


class TestSiteLatency:
    def test_cross_site_uses_site_model(self):
        sim, net = make()
        assert deliver_time(sim, net, "a1", "b1") == pytest.approx(5e-3)

    def test_same_site_uses_default(self):
        sim, net = make()
        assert deliver_time(sim, net, "a1", "a2") == pytest.approx(10e-6)

    def test_ungrouped_host_uses_default(self):
        sim, net = make()
        assert deliver_time(sim, net, "a1", "ungrouped") == pytest.approx(10e-6)

    def test_unconfigured_site_pair_uses_default(self):
        sim, net = make()
        net.set_host_site("ungrouped", "site-c")
        assert deliver_time(sim, net, "a1", "ungrouped") == pytest.approx(10e-6)

    def test_link_override_beats_site(self):
        sim, net = make()
        net.set_link_latency("a1", "b1", Fixed(1e-3))
        assert deliver_time(sim, net, "a1", "b1") == pytest.approx(1e-3)
        # the other cross-site pair still uses the site model
        assert deliver_time(sim, net, "a2", "b1") == pytest.approx(5e-3)

    def test_symmetry(self):
        sim, net = make()
        assert deliver_time(sim, net, "b1", "a1") == pytest.approx(5e-3)

    def test_unknown_host_rejected(self):
        _, net = make()
        with pytest.raises(KeyError):
            net.set_host_site("ghost", "site-x")

    def test_site_of(self):
        _, net = make()
        assert net.site_of("a1") == "site-a"
        assert net.site_of("ungrouped") is None
