"""Unit tests for Store and Resource."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.sync import Resource, Store


class TestStore:
    def test_put_then_get_immediate(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = []

        def p():
            v = yield store.get()
            got.append((sim.now, v))

        sim.process(p())
        sim.run()
        assert got == [(0.0, "x")]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            v = yield store.get()
            got.append((sim.now, v))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_order_items(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def p():
            for _ in range(3):
                v = yield store.get()
                got.append(v)

        sim.process(p())
        sim.run()
        assert got == [0, 1, 2]

    def test_fifo_order_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(tag):
            v = yield store.get()
            got.append((tag, v))

        def producer():
            yield sim.timeout(1.0)
            store.put("first")
            store.put("second")

        sim.process(consumer("a"))
        sim.process(consumer("b"))
        sim.process(producer())
        sim.run()
        assert got == [("a", "first"), ("b", "second")]

    def test_len_and_drain(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.drain() == [1, 2]
        assert len(store) == 0


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        timeline = []

        def worker(i):
            yield res.acquire()
            timeline.append(("start", i, sim.now))
            yield sim.timeout(1.0)
            res.release()
            timeline.append(("end", i, sim.now))

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        starts = {i: t for op, i, t in timeline if op == "start"}
        # Two run immediately; the other two wait for releases.
        assert sorted(starts.values()) == [0.0, 0.0, 1.0, 1.0]

    def test_utilization(self):
        sim = Simulator()
        res = Resource(sim, capacity=4)

        def worker():
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()

        sim.process(worker())
        sim.run(until=5.0)
        assert res.in_use == 1
        assert res.utilization == 0.25

    def test_release_without_acquire(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_queued_count(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield sim.timeout(100.0)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queued == 1
