"""Unit tests for the DES kernel."""

import pytest

from repro.sim.errors import Interrupt, SimError
from repro.sim.kernel import Simulator


class TestTimeouts:
    def test_clock_advances_to_timeout(self):
        sim = Simulator()
        log = []

        def p():
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(p())
        sim.run()
        assert log == [2.5]

    def test_zero_timeout_fires_at_same_time(self):
        sim = Simulator()
        log = []

        def p():
            yield sim.timeout(0.0)
            log.append(sim.now)

        sim.process(p())
        sim.run()
        assert log == [0.0]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.timeout(-1.0)

    def test_timeout_carries_value(self):
        sim = Simulator()
        got = []

        def p():
            v = yield sim.timeout(1.0, value="hello")
            got.append(v)

        sim.process(p())
        sim.run()
        assert got == ["hello"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []

        def mk(tag):
            def p():
                yield sim.timeout(1.0)
                log.append(tag)

            return p

        for tag in "abc":
            sim.process(mk(tag)())
        sim.run()
        assert log == ["a", "b", "c"]


class TestProcesses:
    def test_join_returns_value(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(3.0)
            return 42

        def parent():
            v = yield sim.process(child())
            results.append((sim.now, v))

        sim.process(parent())
        sim.run()
        assert results == [(3.0, 42)]

    def test_join_already_finished_process(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(1.0)
            return "done"

        def parent(proc):
            yield sim.timeout(5.0)
            v = yield proc  # long since finished
            results.append((sim.now, v))

        proc = sim.process(child())
        sim.process(parent(proc))
        sim.run()
        assert results == [(5.0, "done")]

    def test_exception_propagates_to_joiner(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        def parent():
            with pytest.raises(RuntimeError, match="boom"):
                yield sim.process(child())
            return "caught"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught"

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def p():
            yield 42

        proc = sim.process(p())
        sim.run()
        assert proc.triggered
        with pytest.raises(SimError):
            proc.value

    def test_run_until_process(self):
        sim = Simulator()

        def p():
            yield sim.timeout(2.0)
            return "x"

        assert sim.run_until_process(sim.process(p())) == "x"

    def test_run_until_deadlock_detected(self):
        sim = Simulator()

        def p():
            yield sim.event()  # never triggered

        proc = sim.process(p())
        with pytest.raises(SimError, match="deadlock"):
            sim.run_until_process(proc)

    def test_cross_simulator_event_rejected(self):
        sim1, sim2 = Simulator(), Simulator()

        def p():
            yield sim2.timeout(1.0)

        proc = sim1.process(p())
        sim1.run()
        assert proc.triggered
        with pytest.raises(SimError):
            proc.value


class TestEvents:
    def test_manual_event_signalling(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def waiter():
            v = yield gate
            log.append((sim.now, v))

        def opener():
            yield sim.timeout(4.0)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert log == [(4.0, "open")]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not-an-exception")

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        gate = sim.event()
        woken = []

        def waiter(i):
            yield gate
            woken.append(i)

        for i in range(5):
            sim.process(waiter(i))
        sim.process(iter([]) if False else _opener(sim, gate))
        sim.run()
        assert sorted(woken) == [0, 1, 2, 3, 4]


def _opener(sim, gate):
    yield sim.timeout(1.0)
    gate.succeed()


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        log = []

        def p():
            t1 = sim.timeout(1.0, value="a")
            t2 = sim.timeout(5.0, value="b")
            results = yield sim.all_of([t1, t2])
            log.append((sim.now, sorted(results.values())))

        sim.process(p())
        sim.run()
        assert log == [(5.0, ["a", "b"])]

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        log = []

        def p():
            t1 = sim.timeout(1.0, value="fast")
            t2 = sim.timeout(5.0, value="slow")
            results = yield sim.any_of([t1, t2])
            log.append((sim.now, list(results.values())))

        sim.process(p())
        sim.run()
        assert log == [(1.0, ["fast"])]

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()
        log = []

        def p():
            yield sim.all_of([])
            log.append(sim.now)

        sim.process(p())
        sim.run()
        assert log == [0.0]


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        def killer(victim):
            yield sim.timeout(2.0)
            victim.interrupt("crash")

        victim = sim.process(sleeper())
        sim.process(killer(victim))
        sim.run()
        assert log == [(2.0, "crash")]

    def test_interrupted_process_can_continue(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            log.append(sim.now)

        def killer(victim):
            yield sim.timeout(2.0)
            victim.interrupt()

        victim = sim.process(sleeper())
        sim.process(killer(victim))
        sim.run()
        assert log == [3.0]

    def test_interrupting_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run()
        p.interrupt()  # must not raise
        sim.run()

    def test_stale_wakeup_after_interrupt_ignored(self):
        """The timeout the victim was waiting on still fires; it must not
        resume the process a second time."""
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
                log.append("timeout")
            except Interrupt:
                log.append("interrupt")
            yield sim.timeout(20.0)
            log.append("end")

        def killer(victim):
            yield sim.timeout(1.0)
            victim.interrupt()

        victim = sim.process(sleeper())
        sim.process(killer(victim))
        sim.run()
        assert log == ["interrupt", "end"]
        assert sim.now == 21.0


class TestRun:
    def test_run_until_leaves_clock_at_limit(self):
        sim = Simulator()

        def p():
            yield sim.timeout(10.0)

        sim.process(p())
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()
        assert sim.now == 10.0

    def test_run_empty_heap_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_processed_counter(self):
        sim = Simulator()

        def p():
            yield sim.timeout(1.0)

        sim.process(p())
        sim.run()
        assert sim.events_processed >= 2
