"""Unit tests for the simulated network and failure injection."""

import random

import pytest

from repro.sim.failures import FailureEvent, FailureInjector, random_crash_schedule
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed, Uniform
from repro.sim.network import Network


def make_net(latency=10e-6):
    sim = Simulator()
    net = Network(sim, default_latency=Fixed(latency), rng=random.Random(7))
    a = net.add_host("a")
    b = net.add_host("b")
    return sim, net, a, b


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, net, a, b = make_net(latency=5e-6)
        got = []

        def receiver():
            env = yield b.inbox.get()
            got.append((sim.now, env.payload, env.latency))

        sim.process(receiver())
        net.send("a", "b", "ping")
        sim.run()
        assert got == [(5e-6, "ping", 5e-6)]

    def test_stats_counted(self):
        sim, net, a, b = make_net()
        net.send("a", "b", "x", size=100)
        sim.run()
        assert net.stats.sent == 1
        assert net.stats.delivered == 1
        assert net.stats.bytes_sent == 100

    def test_per_link_latency_override(self):
        sim, net, a, b = make_net(latency=1.0)
        net.set_link_latency("a", "b", Fixed(0.25))
        got = []

        def receiver():
            env = yield b.inbox.get()
            got.append(sim.now)

        sim.process(receiver())
        net.send("a", "b", "x")
        sim.run()
        assert got == [0.25]

    def test_unknown_destination_raises(self):
        sim, net, a, b = make_net()
        with pytest.raises(KeyError):
            net.send("a", "ghost", "x")

    def test_duplicate_host_rejected(self):
        sim, net, a, b = make_net()
        with pytest.raises(ValueError):
            net.add_host("a")

    def test_random_latency_is_seeded(self):
        def run_once():
            sim = Simulator()
            net = Network(sim, default_latency=Uniform(1e-6, 1e-3), rng=random.Random(99))
            net.add_host("a")
            b = net.add_host("b")
            times = []

            def receiver():
                while True:
                    yield b.inbox.get()
                    times.append(sim.now)

            sim.process(receiver())
            for _ in range(10):
                net.send("a", "b", "x")
            sim.run()
            return times

        assert run_once() == run_once()


class TestFailures:
    def test_message_to_dead_host_dropped(self):
        sim, net, a, b = make_net()
        net.kill("b")
        assert not net.send("a", "b", "x")
        sim.run()
        assert net.stats.delivered == 0
        assert net.stats.dropped_dead == 1

    def test_death_during_flight_drops(self):
        sim, net, a, b = make_net(latency=1.0)
        net.send("a", "b", "x")
        sim.run(until=0.5)
        net.kill("b")
        sim.run()
        assert net.stats.delivered == 0
        assert net.stats.dropped_dead == 1

    def test_revive_restores_delivery(self):
        sim, net, a, b = make_net()
        net.kill("b")
        net.revive("b")
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.delivered == 1

    def test_partition_blocks_both_ways(self):
        sim, net, a, b = make_net()
        net.partition("a", "b")
        assert not net.send("a", "b", "x")
        assert not net.send("b", "a", "y")
        assert net.stats.dropped_partition == 2
        net.heal("a", "b")
        assert net.send("a", "b", "z")
        sim.run()
        assert net.stats.delivered == 1


class TestInjector:
    def test_scheduled_crash_and_restart(self):
        sim, net, a, b = make_net()
        crashes, restarts = [], []
        inj = FailureInjector(
            sim,
            net,
            on_crash=lambda h: crashes.append((sim.now, h)),
            on_restart=lambda h: restarts.append((sim.now, h)),
        )
        inj.schedule(
            [
                FailureEvent(at=2.0, kind="crash", target="b"),
                FailureEvent(at=5.0, kind="restart", target="b"),
            ]
        )
        sim.run()
        assert crashes == [(2.0, "b")]
        assert restarts == [(5.0, "b")]
        assert net.hosts["b"].alive

    def test_partition_events(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        inj.schedule(
            [
                FailureEvent(at=1.0, kind="partition", target=("a", "b")),
                FailureEvent(at=2.0, kind="heal", target=("a", "b")),
            ]
        )
        sim.run(until=1.5)
        assert net.partitioned("a", "b")
        sim.run()
        assert not net.partitioned("a", "b")

    def test_unknown_kind_rejected(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        with pytest.raises(ValueError):
            inj.schedule([FailureEvent(at=0.0, kind="meteor", target="b")])


class TestRandomSchedule:
    def test_pairs_and_horizon(self):
        rng = random.Random(3)
        events = random_crash_schedule(
            rng, ["h1", "h2"], horizon=100.0, crashes=5, min_downtime=1.0, max_downtime=5.0
        )
        assert len(events) == 10
        assert all(0 <= e.at <= 100.0 for e in events)
        assert sum(e.kind == "crash" for e in events) == 5
        assert sum(e.kind == "restart" for e in events) == 5
        assert events == sorted(events, key=lambda e: e.at)

    def test_bad_downtime_range(self):
        with pytest.raises(ValueError):
            random_crash_schedule(
                random.Random(0), ["h"], horizon=10, crashes=1, min_downtime=5, max_downtime=1
            )

    def test_windows_non_overlapping_per_host(self):
        """Property: per host, crash/restart windows never overlap.

        Overlap used to be possible (hosts sampled with replacement, no
        collision check): an earlier pair's restart would revive the host
        mid-way through a later pair's downtime.  Sorted by time, a valid
        per-host event sequence must strictly alternate crash/restart.
        """
        for seed in range(25):
            events = random_crash_schedule(
                random.Random(seed),
                ["h1", "h2"],
                horizon=200.0,
                crashes=8,
                min_downtime=5.0,
                max_downtime=15.0,
            )
            assert len(events) == 16
            per_host: dict[str, list] = {}
            for e in events:
                per_host.setdefault(e.target, []).append(e)
            for host, evs in per_host.items():
                evs.sort(key=lambda e: e.at)
                kinds = [e.kind for e in evs]
                assert kinds == ["crash", "restart"] * (len(evs) // 2), (
                    f"seed {seed}: overlapping windows on {host}: "
                    f"{[(e.kind, round(e.at, 2)) for e in evs]}"
                )

    def test_unplaceable_schedule_raises(self):
        """Demanding more downtime than the horizon can hold fails loudly
        instead of looping forever or silently overlapping."""
        with pytest.raises(ValueError):
            random_crash_schedule(
                random.Random(1),
                ["only"],
                horizon=10.0,
                crashes=5,
                min_downtime=9.0,
                max_downtime=9.5,
            )


def drain(sim, host, got):
    def receiver():
        while True:
            env = yield host.inbox.get()
            got.append(env)

    sim.process(receiver())


class TestGrayFailures:
    def test_isolate_blocks_both_directions(self):
        sim, net, a, b = make_net()
        net.isolate("b")
        assert not net.send("a", "b", "x")
        assert not net.send("b", "a", "y")
        assert net.hosts["b"].alive  # unlike kill: the host itself is fine

    def test_unisolate_restores(self):
        sim, net, a, b = make_net()
        net.isolate("b")
        net.unisolate("b")
        assert net.send("a", "b", "x")

    def test_isolate_unknown_host_raises(self):
        sim, net, a, b = make_net()
        with pytest.raises(KeyError):
            net.isolate("ghost")

    def test_oneway_partition_is_directional(self):
        sim, net, a, b = make_net()
        net.partition_oneway("a", "b")
        assert not net.send("a", "b", "x")
        assert net.send("b", "a", "y")
        net.heal_oneway("a", "b")
        assert net.send("a", "b", "x")

    def test_isolation_applies_at_delivery_time(self):
        """A message in flight when the isolation lands is lost too."""
        sim, net, a, b = make_net(latency=1.0)
        got = []
        drain(sim, b, got)
        net.send("a", "b", "x")
        sim.run(until=0.5)
        net.isolate("b")
        sim.run()
        assert got == []


class TestChaos:
    def make_chaos_net(self, **knobs):
        from repro.sim.network import ChaosConfig

        sim = Simulator()
        net = Network(
            sim,
            default_latency=Fixed(1e-3),
            rng=random.Random(7),
            chaos=ChaosConfig(seed=11, **knobs),
        )
        return sim, net, net.add_host("a"), net.add_host("b")

    def test_disabled_chaos_is_not_installed(self):
        """All-zero knobs mean no chaos RNG at all — the healthy path
        draws nothing extra, keeping event streams bit-identical."""
        sim, net, a, b = self.make_chaos_net()
        assert net.chaos is None
        assert net._chaos_rng is None

    def test_drop_probability_eats_messages(self):
        sim, net, a, b = self.make_chaos_net(drop_prob=0.5)
        got = []
        drain(sim, b, got)
        for _ in range(200):
            net.send("a", "b", "x")
        sim.run()
        assert net.stats.chaos_dropped > 0
        assert len(got) == 200 - net.stats.chaos_dropped

    def test_duplication_delivers_twice(self):
        sim, net, a, b = self.make_chaos_net(dup_prob=0.5)
        got = []
        drain(sim, b, got)
        for _ in range(100):
            net.send("a", "b", "x")
        sim.run()
        assert net.stats.chaos_duplicated > 0
        assert len(got) == 100 + net.stats.chaos_duplicated

    def test_delay_spike_slows_delivery(self):
        sim, net, a, b = self.make_chaos_net(delay_spike_prob=1.0, delay_spike=0.5)
        got = []
        drain(sim, b, got)
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.chaos_delayed == 1
        assert got[0].latency > 1e-3  # base latency plus the spike

    def test_chaos_is_seeded(self):
        def run():
            sim, net, a, b = self.make_chaos_net(
                drop_prob=0.1, dup_prob=0.1, delay_spike_prob=0.1
            )
            got = []
            drain(sim, b, got)
            for _ in range(100):
                net.send("a", "b", "x")
            sim.run()
            s = net.stats
            return (s.chaos_dropped, s.chaos_duplicated, s.chaos_delayed, len(got))

        assert run() == run()


class TestInjectorValidation:
    def test_unknown_host_rejected_at_schedule_time(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        with pytest.raises(ValueError, match="unknown host"):
            inj.schedule([FailureEvent(at=1.0, kind="crash", target="ghost")])

    def test_pair_kind_needs_a_pair(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        with pytest.raises(ValueError, match="host pair"):
            inj.schedule([FailureEvent(at=1.0, kind="partition", target="a")])

    def test_pair_kind_with_unknown_member_rejected(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        with pytest.raises(ValueError, match="unknown host"):
            inj.schedule(
                [FailureEvent(at=1.0, kind="partition_oneway", target=("a", "ghost"))]
            )

    def test_host_kind_needs_a_name(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        with pytest.raises(ValueError, match="host name"):
            inj.schedule([FailureEvent(at=1.0, kind="isolate", target=("a", "b"))])

    def test_new_kinds_execute(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        inj.schedule(
            [
                FailureEvent(at=1.0, kind="isolate", target="b"),
                FailureEvent(at=2.0, kind="unisolate", target="b"),
                FailureEvent(at=3.0, kind="partition_oneway", target=("a", "b")),
                FailureEvent(at=4.0, kind="heal_oneway", target=("a", "b")),
            ]
        )
        sim.run(until=1.5)
        assert not net.send("a", "b", "x")
        sim.run(until=2.5)
        assert net.send("a", "b", "x")
        sim.run(until=3.5)
        assert not net.send("a", "b", "x")
        sim.run()
        assert net.send("a", "b", "x")
        assert len(inj.executed) == 4
