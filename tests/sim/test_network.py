"""Unit tests for the simulated network and failure injection."""

import random

import pytest

from repro.sim.failures import FailureEvent, FailureInjector, random_crash_schedule
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed, Uniform
from repro.sim.network import Network


def make_net(latency=10e-6):
    sim = Simulator()
    net = Network(sim, default_latency=Fixed(latency), rng=random.Random(7))
    a = net.add_host("a")
    b = net.add_host("b")
    return sim, net, a, b


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, net, a, b = make_net(latency=5e-6)
        got = []

        def receiver():
            env = yield b.inbox.get()
            got.append((sim.now, env.payload, env.latency))

        sim.process(receiver())
        net.send("a", "b", "ping")
        sim.run()
        assert got == [(5e-6, "ping", 5e-6)]

    def test_stats_counted(self):
        sim, net, a, b = make_net()
        net.send("a", "b", "x", size=100)
        sim.run()
        assert net.stats.sent == 1
        assert net.stats.delivered == 1
        assert net.stats.bytes_sent == 100

    def test_per_link_latency_override(self):
        sim, net, a, b = make_net(latency=1.0)
        net.set_link_latency("a", "b", Fixed(0.25))
        got = []

        def receiver():
            env = yield b.inbox.get()
            got.append(sim.now)

        sim.process(receiver())
        net.send("a", "b", "x")
        sim.run()
        assert got == [0.25]

    def test_unknown_destination_raises(self):
        sim, net, a, b = make_net()
        with pytest.raises(KeyError):
            net.send("a", "ghost", "x")

    def test_duplicate_host_rejected(self):
        sim, net, a, b = make_net()
        with pytest.raises(ValueError):
            net.add_host("a")

    def test_random_latency_is_seeded(self):
        def run_once():
            sim = Simulator()
            net = Network(sim, default_latency=Uniform(1e-6, 1e-3), rng=random.Random(99))
            net.add_host("a")
            b = net.add_host("b")
            times = []

            def receiver():
                while True:
                    yield b.inbox.get()
                    times.append(sim.now)

            sim.process(receiver())
            for _ in range(10):
                net.send("a", "b", "x")
            sim.run()
            return times

        assert run_once() == run_once()


class TestFailures:
    def test_message_to_dead_host_dropped(self):
        sim, net, a, b = make_net()
        net.kill("b")
        assert not net.send("a", "b", "x")
        sim.run()
        assert net.stats.delivered == 0
        assert net.stats.dropped_dead == 1

    def test_death_during_flight_drops(self):
        sim, net, a, b = make_net(latency=1.0)
        net.send("a", "b", "x")
        sim.run(until=0.5)
        net.kill("b")
        sim.run()
        assert net.stats.delivered == 0
        assert net.stats.dropped_dead == 1

    def test_revive_restores_delivery(self):
        sim, net, a, b = make_net()
        net.kill("b")
        net.revive("b")
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.delivered == 1

    def test_partition_blocks_both_ways(self):
        sim, net, a, b = make_net()
        net.partition("a", "b")
        assert not net.send("a", "b", "x")
        assert not net.send("b", "a", "y")
        assert net.stats.dropped_partition == 2
        net.heal("a", "b")
        assert net.send("a", "b", "z")
        sim.run()
        assert net.stats.delivered == 1


class TestInjector:
    def test_scheduled_crash_and_restart(self):
        sim, net, a, b = make_net()
        crashes, restarts = [], []
        inj = FailureInjector(
            sim,
            net,
            on_crash=lambda h: crashes.append((sim.now, h)),
            on_restart=lambda h: restarts.append((sim.now, h)),
        )
        inj.schedule(
            [
                FailureEvent(at=2.0, kind="crash", target="b"),
                FailureEvent(at=5.0, kind="restart", target="b"),
            ]
        )
        sim.run()
        assert crashes == [(2.0, "b")]
        assert restarts == [(5.0, "b")]
        assert net.hosts["b"].alive

    def test_partition_events(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        inj.schedule(
            [
                FailureEvent(at=1.0, kind="partition", target=("a", "b")),
                FailureEvent(at=2.0, kind="heal", target=("a", "b")),
            ]
        )
        sim.run(until=1.5)
        assert net.partitioned("a", "b")
        sim.run()
        assert not net.partitioned("a", "b")

    def test_unknown_kind_rejected(self):
        sim, net, a, b = make_net()
        inj = FailureInjector(sim, net)
        with pytest.raises(ValueError):
            inj.schedule([FailureEvent(at=0.0, kind="meteor", target="b")])


class TestRandomSchedule:
    def test_pairs_and_horizon(self):
        rng = random.Random(3)
        events = random_crash_schedule(
            rng, ["h1", "h2"], horizon=100.0, crashes=5, min_downtime=1.0, max_downtime=5.0
        )
        assert len(events) == 10
        assert all(0 <= e.at <= 100.0 for e in events)
        assert sum(e.kind == "crash" for e in events) == 5
        assert sum(e.kind == "restart" for e in events) == 5
        assert events == sorted(events, key=lambda e: e.at)

    def test_bad_downtime_range(self):
        with pytest.raises(ValueError):
            random_crash_schedule(
                random.Random(0), ["h"], horizon=10, crashes=1, min_downtime=5, max_downtime=1
            )

    def test_windows_non_overlapping_per_host(self):
        """Property: per host, crash/restart windows never overlap.

        Overlap used to be possible (hosts sampled with replacement, no
        collision check): an earlier pair's restart would revive the host
        mid-way through a later pair's downtime.  Sorted by time, a valid
        per-host event sequence must strictly alternate crash/restart.
        """
        for seed in range(25):
            events = random_crash_schedule(
                random.Random(seed),
                ["h1", "h2"],
                horizon=200.0,
                crashes=8,
                min_downtime=5.0,
                max_downtime=15.0,
            )
            assert len(events) == 16
            per_host: dict[str, list] = {}
            for e in events:
                per_host.setdefault(e.target, []).append(e)
            for host, evs in per_host.items():
                evs.sort(key=lambda e: e.at)
                kinds = [e.kind for e in evs]
                assert kinds == ["crash", "restart"] * (len(evs) // 2), (
                    f"seed {seed}: overlapping windows on {host}: "
                    f"{[(e.kind, round(e.at, 2)) for e in evs]}"
                )

    def test_unplaceable_schedule_raises(self):
        """Demanding more downtime than the horizon can hold fails loudly
        instead of looping forever or silently overlapping."""
        with pytest.raises(ValueError):
            random_crash_schedule(
                random.Random(1),
                ["only"],
                horizon=10.0,
                crashes=5,
                min_downtime=9.0,
                max_downtime=9.5,
            )
