"""Unit tests for measurement utilities."""

import pytest

from repro.sim.monitor import Histogram, TimeSeries


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram()
        h.extend(range(1, 101))  # 1..100
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1

    def test_single_value(self):
        h = Histogram()
        h.record(7.0)
        assert h.percentile(50) == 7.0
        assert h.mean == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)
        with pytest.raises(ValueError):
            _ = Histogram().mean

    def test_bad_percentile(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_record_after_query(self):
        h = Histogram()
        h.record(5.0)
        assert h.percentile(50) == 5.0
        h.record(1.0)
        assert h.percentile(0) == 1.0

    def test_summary(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0, 4.0])
        s = h.summary()
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_empty_summary_carries_count_zero(self):
        s = Histogram().summary()
        assert s.count == 0
        # Zeroed (not NaN) fields: empty summaries must survive strict
        # JSON export and merge arithmetic.
        assert s.mean == 0.0 and s.p50 == 0.0 and s.maximum == 0.0
        assert s.format() == "n=0"

    def test_merge_aggregates_samples(self):
        a, b = Histogram(), Histogram()
        a.extend([1.0, 3.0])
        b.extend([2.0, 4.0])
        assert a.merge(b) is a
        assert len(a) == 4
        assert a.percentile(0) == 1.0 and a.percentile(100) == 4.0
        assert a.mean == 2.5
        # The source histogram is untouched.
        assert len(b) == 2

    def test_merge_empty_is_noop(self):
        a = Histogram()
        a.record(5.0)
        a.merge(Histogram())
        assert a.summary().count == 1

    def test_merge_into_fresh_histogram(self):
        per_node = [Histogram(), Histogram(), Histogram()]
        for i, h in enumerate(per_node):
            h.extend([float(i), float(i) + 10.0])
        total = Histogram()
        for h in per_node:
            total.merge(h)
        s = total.summary()
        assert s.count == 6
        assert s.minimum == 0.0 and s.maximum == 12.0

    def test_format(self):
        h = Histogram()
        h.extend([0.001, 0.002])
        text = h.summary().format(scale=1000, unit="ms")
        assert "mean=1.50ms" in text


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        assert len(ts) == 2
        assert ts.last() == 20.0
        assert ts.max() == 20.0

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_steady_state_mean_skips_warmup(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), 0.0 if t < 5 else 100.0)
        assert ts.steady_state_mean(skip_fraction=0.5) == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()
