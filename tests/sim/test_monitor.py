"""Unit tests for measurement utilities."""

import math

import pytest

from repro.sim.monitor import Histogram, TimeSeries


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram()
        h.extend(range(1, 101))  # 1..100
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1

    def test_single_value(self):
        h = Histogram()
        h.record(7.0)
        assert h.percentile(50) == 7.0
        assert h.mean == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)
        with pytest.raises(ValueError):
            _ = Histogram().mean

    def test_bad_percentile(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_record_after_query(self):
        h = Histogram()
        h.record(5.0)
        assert h.percentile(50) == 5.0
        h.record(1.0)
        assert h.percentile(0) == 1.0

    def test_summary(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0, 4.0])
        s = h.summary()
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_empty_summary_is_nan(self):
        s = Histogram().summary()
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_format(self):
        h = Histogram()
        h.extend([0.001, 0.002])
        text = h.summary().format(scale=1000, unit="ms")
        assert "mean=1.50ms" in text


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        assert len(ts) == 2
        assert ts.last() == 20.0
        assert ts.max() == 20.0

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_steady_state_mean_skips_warmup(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), 0.0 if t < 5 else 100.0)
        assert ts.steady_state_mean(skip_fraction=0.5) == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()
