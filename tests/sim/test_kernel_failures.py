"""Kernel failure-propagation paths: AllOf/AnyOf with failing children."""

import pytest

from repro.sim.kernel import Simulator


class TestConditionFailures:
    def test_all_of_fails_on_first_child_failure(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("child died")

        def good():
            yield sim.timeout(5.0)
            return "ok"

        def parent():
            with pytest.raises(ValueError, match="child died"):
                yield sim.all_of([sim.process(bad()), sim.process(good())])
            return sim.now

        p = sim.process(parent())
        sim.run()
        assert p.value == 1.0  # failed as soon as the bad child did

    def test_any_of_fails_if_first_completion_is_failure(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("fast failure")

        def slow():
            yield sim.timeout(10.0)

        def parent():
            with pytest.raises(RuntimeError):
                yield sim.any_of([sim.process(bad()), sim.process(slow())])
            return "handled"

        p = sim.process(parent())
        sim.run()
        assert p.value == "handled"

    def test_any_of_success_beats_later_failure(self):
        sim = Simulator()

        def fast():
            yield sim.timeout(1.0)
            return "winner"

        def bad():
            yield sim.timeout(5.0)
            raise RuntimeError("too late to matter")

        def parent():
            results = yield sim.any_of([sim.process(fast()), sim.process(bad())])
            return list(results.values())

        p = sim.process(parent())
        sim.run()
        assert p.value == ["winner"]

    def test_unjoined_process_failure_is_contained(self):
        """A failing process nobody joins must not crash the simulation."""
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("nobody is listening")

        def bystander():
            yield sim.timeout(5.0)
            return "unaffected"

        doomed = sim.process(bad())
        p = sim.process(bystander())
        sim.run()
        assert p.value == "unaffected"
        assert doomed.triggered
        with pytest.raises(ValueError):
            doomed.value

    def test_joining_already_failed_process_raises(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise KeyError("gone")

        doomed = sim.process(bad())

        def late_joiner():
            yield sim.timeout(3.0)
            with pytest.raises(KeyError):
                yield doomed
            return "saw it"

        p = sim.process(late_joiner())
        sim.run()
        assert p.value == "saw it"

    def test_event_fail_propagates_to_waiter(self):
        sim = Simulator()
        gate = sim.event()

        def failer():
            yield sim.timeout(2.0)
            gate.fail(OSError("broken gate"))

        def waiter():
            with pytest.raises(OSError):
                yield gate
            return sim.now

        p = sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert p.value == 2.0
