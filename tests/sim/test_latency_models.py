"""Unit tests for the latency distribution models."""

import random

import pytest

from repro.sim.latency import Empirical, Fixed, LogNormal, Uniform


class TestFixed:
    def test_sample_is_constant(self):
        m = Fixed(0.005)
        rng = random.Random(0)
        assert all(m.sample(rng) == 0.005 for _ in range(10))
        assert m.mean == 0.005

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Fixed(-1.0)

    def test_repr(self):
        assert "0.005" in repr(Fixed(0.005))


class TestUniform:
    def test_samples_within_bounds(self):
        m = Uniform(1e-3, 2e-3)
        rng = random.Random(1)
        for _ in range(200):
            assert 1e-3 <= m.sample(rng) <= 2e-3

    def test_mean(self):
        assert Uniform(1.0, 3.0).mean == 2.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 1.0)


class TestLogNormal:
    def test_median_approximately_respected(self):
        m = LogNormal(median=100e-6, sigma=0.5)
        rng = random.Random(2)
        samples = sorted(m.sample(rng) for _ in range(2001))
        measured_median = samples[1000]
        assert 70e-6 < measured_median < 140e-6

    def test_right_skew(self):
        """Heavy tail: mean exceeds the median."""
        m = LogNormal(median=1.0, sigma=1.0)
        assert m.mean > 1.0
        rng = random.Random(3)
        samples = [m.sample(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) > sorted(samples)[1000] * 1.2

    def test_all_positive(self):
        m = LogNormal(median=1e-4, sigma=2.0)
        rng = random.Random(4)
        assert all(m.sample(rng) > 0 for _ in range(500))

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=-1.0)


class TestEmpirical:
    def test_resamples_only_given_values(self):
        m = Empirical([0.001, 0.002, 0.003])
        rng = random.Random(5)
        for _ in range(100):
            assert m.sample(rng) in (0.001, 0.002, 0.003)

    def test_mean(self):
        assert Empirical([1.0, 3.0]).mean == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])

    def test_repr_shows_count(self):
        assert "n=2" in repr(Empirical([1.0, 2.0]))
