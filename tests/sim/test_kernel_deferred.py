"""Edge cases for the deferred-resume ring and the pooled-timeout path.

The hot-path rework replaced bootstrap/poke ``Event`` allocations with the
``Simulator._ready`` ring and parked sleeping processes in a pooled
timeout's ``_waiter`` slot.  These tests pin the behaviors most at risk
from that change: interrupts racing in-flight ring entries, yielding an
event that already fired, conditions over mixed fired/pending children,
and — most importantly — that dispatch ordering is *identical* to what
the allocated-event design produced.
"""

import pytest

from repro.sim.errors import Interrupt
from repro.sim.kernel import Event, Simulator


class TestInterruptWhileDeferredInFlight:
    def test_interrupt_beats_pending_bootstrap(self):
        """A process interrupted before its bootstrap ring entry runs.

        ``sim.process()`` queues the first resume through the ring; an
        interrupt queued right after must still arrive as an Interrupt at
        the generator's first yield point, not crash or double-resume.
        """
        sim = Simulator()
        log = []

        def victim():
            try:
                yield sim.sleep(10.0)
                log.append("slept")
            except Interrupt as i:
                log.append(("interrupted", i.cause, sim.now))

        def aggressor(proc):
            proc.interrupt(cause="early")
            yield sim.sleep(0.0)

        p = sim.process(victim())
        sim.process(aggressor(p))
        sim.run()
        assert log == [("interrupted", "early", 0.0)]

    def test_interrupt_while_ring_wakeup_in_flight(self):
        """Trigger + interrupt queued for the same instant: trigger wins.

        The waiter's wakeup enters the ring (its event succeeded) before
        the interrupter's ring entry; the sequence discipline means the
        wakeup resumes the process first, and the later Interrupt lands at
        the *next* yield point.
        """
        sim = Simulator()
        log = []
        gate = sim.event()

        def waiter():
            try:
                got = yield gate
                log.append(("woke", got, sim.now))
                yield sim.sleep(5.0)
                log.append("finished sleep")
            except Interrupt:
                log.append(("interrupted", sim.now))

        def aggressor(proc):
            yield sim.sleep(1.0)
            gate.succeed("payload")   # waiter's resume enters the queue...
            proc.interrupt()          # ...then the interrupt enters the ring

        p = sim.process(waiter())
        sim.process(aggressor(p))
        sim.run()
        assert log == [("woke", "payload", 1.0), ("interrupted", 1.0)]

    def test_interrupt_to_death_cancels_in_flight_wakeup(self):
        """A wakeup already in the ring must not resurrect a dead process.

        The interrupt kills the process (it does not catch Interrupt)
        while its event wakeup is still queued; the stale ring entry must
        notice the process is dead and do nothing.
        """
        sim = Simulator()
        log = []
        gate = sim.event()

        def fragile():
            got = yield gate  # no except: Interrupt kills the process
            log.append(("woke", got))

        def aggressor(proc):
            yield sim.sleep(1.0)
            proc.interrupt()          # throw queued first: kills fragile
            gate.succeed("too-late")  # wakeup fires after death
            yield sim.sleep(1.0)
            log.append(("alive", proc.is_alive))

        p = sim.process(fragile())
        sim.process(aggressor(p))
        sim.run()
        assert log == [("alive", False)]
        assert isinstance(p._exception, Interrupt)

    def test_interrupt_while_sleeping_detaches_pooled_waiter(self):
        """Interrupting a sleeper must clear the pooled timeout's _waiter.

        Otherwise the timeout still fires at its scheduled time and
        resumes a process that long since moved on — and the recycled
        timeout would carry a stale waiter into its next use.
        """
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.sleep(10.0)
                log.append("overslept")
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield sim.sleep(1.0)
            log.append(("resumed", sim.now))

        def aggressor(proc):
            yield sim.sleep(2.0)
            proc.interrupt()

        p = sim.process(sleeper())
        sim.process(aggressor(p))
        sim.run()
        # One interrupt, one clean resume; the orphaned 10.0 timeout fires
        # into the void without waking anyone.
        assert log == [("interrupted", 2.0), ("resumed", 3.0)]
        assert sim.now == 10.0  # the detached timeout still drains the heap


class TestYieldAlreadyProcessed:
    def test_yield_processed_event_resumes_with_value(self):
        """Yielding an event that already fired resumes via the ring,
        carrying the event's stored value, at the current time."""
        sim = Simulator()
        log = []
        ev = sim.event()
        ev.succeed(42)

        def late():
            yield sim.sleep(3.0)  # ev is processed long before this wakes
            got = yield ev
            log.append((got, sim.now))

        sim.process(late())
        sim.run()
        assert log == [(42, 3.0)]

    def test_yield_processed_failed_event_raises(self):
        sim = Simulator()
        log = []
        ev = sim.event()
        ev.fail(RuntimeError("boom"))

        def late():
            yield sim.sleep(1.0)
            try:
                yield ev
            except RuntimeError as err:
                log.append((str(err), sim.now))

        sim.process(late())
        sim.run()
        assert log == [("boom", 1.0)]

    def test_processed_wakeup_ordering_vs_fresh_spawn(self):
        """A ring wakeup from a processed event keeps FIFO order against
        other ring entries queued at the same instant."""
        sim = Simulator()
        log = []
        ev = sim.event()
        ev.succeed("old")

        def a():
            yield ev
            log.append("a")

        def b():
            yield from ()
            log.append("b")

        def driver():
            yield sim.sleep(1.0)
            sim.process(a())  # bootstrap enters ring, then waits on ev → ring again
            sim.process(b())  # bootstrap enters ring after a's
            yield sim.sleep(0.0)

        sim.process(driver())
        sim.run()
        # b's bootstrap entry was queued before a's processed-event wakeup.
        assert log == ["b", "a"]


class TestAnyOfMixedChildren:
    def test_any_of_with_already_fired_child_triggers_immediately(self):
        sim = Simulator()
        log = []
        done = sim.event()
        done.succeed("ready")

        def p():
            pending = sim.timeout(50.0)
            results = yield sim.any_of([done, pending])
            log.append((results, sim.now))

        sim.process(p())
        sim.run()
        assert log == [({done: "ready"}, 0.0)]

    def test_any_of_with_already_failed_child_raises(self):
        sim = Simulator()
        log = []
        dead = sim.event()
        dead.fail(ValueError("bad child"))

        def p():
            try:
                yield sim.any_of([dead, sim.timeout(50.0)])
            except ValueError as err:
                log.append(str(err))

        sim.process(p())
        sim.run()
        assert log == ["bad child"]

    def test_any_of_mixed_reports_only_done_children(self):
        sim = Simulator()
        log = []

        def p():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(9.0, value="slow")
            fired = sim.event()
            fired.succeed("pre")
            results = yield sim.any_of([fast, slow, fired])
            log.append((sorted(results.values()), sim.now))

        sim.process(p())
        sim.run()
        # The pre-fired child wins at t=0; the pending timeouts are absent.
        assert log == [(["pre"], 0.0)]

    def test_all_of_mixed_waits_for_pending(self):
        sim = Simulator()
        log = []

        def p():
            fired = sim.event()
            fired.succeed(1)
            t = sim.timeout(4.0, value=2)
            results = yield sim.all_of([fired, t])
            log.append((sorted(results.values()), sim.now))

        sim.process(p())
        sim.run()
        assert log == [([1, 2], 4.0)]


class TestIdenticalOrdering:
    """The ring must reproduce the allocated-event design's order exactly:
    global (time, seq) order, with ring entries stamped at queue time."""

    def test_same_time_mixed_sources_run_in_seq_order(self):
        sim = Simulator()
        log = []

        def worker(tag):
            yield from ()
            log.append(tag)

        def ticker(tag, delay):
            yield sim.sleep(delay)
            log.append(tag)

        def driver():
            yield sim.sleep(1.0)
            # All at t=1.0 — interleave heap events (zero timeouts) with
            # ring entries (bootstraps) in strict creation order.
            sim.process(ticker("t-a", 0.0))   # heap, seq n
            sim.process(worker("w-a"))        # ring, seq n+1
            sim.process(ticker("t-b", 0.0))   # heap, seq n+2
            sim.process(worker("w-b"))        # ring, seq n+3
            yield sim.sleep(0.0)
            log.append("driver-done")

        sim.process(driver())
        sim.run()
        # Strict (time, seq) order at t=1.0: the four bootstrap ring
        # entries drain first (the workers finish outright; the tickers
        # only advance to their yield, queueing zero-timeouts with *later*
        # sequence numbers), then the heap serves driver's sleep(0.0)
        # (queued before the tickers' timeouts) and finally the tickers.
        assert log == ["w-a", "w-b", "driver-done", "t-a", "t-b"]

    def test_interrupt_and_succeed_ordering_is_fifo(self):
        sim = Simulator()
        log = []
        gates = [sim.event() for _ in range(3)]

        def waiter(i):
            try:
                got = yield gates[i]
                log.append((i, got))
            except Interrupt:
                log.append((i, "interrupted"))

        procs = [sim.process(waiter(i)) for i in range(3)]

        def driver():
            yield sim.sleep(1.0)
            gates[1].succeed("g1")   # seq k
            procs[0].interrupt()     # seq k+1
            gates[2].succeed("g2")   # seq k+2

        sim.process(driver())
        sim.run()
        assert log == [(1, "g1"), (0, "interrupted"), (2, "g2")]

    def test_deterministic_across_runs(self):
        """Same program, two fresh simulators → identical event ordering."""

        def program():
            sim = Simulator()
            log = []

            def churn(i):
                yield sim.sleep(float(i % 3))
                log.append(("churn", i, sim.now))
                child = sim.process(leaf(i))
                yield child
                log.append(("joined", i, sim.now))

            def leaf(i):
                yield sim.sleep(0.0)
                log.append(("leaf", i, sim.now))

            for i in range(6):
                sim.process(churn(i))
            sim.run()
            return log, sim.events_processed

        first = program()
        second = program()
        assert first == second

    def test_step_granularity_matches_run(self):
        """Driving with step() yields the same trace as run()."""

        def build():
            sim = Simulator()
            log = []

            def p(i):
                yield sim.sleep(float(i))
                log.append((i, sim.now))

            for i in range(4):
                sim.process(p(i))
            return sim, log

        sim_a, log_a = build()
        sim_a.run()

        sim_b, log_b = build()
        while sim_b._heap or sim_b._ready:
            sim_b.step()
        assert log_a == log_b
        assert sim_a.events_processed == sim_b.events_processed


class TestPooledTimeoutReuse:
    def test_recycled_timeout_carries_no_stale_state(self):
        """Reused pool storage must carry only its own delay/value.

        A fired timeout is recycled *after* its waiter resumes, so a chain
        of sleeps reuses the first object on the third sleep: sleep-2
        allocates while sleep-1 is still being fired, then sleep-1's
        storage lands in the pool and sleep-3 picks it up.
        """
        sim = Simulator()
        log = []
        timeouts = []

        def p():
            for delay, value in [(1.0, "a"), (2.0, "b"), (3.0, "c")]:
                t = sim.sleep(delay, value=value)
                timeouts.append(t)
                got = yield t
                log.append((got, sim.now))

        sim.process(p())
        sim.run()
        assert log == [("a", 1.0), ("b", 3.0), ("c", 6.0)]
        # Identity proof of recycling: the third sleep got the first
        # object's storage back, with none of its old state.
        assert timeouts[2] is timeouts[0]
        assert timeouts[1] is not timeouts[0]
        assert len(sim._timeout_pool) == 2

    def test_external_event_not_pooled(self):
        """Plain Events constructed by user code never enter the pool."""
        sim = Simulator()
        ev = Event(sim)
        ev.succeed()

        def p():
            yield ev

        sim.process(p())
        sim.run()
        assert sim._timeout_pool == []
