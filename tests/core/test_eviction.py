"""Unit tests for the sliding-window eviction clock."""

from repro.core.crc32 import hash_name
from repro.core.eviction import WINDOW_COUNT, EvictionWindows
from repro.core.location import LocationObject


def make(key, windows=None):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    if windows is not None:
        windows.add(obj)
    return obj


class TestAdd:
    def test_add_stamps_current_window(self):
        w = EvictionWindows()
        obj = make("/a", w)
        assert obj.t_a == w.current_window
        assert obj.chain_window == obj.t_a
        assert w.chain_len(obj.t_a) == 1

    def test_window_advances_with_ticks(self):
        w = EvictionWindows()
        assert w.current_window == 0
        w.tick()
        assert w.current_window == 1
        a = make("/a", w)
        assert a.t_a == 1

    def test_window_wraps_mod_64(self):
        w = EvictionWindows()
        for _ in range(WINDOW_COUNT):
            w.tick()
        assert w.current_window == 0
        assert w.t_w == WINDOW_COUNT


class TestTickExpiry:
    def test_object_lives_full_lifetime(self):
        """An object added in window 0 expires when the clock returns to
        window 0 — i.e. after exactly 64 ticks."""
        w = EvictionWindows()
        obj = make("/a", w)
        for _ in range(WINDOW_COUNT - 1):
            result = w.tick()
            assert obj not in result.hidden
            assert not obj.hidden
        result = w.tick()  # 64th tick: back to window 0
        assert obj in result.hidden
        assert obj.hidden

    def test_tick_only_touches_own_window(self):
        w = EvictionWindows()
        obj0 = make("/w0", w)
        w.tick()
        obj1 = make("/w1", w)
        res = w.tick()  # sweeps window 2: empty
        assert res.swept == 0
        assert not obj0.hidden and not obj1.hidden

    def test_hidden_objects_collected_on_sweep(self):
        """Explicitly hidden objects are reported for removal when their
        chain is swept, even though their lifetime hasn't expired."""
        w = EvictionWindows()
        obj = make("/a", w)
        obj.hide()
        for _ in range(WINDOW_COUNT):
            result = w.tick()
        assert obj in result.hidden

    def test_stats_accumulate(self):
        w = EvictionWindows()
        for i in range(10):
            make(f"/f{i}", w)
        for _ in range(WINDOW_COUNT):
            w.tick()
        assert w.total_hidden == 10
        assert w.total_swept >= 10


class TestDeferredRechaining:
    def test_refresh_updates_ta_not_chain(self):
        w = EvictionWindows()
        obj = make("/a", w)
        w.tick()
        w.tick()
        w.refresh(obj)
        assert obj.t_a == 2
        assert obj.chain_window == 0  # still physically in the old chain

    def test_sweep_rechains_refreshed_object(self):
        w = EvictionWindows()
        obj = make("/a", w)
        w.tick()
        w.refresh(obj)  # now wants window 1
        # Advance until window 0 is swept again (63 more ticks).
        for _ in range(WINDOW_COUNT - 1):
            result = w.tick()
        assert result.window == 0
        assert result.rechained == 1
        assert not obj.hidden
        assert obj.chain_window == 1
        w.check_invariants()

    def test_refreshed_object_expires_from_new_window(self):
        w = EvictionWindows()
        obj = make("/a", w)
        w.tick()
        w.refresh(obj)
        # Survive the sweep of window 0, then expire when window 1 recycles.
        hidden_at = None
        for tick in range(2, 3 * WINDOW_COUNT):
            result = w.tick()
            if obj in result.hidden:
                hidden_at = w.t_w
                break
        assert hidden_at is not None
        assert (hidden_at % WINDOW_COUNT) == 1

    def test_repeated_refresh_keeps_object_alive_indefinitely(self):
        w = EvictionWindows()
        obj = make("/hot", w)
        for _ in range(5 * WINDOW_COUNT):
            w.tick()
            w.refresh(obj)
        assert not obj.hidden


class TestUnchain:
    def test_unchain_removes(self):
        w = EvictionWindows()
        obj = make("/a", w)
        assert w.unchain(obj)
        assert w.population() == 0
        assert obj.chain_window == -1

    def test_unchain_twice_is_noop(self):
        w = EvictionWindows()
        obj = make("/a", w)
        w.unchain(obj)
        assert not w.unchain(obj)

    def test_unchain_never_chained(self):
        w = EvictionWindows()
        obj = make("/a")
        assert not w.unchain(obj)


class TestSpreadCost:
    def test_each_tick_sweeps_roughly_one_64th(self):
        """With uniform insertion the per-tick sweep is ~1/64 of the cache —
        the paper's 1.6% claim."""
        w = EvictionWindows()
        per_window = 50
        for t in range(WINDOW_COUNT):
            for i in range(per_window):
                make(f"/w{t}/f{i}", w)
            w.tick()
        population = w.population()
        result = w.tick()
        assert result.swept == per_window
        assert result.swept <= population * (1.5 / WINDOW_COUNT)
