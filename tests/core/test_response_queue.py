"""Unit tests for the 1024-anchor fast response queue."""

import pytest

from repro.core.crc32 import hash_name
from repro.core.location import NO_QUEUE, LocationObject
from repro.core.response_queue import AccessMode, ResponseQueue


def make_loc(key="/store/f.root"):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestAddWaiter:
    def test_first_add_reports_queue_was_empty(self):
        q = ResponseQueue()
        loc = make_loc()
        out = q.add_waiter(loc, AccessMode.READ, "client-1", now=0.0)
        assert out.accepted and out.queue_was_empty

    def test_second_add_does_not_rewake(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        out = q.add_waiter(loc, AccessMode.READ, "c2", now=0.001)
        assert out.accepted and not out.queue_was_empty

    def test_same_loc_same_mode_shares_anchor(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        q.add_waiter(loc, AccessMode.READ, "c2", now=0.0)
        assert q.active_anchors == 1
        assert q.pending_waiters() == 2

    def test_read_and_write_use_separate_anchors(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        assert q.active_anchors == 2
        assert loc.rq_read != NO_QUEUE and loc.rq_write != NO_QUEUE
        assert loc.rq_read != loc.rq_write

    def test_exhaustion_rejected(self):
        q = ResponseQueue(anchors=2)
        locs = [make_loc(f"/f{i}") for i in range(3)]
        assert q.add_waiter(locs[0], AccessMode.READ, "a", 0.0).accepted
        assert q.add_waiter(locs[1], AccessMode.READ, "b", 0.0).accepted
        out = q.add_waiter(locs[2], AccessMode.READ, "c", 0.0)
        assert not out.accepted
        assert q.rejected == 1

    def test_zero_anchors_invalid(self):
        with pytest.raises(ValueError):
            ResponseQueue(anchors=0)


class TestResponses:
    def test_response_releases_readers_with_server(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        q.add_waiter(loc, AccessMode.READ, "c2", now=0.0)
        released = q.on_response(loc, server=7, write_capable=False)
        assert {w.payload for w in released} == {"c1", "c2"}
        assert all(w.server == 7 for w in released)
        assert loc.rq_read == NO_QUEUE
        assert q.active_anchors == 0

    def test_read_only_response_leaves_writers_waiting(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        released = q.on_response(loc, server=3, write_capable=False)
        assert [w.payload for w in released] == ["r"]
        assert q.pending_waiters() == 1

    def test_write_capable_response_releases_both(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        released = q.on_response(loc, server=3, write_capable=True)
        assert {w.payload for w in released} == {"r", "w"}

    def test_response_with_no_waiters_is_empty(self):
        q = ResponseQueue()
        assert q.on_response(make_loc(), server=1, write_capable=True) == []

    def test_anchor_recycled_after_response(self):
        q = ResponseQueue(anchors=1)
        loc1, loc2 = make_loc("/a"), make_loc("/b")
        q.add_waiter(loc1, AccessMode.READ, "c", now=0.0)
        q.on_response(loc1, server=0, write_capable=False)
        assert q.add_waiter(loc2, AccessMode.READ, "d", now=0.0).accepted


class TestLooseCoupling:
    def test_stale_association_detected_after_generation_bump(self):
        """If the location object is recycled, its stored queue index must
        not resolve — the anchor belongs to the *old* object."""
        q = ResponseQueue()
        loc = make_loc("/a")
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        idx = loc.rq_read
        loc.hide()  # generation bump, as removal would do
        # The association check must fail, so a response releases nothing.
        assert q.on_response(loc, server=1, write_capable=True) == []
        # And a new waiter gets a fresh anchor rather than joining idx.
        loc.assign("/b", hash_name("/b"), c_n=0, t_a=0)
        q.add_waiter(loc, AccessMode.READ, "d", now=0.0)
        assert q.pending_waiters() >= 1

    def test_anchor_reuse_invalidates_old_reference(self):
        q = ResponseQueue(anchors=1)
        loc1, loc2 = make_loc("/a"), make_loc("/b")
        q.add_waiter(loc1, AccessMode.READ, "c1", now=0.0)
        q.expire(now=10.0)  # anchor reclaimed, stamp bumped
        q.add_waiter(loc2, AccessMode.READ, "c2", now=10.0)
        # loc1 still holds the old index; it must not hijack loc2's anchor.
        assert q.on_response(loc1, server=5, write_capable=True) == []
        released = q.on_response(loc2, server=5, write_capable=True)
        assert [w.payload for w in released] == ["c2"]


class TestExpiry:
    def test_expire_before_period_is_noop(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        assert q.expire(now=0.1) == []
        assert q.pending_waiters() == 1

    def test_expire_after_period_times_out(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        expired = q.expire(now=0.14)
        assert [w.payload for w in expired] == ["c"]
        assert all(w.server == -1 for w in expired)
        assert loc.rq_read == NO_QUEUE
        assert q.timeouts == 1

    def test_expiry_is_fifo_partial(self):
        q = ResponseQueue(period=0.133)
        early, late = make_loc("/a"), make_loc("/b")
        q.add_waiter(early, AccessMode.READ, "early", now=0.0)
        q.add_waiter(late, AccessMode.READ, "late", now=0.1)
        expired = q.expire(now=0.15)
        assert [w.payload for w in expired] == ["early"]
        assert q.pending_waiters() == 1

    def test_responded_anchor_not_expired(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.on_response(loc, server=2, write_capable=False)
        assert q.expire(now=1.0) == []

    def test_next_expiry(self):
        q = ResponseQueue(period=0.133)
        assert q.next_expiry() is None
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=1.0)
        assert q.next_expiry() == pytest.approx(1.133)
        q.on_response(loc, server=0, write_capable=False)
        assert q.next_expiry() is None

    def test_fast_response_beats_timeout_stats(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.on_response(loc, server=0, write_capable=False)
        assert q.fast_responses == 1 and q.timeouts == 0


class TestPerAnchorWindows:
    def test_explicit_window_overrides_period(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0, window=0.5)
        assert q.next_expiry() == pytest.approx(0.5)
        assert q.expire(now=0.2) == []
        assert [w.payload for w in q.expire(now=0.51)] == ["c"]

    def test_join_keeps_the_running_window(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0, window=0.5)
        q.add_waiter(loc, AccessMode.READ, "c2", now=0.3, window=9.0)
        # The joiner's window is ignored: the anchor's clock already runs.
        assert q.next_expiry() == pytest.approx(0.5)
        assert len(q.expire(now=0.51)) == 2

    def test_mixed_windows_expire_out_of_fifo_order(self):
        q = ResponseQueue(period=0.133)
        long_w, short_w = make_loc("/a"), make_loc("/b")
        q.add_waiter(long_w, AccessMode.READ, "long", now=0.0, window=1.0)
        q.add_waiter(short_w, AccessMode.READ, "short", now=0.1)
        assert [w.payload for w in q.expire(now=0.3)] == ["short"]
        assert [w.payload for w in q.expire(now=1.1)] == ["long"]

    def test_has_anchor(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        assert not q.has_anchor(loc, AccessMode.READ)
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        assert q.has_anchor(loc, AccessMode.READ)
        assert not q.has_anchor(loc, AccessMode.WRITE)
        q.expire(now=1.0)
        assert not q.has_anchor(loc, AccessMode.READ)


class TestLateResponses:
    def test_late_response_releases_parked_waiters(self):
        q = ResponseQueue(period=0.133, park_ttl=5.0)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.expire(now=0.14)
        assert q.parked_waiters() == 1
        released = q.on_late_response(loc, server=4, write_capable=False, now=0.16)
        assert [w.payload for w in released] == ["c"]
        assert released[0].server == 4
        assert q.parked_waiters() == 0
        assert q.late_responses == 1

    def test_park_ttl_zero_disables_parking(self):
        q = ResponseQueue(period=0.133, park_ttl=0.0)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.expire(now=0.14)
        assert q.parked_waiters() == 0
        assert q.on_late_response(loc, server=4, write_capable=True, now=0.16) == []

    def test_late_release_survives_anchor_stamp_reuse(self):
        """Parking is keyed by location key+generation, not by anchor: the
        expired anchor being reclaimed and reused for another file must not
        misroute (or block) the late answer."""
        q = ResponseQueue(anchors=1, period=0.133, park_ttl=5.0)
        loc, other = make_loc("/a"), make_loc("/b")
        q.add_waiter(loc, AccessMode.READ, "slow", now=0.0)
        q.expire(now=0.14)
        # The single anchor is immediately reused (stamp bumped) by /b.
        assert q.add_waiter(other, AccessMode.READ, "fresh", now=0.15).accepted
        released = q.on_late_response(loc, server=2, write_capable=True, now=0.2)
        assert [w.payload for w in released] == ["slow"]
        # /b's live anchor is untouched by /a's late answer.
        assert q.pending_waiters() == 1

    def test_read_only_late_response_keeps_parked_writers(self):
        q = ResponseQueue(period=0.133, park_ttl=5.0)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        q.expire(now=0.14)
        released = q.on_late_response(loc, server=1, write_capable=False, now=0.2)
        assert [w.payload for w in released] == ["r"]
        assert q.parked_waiters() == 1
        # A later write-capable answer picks up the parked writer.
        released = q.on_late_response(loc, server=2, write_capable=True, now=0.3)
        assert [w.payload for w in released] == ["w"]
        assert q.parked_waiters() == 0

    def test_duplicate_late_responses_release_once(self):
        q = ResponseQueue(period=0.133, park_ttl=5.0)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.expire(now=0.14)
        assert len(q.on_late_response(loc, server=1, write_capable=True, now=0.2)) == 1
        assert q.on_late_response(loc, server=2, write_capable=True, now=0.21) == []
        assert q.late_responses == 1

    def test_parked_waiters_purged_after_ttl(self):
        q = ResponseQueue(period=0.133, park_ttl=1.0)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.expire(now=0.14)
        assert q.parked_waiters() == 1
        q.expire(now=2.0)  # purge rides the expiry sweep
        assert q.parked_waiters() == 0
        # Past the TTL the client has retried: nothing to release.
        assert q.on_late_response(loc, server=1, write_capable=True, now=2.1) == []

    def test_generation_bump_orphans_parked_entry(self):
        q = ResponseQueue(period=0.133, park_ttl=5.0)
        loc = make_loc("/a")
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.expire(now=0.14)
        loc.hide()  # recycled: any late answer now concerns a dead epoch
        assert q.on_late_response(loc, server=1, write_capable=True, now=0.2) == []

    def test_unpark_withdraws_one_waiter(self):
        q = ResponseQueue(period=0.133, park_ttl=5.0)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        q.add_waiter(loc, AccessMode.READ, "c2", now=0.0)
        parked = q.expire(now=0.14)
        assert q.unpark(loc, parked[0])
        assert not q.unpark(loc, parked[0])  # already gone
        released = q.on_late_response(loc, server=1, write_capable=True, now=0.2)
        assert [w.payload for w in released] == ["c2"]
