"""Unit tests for the 1024-anchor fast response queue."""

import pytest

from repro.core.crc32 import hash_name
from repro.core.location import NO_QUEUE, LocationObject
from repro.core.response_queue import AccessMode, ResponseQueue


def make_loc(key="/store/f.root"):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestAddWaiter:
    def test_first_add_reports_queue_was_empty(self):
        q = ResponseQueue()
        loc = make_loc()
        out = q.add_waiter(loc, AccessMode.READ, "client-1", now=0.0)
        assert out.accepted and out.queue_was_empty

    def test_second_add_does_not_rewake(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        out = q.add_waiter(loc, AccessMode.READ, "c2", now=0.001)
        assert out.accepted and not out.queue_was_empty

    def test_same_loc_same_mode_shares_anchor(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        q.add_waiter(loc, AccessMode.READ, "c2", now=0.0)
        assert q.active_anchors == 1
        assert q.pending_waiters() == 2

    def test_read_and_write_use_separate_anchors(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        assert q.active_anchors == 2
        assert loc.rq_read != NO_QUEUE and loc.rq_write != NO_QUEUE
        assert loc.rq_read != loc.rq_write

    def test_exhaustion_rejected(self):
        q = ResponseQueue(anchors=2)
        locs = [make_loc(f"/f{i}") for i in range(3)]
        assert q.add_waiter(locs[0], AccessMode.READ, "a", 0.0).accepted
        assert q.add_waiter(locs[1], AccessMode.READ, "b", 0.0).accepted
        out = q.add_waiter(locs[2], AccessMode.READ, "c", 0.0)
        assert not out.accepted
        assert q.rejected == 1

    def test_zero_anchors_invalid(self):
        with pytest.raises(ValueError):
            ResponseQueue(anchors=0)


class TestResponses:
    def test_response_releases_readers_with_server(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c1", now=0.0)
        q.add_waiter(loc, AccessMode.READ, "c2", now=0.0)
        released = q.on_response(loc, server=7, write_capable=False)
        assert {w.payload for w in released} == {"c1", "c2"}
        assert all(w.server == 7 for w in released)
        assert loc.rq_read == NO_QUEUE
        assert q.active_anchors == 0

    def test_read_only_response_leaves_writers_waiting(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        released = q.on_response(loc, server=3, write_capable=False)
        assert [w.payload for w in released] == ["r"]
        assert q.pending_waiters() == 1

    def test_write_capable_response_releases_both(self):
        q = ResponseQueue()
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "r", now=0.0)
        q.add_waiter(loc, AccessMode.WRITE, "w", now=0.0)
        released = q.on_response(loc, server=3, write_capable=True)
        assert {w.payload for w in released} == {"r", "w"}

    def test_response_with_no_waiters_is_empty(self):
        q = ResponseQueue()
        assert q.on_response(make_loc(), server=1, write_capable=True) == []

    def test_anchor_recycled_after_response(self):
        q = ResponseQueue(anchors=1)
        loc1, loc2 = make_loc("/a"), make_loc("/b")
        q.add_waiter(loc1, AccessMode.READ, "c", now=0.0)
        q.on_response(loc1, server=0, write_capable=False)
        assert q.add_waiter(loc2, AccessMode.READ, "d", now=0.0).accepted


class TestLooseCoupling:
    def test_stale_association_detected_after_generation_bump(self):
        """If the location object is recycled, its stored queue index must
        not resolve — the anchor belongs to the *old* object."""
        q = ResponseQueue()
        loc = make_loc("/a")
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        idx = loc.rq_read
        loc.hide()  # generation bump, as removal would do
        # The association check must fail, so a response releases nothing.
        assert q.on_response(loc, server=1, write_capable=True) == []
        # And a new waiter gets a fresh anchor rather than joining idx.
        loc.assign("/b", hash_name("/b"), c_n=0, t_a=0)
        q.add_waiter(loc, AccessMode.READ, "d", now=0.0)
        assert q.pending_waiters() >= 1

    def test_anchor_reuse_invalidates_old_reference(self):
        q = ResponseQueue(anchors=1)
        loc1, loc2 = make_loc("/a"), make_loc("/b")
        q.add_waiter(loc1, AccessMode.READ, "c1", now=0.0)
        q.expire(now=10.0)  # anchor reclaimed, stamp bumped
        q.add_waiter(loc2, AccessMode.READ, "c2", now=10.0)
        # loc1 still holds the old index; it must not hijack loc2's anchor.
        assert q.on_response(loc1, server=5, write_capable=True) == []
        released = q.on_response(loc2, server=5, write_capable=True)
        assert [w.payload for w in released] == ["c2"]


class TestExpiry:
    def test_expire_before_period_is_noop(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        assert q.expire(now=0.1) == []
        assert q.pending_waiters() == 1

    def test_expire_after_period_times_out(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        expired = q.expire(now=0.14)
        assert [w.payload for w in expired] == ["c"]
        assert all(w.server == -1 for w in expired)
        assert loc.rq_read == NO_QUEUE
        assert q.timeouts == 1

    def test_expiry_is_fifo_partial(self):
        q = ResponseQueue(period=0.133)
        early, late = make_loc("/a"), make_loc("/b")
        q.add_waiter(early, AccessMode.READ, "early", now=0.0)
        q.add_waiter(late, AccessMode.READ, "late", now=0.1)
        expired = q.expire(now=0.15)
        assert [w.payload for w in expired] == ["early"]
        assert q.pending_waiters() == 1

    def test_responded_anchor_not_expired(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.on_response(loc, server=2, write_capable=False)
        assert q.expire(now=1.0) == []

    def test_next_expiry(self):
        q = ResponseQueue(period=0.133)
        assert q.next_expiry() is None
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=1.0)
        assert q.next_expiry() == pytest.approx(1.133)
        q.on_response(loc, server=0, write_capable=False)
        assert q.next_expiry() is None

    def test_fast_response_beats_timeout_stats(self):
        q = ResponseQueue(period=0.133)
        loc = make_loc()
        q.add_waiter(loc, AccessMode.READ, "c", now=0.0)
        q.on_response(loc, server=0, write_capable=False)
        assert q.fast_responses == 1 and q.timeouts == 0
