"""Unit tests for the analytical models."""

import pytest

from repro.core import models


class TestTreeDepth:
    def test_single_server(self):
        assert models.tree_depth(1) == 1

    def test_up_to_64_needs_one_level(self):
        assert models.tree_depth(64) == 1

    def test_65_needs_two_levels(self):
        assert models.tree_depth(65) == 2

    def test_4096_is_two_levels(self):
        assert models.tree_depth(4096) == 2

    def test_4097_is_three_levels(self):
        assert models.tree_depth(4097) == 3

    def test_depth_grows_logarithmically(self):
        assert models.tree_depth(64**4) == 4

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            models.tree_depth(0)

    def test_max_servers_inverse(self):
        for d in (1, 2, 3):
            assert models.tree_depth(models.max_servers(d)) == d
            assert models.tree_depth(models.max_servers(d) + 1) == d + 1


class TestEquilibrium:
    def test_paper_headline_number(self):
        """1000 objects/s over 8 hours = 28,800,000 objects."""
        assert models.equilibrium_objects(1000.0, 8 * 3600.0) == 28_800_000

    def test_typical_rate_is_far_smaller(self):
        typical = models.equilibrium_objects(100.0, 8 * 3600.0)
        assert typical == 2_880_000
        assert typical < 28_800_000 / 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            models.equilibrium_objects(-1.0, 10.0)


class TestMemoryBound:
    def test_paper_sixteen_gb(self):
        bound = models.memory_bound_bytes(1000.0, 8 * 3600.0)
        assert bound == pytest.approx(16 * 2**30, rel=1e-9)

    def test_typical_under_one_gb(self):
        """"the memory utilization normally stays well below 1GB" at
        50-100 creates/second... at the paper's ~590 B/object, 100/s gives
        ~1.7 GB over a full 8 h — 'well below 1 GB' holds at the 50/s end
        and for the shorter effective lifetimes of typical workdays."""
        assert models.memory_bound_bytes(50.0, 8 * 3600.0) < 1.0 * 2**30

    def test_bytes_per_object_plausible(self):
        # A location object is a few vectors + key text; hundreds of bytes.
        assert 100 < models.PAPER_BYTES_PER_OBJECT < 2000


class TestTickFraction:
    def test_one_sixty_fourth(self):
        assert models.tick_fraction() == pytest.approx(1 / 64)
        assert models.tick_fraction() == pytest.approx(0.016, abs=0.001)


class TestPaperClaims:
    def test_claims_frozen(self):
        claims = models.PaperClaims()
        with pytest.raises(AttributeError):
            claims.full_delay = 1.0

    def test_window_tick_is_7_5_minutes(self):
        assert models.PaperClaims().window_tick == pytest.approx(450.0)
