"""Unit tests for the Fibonacci-sized location table."""

import pytest

from repro.core.crc32 import hash_name
from repro.core.fibonacci import is_fibonacci
from repro.core.hashtable import LocationTable
from repro.core.location import LocationObject


def make(key):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestBasicOperations:
    def test_insert_find(self):
        t = LocationTable()
        obj = make("/a")
        t.insert(obj)
        assert t.find("/a", obj.hash_val) is obj

    def test_find_missing(self):
        t = LocationTable()
        assert t.find("/nope", hash_name("/nope")) is None

    def test_find_skips_hidden(self):
        t = LocationTable()
        obj = make("/a")
        t.insert(obj)
        obj.hide()
        assert t.find("/a", obj.hash_val) is None
        assert t.count == 1  # still physically chained

    def test_remove_by_identity(self):
        t = LocationTable()
        a, b = make("/a"), make("/b")
        t.insert(a)
        t.insert(b)
        assert t.remove(a)
        assert not t.remove(a)  # second removal is a no-op
        assert t.count == 1
        assert t.find("/b", b.hash_val) is b

    def test_initial_size_must_be_fibonacci(self):
        with pytest.raises(ValueError):
            # The non-Fibonacci size is the point of this test.
            LocationTable(initial_size=100)  # scalla-lint: disable=SCA002

    def test_iteration_covers_hidden(self):
        t = LocationTable()
        a, b = make("/a"), make("/b")
        t.insert(a)
        t.insert(b)
        a.hide()
        assert {o.key for o in t} == {"/a", "/b"}
        assert {o.key for o in t.visible()} == {"/b"}


class TestGrowth:
    def test_grows_at_eighty_percent(self):
        t = LocationTable(initial_size=89)
        # 80% of 89 = 71.2, so the 72nd insert must trigger growth.
        for i in range(71):
            t.insert(make(f"/f{i}"))
        assert t.size == 89
        t.insert(make("/f71"))
        assert t.size == 144
        assert t.resizes == 1

    def test_growth_preserves_entries(self):
        t = LocationTable(initial_size=89)
        objs = [make(f"/store/file-{i}.root") for i in range(500)]
        for o in objs:
            t.insert(o)
        assert t.count == 500
        for o in objs:
            assert t.find(o.key, o.hash_val) is o
        assert t.resizes >= 3

    def test_sizes_stay_fibonacci(self):
        t = LocationTable(initial_size=89)
        for i in range(2000):
            t.insert(make(f"/f{i}"))
            assert is_fibonacci(t.size)

    def test_resize_rate_decays(self):
        """Geometric growth: second thousand inserts resize fewer times
        than the first thousand."""
        t = LocationTable(initial_size=89)
        for i in range(1000):
            t.insert(make(f"/a{i}"))
        first = t.resizes
        for i in range(1000):
            t.insert(make(f"/b{i}"))
        assert t.resizes - first <= first

    def test_hidden_entries_count_toward_growth(self):
        t = LocationTable(initial_size=89)
        for i in range(71):
            obj = make(f"/f{i}")
            t.insert(obj)
            obj.hide()
        t.insert(make("/trigger"))
        assert t.size == 144


class TestStatistics:
    def test_probe_accounting(self):
        t = LocationTable()
        obj = make("/a")
        t.insert(obj)
        t.find("/a", obj.hash_val)
        assert t.lookups == 1
        assert t.probes >= 1
        assert t.mean_probe_length() >= 1.0

    def test_chain_lengths_sum_to_count(self):
        t = LocationTable(initial_size=89)
        for i in range(300):
            t.insert(make(f"/f{i}"))
        assert sum(t.chain_lengths()) == 300

    def test_mean_probe_without_lookups(self):
        assert LocationTable().mean_probe_length() == 0.0


class TestInvariants:
    def test_check_invariants_clean(self):
        t = LocationTable(initial_size=89)
        for i in range(200):
            t.insert(make(f"/f{i}"))
        t.check_invariants()

    def test_detects_misplaced_object(self):
        t = LocationTable()
        obj = make("/a")
        t.insert(obj)
        obj.hash_val += 1  # corrupt
        with pytest.raises(AssertionError):
            t.check_invariants()
