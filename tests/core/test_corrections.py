"""Unit tests for cluster membership and the Figure-3 corrections."""

import pytest

from repro.core import bitvec
from repro.core.corrections import ClusterMembership, apply_corrections
from repro.core.crc32 import hash_name
from repro.core.location import LocationObject


def make_loc(key="/store/f.root", c_n=0):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=c_n, t_a=0)
    return obj


class TestLogin:
    def test_first_login_gets_slot_zero(self):
        m = ClusterMembership()
        assert m.login("srv-a", ["/store"]) == 0
        assert m.member_count() == 1
        assert m.v_online == bitvec.bit(0)

    def test_logins_fill_ascending_slots(self):
        m = ClusterMembership()
        slots = [m.login(f"srv-{i}", ["/store"]) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_explicit_slot(self):
        m = ClusterMembership()
        assert m.login("srv-a", ["/store"], slot=17) == 17
        assert m.slot_of("srv-a") == 17

    def test_explicit_slot_conflict(self):
        m = ClusterMembership()
        m.login("srv-a", ["/store"], slot=3)
        with pytest.raises(ValueError):
            m.login("srv-b", ["/store"], slot=3)

    def test_empty_paths_rejected(self):
        m = ClusterMembership()
        with pytest.raises(ValueError):
            m.login("srv-a", [])

    def test_65th_server_rejected(self):
        m = ClusterMembership()
        for i in range(64):
            m.login(f"srv-{i}", ["/store"])
        with pytest.raises(OverflowError):
            m.login("srv-64", ["/store"])

    def test_login_bumps_counters(self):
        m = ClusterMembership()
        s = m.login("srv-a", ["/store"])
        assert m.n_c == 1
        assert m.c[s] == 1
        m.login("srv-b", ["/store"])
        assert m.n_c == 2


class TestEligibility:
    def test_prefix_match(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        b = m.login("srv-b", ["/atlas"])
        assert m.eligible("/store/run1/f.root") == bitvec.bit(a)
        assert m.eligible("/atlas/x") == bitvec.bit(b)
        assert m.eligible("/cms/x") == 0

    def test_overlapping_prefixes_union(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        b = m.login("srv-b", ["/store/rare"])
        assert m.eligible("/store/rare/f") == bitvec.bit(a) | bitvec.bit(b)
        assert m.eligible("/store/common/f") == bitvec.bit(a)

    def test_shared_prefix_multiple_exporters(self):
        m = ClusterMembership()
        slots = [m.login(f"srv-{i}", ["/store"]) for i in range(3)]
        assert m.eligible("/store/f") == bitvec.from_indices(slots)


class TestDisconnectDropReconnect:
    def test_disconnect_keeps_membership(self):
        """Case 1: offline but still a member; V_m untouched."""
        m = ClusterMembership()
        s = m.login("srv-a", ["/store"])
        m.disconnect("srv-a")
        assert m.v_online == 0
        assert m.v_offline == bitvec.bit(s)
        assert m.eligible("/store/f") == bitvec.bit(s)

    def test_drop_scrubs_vm_and_frees_slot(self):
        """Case 2: dropped server leaves every V_m; slot reusable."""
        m = ClusterMembership()
        s = m.login("srv-a", ["/store"])
        m.drop("srv-a")
        assert m.eligible("/store/f") == 0
        assert m.member_count() == 0
        assert m.login("srv-b", ["/store"]) == s  # slot reused

    def test_undropped_reconnect_same_paths_keeps_slot(self):
        """Case 3: reconnect before drop; same slot, counts as connection."""
        m = ClusterMembership()
        s = m.login("srv-a", ["/store"])
        n_before = m.n_c
        m.disconnect("srv-a")
        assert m.login("srv-a", ["/store"]) == s
        assert m.v_online == bitvec.bit(s)
        assert m.n_c == n_before + 1  # forces re-query of interim caches

    def test_reconnect_with_new_paths_is_new_connection(self):
        m = ClusterMembership()
        s = m.login("srv-a", ["/store"])
        m.login("srv-a", ["/atlas"])
        assert m.eligible("/store/f") == 0
        assert m.eligible("/atlas/f") == bitvec.bit(m.slot_of("srv-a"))
        # Slot may be reused; either way srv-a is the only member.
        assert m.member_count() == 1

    def test_disconnect_unknown_raises(self):
        m = ClusterMembership()
        with pytest.raises(KeyError):
            m.disconnect("ghost")

    def test_drop_unoccupied_slot_raises(self):
        m = ClusterMembership()
        with pytest.raises(KeyError):
            m.drop(5)

    def test_drop_preserves_shared_path_for_others(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        b = m.login("srv-b", ["/store"])
        m.drop("srv-a")
        assert m.eligible("/store/f") == bitvec.bit(b)


class TestConnectedSince:
    def test_vc_reflects_later_connections(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        snapshot = m.n_c
        b = m.login("srv-b", ["/store"])
        c = m.login("srv-c", ["/store"])
        assert m.connected_since(snapshot) == bitvec.bit(b) | bitvec.bit(c)
        assert m.connected_since(m.n_c) == 0

    def test_vc_from_zero_is_everyone(self):
        m = ClusterMembership()
        slots = [m.login(f"srv-{i}", ["/store"]) for i in range(4)]
        assert m.connected_since(0) == bitvec.from_indices(slots)


class TestApplyCorrections:
    def test_new_server_added_to_vq_removed_from_vh(self):
        """The central Figure-3 behaviour: late connections must be queried,
        and anything claiming them as holders is reset."""
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        loc = make_loc(c_n=m.n_c)
        loc.v_h = bitvec.bit(a)
        b = m.login("srv-b", ["/store"])
        v_m = m.eligible(loc.key)
        fired = apply_corrections(loc, m, v_m)
        assert fired
        assert bitvec.has(loc.v_q, b)
        assert bitvec.has(loc.v_h, a)  # existing holder untouched
        assert not bitvec.has(loc.v_h, b)
        assert loc.c_n == m.n_c
        loc.check_invariants()

    def test_correction_idempotent(self):
        m = ClusterMembership()
        m.login("srv-a", ["/store"])
        loc = make_loc(c_n=0)
        v_m = m.eligible(loc.key)
        apply_corrections(loc, m, v_m)
        state = (loc.v_h, loc.v_p, loc.v_q, loc.c_n)
        assert not apply_corrections(loc, m, v_m)
        assert (loc.v_h, loc.v_p, loc.v_q, loc.c_n) == state

    def test_vm_mask_scrubs_dropped_server(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        b = m.login("srv-b", ["/store"])
        loc = make_loc(c_n=m.n_c)
        loc.v_h = bitvec.bit(a) | bitvec.bit(b)
        m.drop("srv-a")
        apply_corrections(loc, m, m.eligible(loc.key))
        assert loc.v_h == bitvec.bit(b)

    def test_offline_holder_moves_to_vq(self):
        """§III-A4: offline servers are added to V_q by the fetch method."""
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        loc = make_loc(c_n=m.n_c)
        loc.v_h = bitvec.bit(a)
        m.disconnect("srv-a")
        apply_corrections(loc, m, m.eligible(loc.key))
        assert loc.v_h == 0
        assert loc.v_q == bitvec.bit(a)
        loc.check_invariants()

    def test_offline_pending_moves_to_vq(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        loc = make_loc(c_n=m.n_c)
        loc.v_p = bitvec.bit(a)
        m.disconnect("srv-a")
        apply_corrections(loc, m, m.eligible(loc.key))
        assert loc.v_p == 0 and loc.v_q == bitvec.bit(a)

    def test_precomputed_vc_honoured(self):
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        loc = make_loc(c_n=0)
        v_m = m.eligible(loc.key)
        # Deliberately wrong memo proves the caller-supplied vector is used.
        apply_corrections(loc, m, v_m, v_c=0)
        assert loc.v_q == 0

    def test_reconnection_requeries_only_stale_caches(self):
        """Objects cached after the reconnect don't re-query (C_n == N_c)."""
        m = ClusterMembership()
        a = m.login("srv-a", ["/store"])
        m.disconnect("srv-a")
        m.login("srv-a", ["/store"])  # reconnect: N_c bumps
        fresh = make_loc("/store/fresh", c_n=m.n_c)
        fresh.v_h = bitvec.bit(a)
        assert not apply_corrections(fresh, m, m.eligible(fresh.key))
        assert fresh.v_h == bitvec.bit(a)
