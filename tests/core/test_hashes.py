"""Unit tests for the alternative string hashes (footnote-4 study)."""

import pytest

from repro.core.hashes import ALL_HASHES, java31, sdbm, shift_add


class TestHashBasics:
    @pytest.mark.parametrize("fn", list(ALL_HASHES.values()), ids=list(ALL_HASHES))
    def test_deterministic(self, fn):
        assert fn("/store/a.root") == fn("/store/a.root")

    @pytest.mark.parametrize("fn", list(ALL_HASHES.values()), ids=list(ALL_HASHES))
    def test_32_bit_range(self, fn):
        for name in ("", "x", "/very/long" + "y" * 300, "/données/σ.root"):
            assert 0 <= fn(name) <= 0xFFFFFFFF

    def test_java31_known_value(self):
        # Java's "abc".hashCode() == 96354; our byte-wise version agrees
        # for ASCII input.
        assert java31("abc") == 96354

    def test_registry_complete(self):
        assert set(ALL_HASHES) == {"java31", "sdbm", "shift_add"}


class TestLowBitCorrelation:
    """The property the footnote-4 study rests on, pinned directly."""

    def test_shift_add_low_bits_pinned_by_suffix(self):
        """Names ending '.root' share their low bits under shift_add once
        enough constant characters follow the varying part."""
        a = shift_add("/store/file-0001.root")
        b = shift_add("/store/file-0002.root")
        # Low 16 bits are dictated by the last 4+ characters ('.root' tail
        # shifted through), so the run-number difference is invisible there.
        assert (a ^ b) & 0xFFF == 0

    def test_sdbm_distinct_names_usually_distinct(self):
        names = [f"/store/f{i}.root" for i in range(1000)]
        assert len({sdbm(n) for n in names}) > 990

    def test_java31_distinct_names_usually_distinct(self):
        names = [f"/store/f{i}.root" for i in range(1000)]
        assert len({java31(n) for n in names}) > 990
