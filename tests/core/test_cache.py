"""Unit tests for the NameCache facade."""

import pytest

from repro.core import bitvec
from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.core.eviction import WINDOW_COUNT


def cluster_cache(n_servers=4, path="/store"):
    m = ClusterMembership()
    for i in range(n_servers):
        m.login(f"srv-{i}", [path])
    return NameCache(m, lifetime=64.0)  # 1 s per window tick


class TestLookup:
    def test_miss_creates_with_vq_equal_vm(self):
        cache = cluster_cache(3)
        ref, is_new = cache.lookup("/store/a.root", now=0.0)
        assert is_new
        obj = ref.get()
        assert obj.v_q == bitvec.from_indices([0, 1, 2])
        assert obj.v_h == 0 and obj.v_p == 0

    def test_hit_returns_same_object(self):
        cache = cluster_cache()
        ref1, _ = cache.lookup("/store/a.root", now=0.0)
        ref2, is_new = cache.lookup("/store/a.root", now=1.0)
        assert not is_new
        assert ref2.get() is ref1.get()
        assert cache.stats.hits == 1

    def test_lookup_without_add(self):
        cache = cluster_cache()
        ref, is_new = cache.lookup("/store/missing", now=0.0, add=False)
        assert ref is None and not is_new
        assert cache.stats.adds == 0

    def test_unexported_path_has_empty_vq(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/cms/file", now=0.0)
        assert ref.get().v_q == 0
        assert ref.get().known_empty

    def test_hit_applies_corrections_for_new_server(self):
        cache = cluster_cache(2)
        ref, _ = cache.lookup("/store/a.root", now=0.0)
        new_slot = cache.membership.login("srv-late", ["/store"])
        ref2, _ = cache.lookup("/store/a.root", now=1.0)
        assert bitvec.has(ref2.get().v_q, new_slot)
        assert cache.stats.corrections == 1


class TestWindowMemo:
    def test_memo_hit_on_second_fetch_in_same_window(self):
        cache = cluster_cache(2)
        cache.lookup("/store/a", now=0.0)
        cache.lookup("/store/b", now=0.0)
        cache.membership.login("srv-late", ["/store"])
        cache.lookup("/store/a", now=1.0)  # generates V_wc
        cache.lookup("/store/b", now=1.0)  # must reuse it
        assert cache.stats.vwc_misses == 1
        assert cache.stats.vwc_hits == 1

    def test_memo_invalidated_by_further_membership_change(self):
        cache = cluster_cache(2)
        cache.lookup("/store/a", now=0.0)
        cache.lookup("/store/b", now=0.0)
        cache.membership.login("srv-x", ["/store"])
        cache.lookup("/store/a", now=1.0)
        cache.membership.login("srv-y", ["/store"])
        cache.lookup("/store/b", now=2.0)  # memo stale: n_c moved on
        assert cache.stats.vwc_misses == 2

    def test_memo_result_equals_direct_computation(self):
        cache = cluster_cache(2)
        cache.lookup("/store/a", now=0.0)
        cache.lookup("/store/b", now=0.0)
        s = cache.membership.login("srv-late", ["/store"])
        ra, _ = cache.lookup("/store/a", now=1.0)
        rb, _ = cache.lookup("/store/b", now=1.0)
        assert bitvec.has(ra.get().v_q, s)
        assert bitvec.has(rb.get().v_q, s)
        assert ra.get().v_q == rb.get().v_q


class TestHolderUpdates:
    def test_update_holder(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        obj = cache.update_holder("/store/a", ref.hash_val, server=2)
        assert obj is ref.get()
        assert bitvec.has(obj.v_h, 2)
        assert not bitvec.has(obj.v_q, 2)

    def test_update_holder_pending(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.update_holder("/store/a", ref.hash_val, server=1, pending=True)
        assert bitvec.has(ref.get().v_p, 1)

    def test_late_response_for_expired_object_dropped(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.invalidate(ref)
        assert cache.update_holder("/store/a", ref.hash_val, server=0) is None
        assert cache.stats.stale_holder_updates == 1


class TestRefresh:
    def test_refresh_resets_vectors_and_renews_ta(self):
        cache = cluster_cache(3)
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.update_holder("/store/a", ref.hash_val, server=1)
        cache.tick()
        cache.tick()
        live = cache.refresh(ref, now=2.0)
        obj = live.get()
        assert obj.v_h == 0
        assert obj.v_q == bitvec.from_indices([0, 1, 2])
        assert obj.t_a == cache.windows.current_window
        assert obj.chain_window == 0  # deferred re-chaining

    def test_refresh_stale_ref_fails_gracefully(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.invalidate(ref)
        cache.run_background_removal()
        assert cache.refresh(ref, now=1.0) is None

    def test_refreshed_object_survives_old_window_sweep(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.tick()
        cache.refresh(ref, now=1.0)
        for _ in range(WINDOW_COUNT - 1):
            cache.tick()
        cache.run_background_removal()
        again, is_new = cache.lookup("/store/a", now=64.0)
        assert not is_new


class TestEvictionIntegration:
    def test_object_expires_after_lifetime(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        for _ in range(WINDOW_COUNT):
            cache.tick()
        assert not ref.valid  # hidden -> generation bumped
        removed = cache.run_background_removal()
        assert removed == 1
        _, is_new = cache.lookup("/store/a", now=100.0)
        assert is_new

    def test_storage_recycled_not_freed(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        old_obj = ref.obj
        for _ in range(WINDOW_COUNT):
            cache.tick()
        cache.run_background_removal()
        ref2, _ = cache.lookup("/store/b", now=100.0)
        assert ref2.obj is old_obj  # same storage, new identity
        assert cache.stats.recycled == 1
        assert cache.allocated == 1

    def test_stale_ref_revalidate_finds_new_object(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        for _ in range(WINDOW_COUNT):
            cache.tick()
        cache.run_background_removal()
        cache.lookup("/store/a", now=100.0)  # re-created
        live = cache.revalidate(ref)
        assert live is not None and live.valid
        assert live.key == "/store/a"

    def test_revalidate_total_miss(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        for _ in range(WINDOW_COUNT):
            cache.tick()
        cache.run_background_removal()
        assert cache.revalidate(ref) is None

    def test_background_removal_limit(self):
        cache = cluster_cache()
        for i in range(10):
            cache.lookup(f"/store/f{i}", now=0.0)
        for _ in range(WINDOW_COUNT):
            cache.tick()
        assert cache.run_background_removal(limit=3) == 3
        assert cache.pending_removals == 7
        assert cache.run_background_removal() == 7

    def test_double_queueing_is_safe_after_recycle(self):
        """invalidate + window sweep may queue an object twice; once its
        storage is recycled the stale entry must not remove the new file."""
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.invalidate(ref)  # queued once
        for _ in range(WINDOW_COUNT):
            cache.tick()  # queued again by the sweep
        assert cache.run_background_removal(limit=1) == 1
        ref_b, _ = cache.lookup("/store/b", now=100.0)  # recycles storage
        cache.run_background_removal()
        live, is_new = cache.lookup("/store/b", now=101.0)
        assert not is_new  # /store/b must have survived
        cache.check_invariants()


class TestInvalidate:
    def test_invalidate_hides_immediately(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        assert cache.invalidate(ref)
        r, is_new = cache.lookup("/store/a", now=0.1, add=False)
        assert r is None

    def test_invalidate_stale_ref(self):
        cache = cluster_cache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        cache.invalidate(ref)
        assert not cache.invalidate(ref)


class TestStats:
    def test_snapshot_keys(self):
        cache = cluster_cache()
        snap = cache.stats.snapshot()
        assert "lookups" in snap and "vwc_hits" in snap

    def test_tick_interval(self):
        cache = NameCache(lifetime=8 * 3600.0)
        assert cache.tick_interval == pytest.approx(450.0)  # 7.5 minutes

    def test_live_count(self):
        cache = cluster_cache()
        for i in range(5):
            cache.lookup(f"/store/f{i}", now=0.0)
        assert cache.live_count() == 5
