"""Unit tests for location objects."""

import pytest

from repro.core import bitvec
from repro.core.crc32 import hash_name
from repro.core.location import NO_QUEUE, LocationObject


def make(key="/store/f.root"):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestAssign:
    def test_fresh_object_fields(self):
        obj = make()
        assert obj.key == "/store/f.root"
        assert obj.key_len == len(obj.key)
        assert obj.v_h == obj.v_p == obj.v_q == 0
        assert obj.rq_read == NO_QUEUE and obj.rq_write == NO_QUEUE
        assert not obj.hidden

    def test_assign_bumps_generation(self):
        obj = make()
        g = obj.generation
        obj.assign("/other", hash_name("/other"), c_n=3, t_a=5)
        assert obj.generation == g + 1
        assert obj.c_n == 3 and obj.t_a == 5

    def test_reuse_clears_queue_associations(self):
        obj = make()
        obj.rq_read = 7
        obj.rq_write = 9
        obj.assign("/new", hash_name("/new"), c_n=0, t_a=1)
        assert obj.rq_read == NO_QUEUE and obj.rq_write == NO_QUEUE


class TestHide:
    def test_hide_sets_keylen_zero_keeps_key(self):
        obj = make()
        obj.hide()
        assert obj.hidden
        assert obj.key == "/store/f.root"  # text survives, per the paper
        assert obj.key_len == 0

    def test_hide_bumps_generation(self):
        obj = make()
        g = obj.generation
        obj.hide()
        assert obj.generation == g + 1

    def test_hidden_object_never_matches(self):
        obj = make()
        obj.hide()
        assert not obj.matches(obj.key, obj.hash_val)


class TestMatches:
    def test_match_requires_same_hash(self):
        obj = make()
        assert not obj.matches(obj.key, obj.hash_val ^ 1)

    def test_match_requires_same_key(self):
        obj = make("/a")
        other = "/b"
        assert not obj.matches(other, hash_name(other))

    def test_hash_collision_disambiguated_by_key(self):
        obj = make("/a")
        # Same hash forced artificially: key comparison must reject.
        assert not obj.matches("/zz", obj.hash_val)

    def test_positive_match(self):
        obj = make()
        assert obj.matches(obj.key, obj.hash_val)


class TestVectors:
    def test_set_holder_online(self):
        obj = make()
        obj.v_q = bitvec.from_indices([3, 4])
        obj.set_holder(3)
        assert bitvec.has(obj.v_h, 3)
        assert not bitvec.has(obj.v_q, 3)
        assert bitvec.has(obj.v_q, 4)
        obj.check_invariants()

    def test_set_holder_pending(self):
        obj = make()
        obj.v_q = bitvec.bit(9)
        obj.set_holder(9, pending=True)
        assert bitvec.has(obj.v_p, 9)
        assert obj.v_h == 0 and obj.v_q == 0
        obj.check_invariants()

    def test_pending_promotes_to_online(self):
        obj = make()
        obj.set_holder(5, pending=True)
        obj.set_holder(5)
        assert bitvec.has(obj.v_h, 5)
        assert not bitvec.has(obj.v_p, 5)

    def test_clear_server_scrubs_everywhere(self):
        obj = make()
        obj.v_h = bitvec.bit(1)
        obj.v_p = bitvec.bit(2)
        obj.v_q = bitvec.bit(1) | bitvec.bit(2)  # deliberately broken overlap
        for s in (1, 2):
            obj.clear_server(s)
        assert obj.v_h == obj.v_p == obj.v_q == 0

    def test_known_empty(self):
        obj = make()
        assert obj.known_empty
        obj.v_q = 1
        assert not obj.known_empty


class TestInvariants:
    def test_overlap_detected(self):
        obj = make()
        obj.v_h = bitvec.bit(1)
        obj.v_q = bitvec.bit(1)
        with pytest.raises(AssertionError):
            obj.check_invariants()

    def test_bad_window_detected(self):
        obj = make()
        obj.t_a = 64
        with pytest.raises(AssertionError):
            obj.check_invariants()
