"""Unit tests for server selection policies."""

import random

import pytest

from repro.core import bitvec
from repro.core.selection import (
    LeastLoad,
    MostSpace,
    RandomChoice,
    RoundRobin,
    ServerMetrics,
    WeightedComposite,
)


class TestRoundRobin:
    def test_rotates_over_candidates(self):
        m = ServerMetrics()
        policy = RoundRobin()
        candidates = bitvec.from_indices([2, 5, 9])
        picks = [policy.choose(candidates, m) for _ in range(6)]
        assert picks == [2, 5, 9, 2, 5, 9]

    def test_empty_vector_raises(self):
        with pytest.raises(ValueError):
            RoundRobin().choose(0, ServerMetrics())

    def test_selection_counts_recorded(self):
        m = ServerMetrics()
        RoundRobin().choose(bitvec.bit(4), m)
        assert m.selections[4] == 1


class TestLeastLoad:
    def test_prefers_lowest_load(self):
        m = ServerMetrics()
        m.load[1] = 0.9
        m.load[2] = 0.1
        m.load[3] = 0.5
        assert LeastLoad().choose(bitvec.from_indices([1, 2, 3]), m) == 2

    def test_tie_broken_by_slot_index(self):
        m = ServerMetrics()
        assert LeastLoad().choose(bitvec.from_indices([7, 3]), m) == 3


class TestMostSpace:
    def test_prefers_most_space(self):
        m = ServerMetrics()
        m.free_space[0] = 10.0
        m.free_space[5] = 500.0
        assert MostSpace().choose(bitvec.from_indices([0, 5]), m) == 5


class TestWeightedComposite:
    def test_pure_load_weight_matches_least_load(self):
        m = ServerMetrics()
        m.load[1], m.load[2] = 0.8, 0.2
        policy = WeightedComposite(w_load=1.0)
        assert policy.choose(bitvec.from_indices([1, 2]), m) == 2

    def test_frequency_weight_spreads_selections(self):
        m = ServerMetrics()
        policy = WeightedComposite(w_load=0.0, w_freq=1.0, w_space=0.0)
        candidates = bitvec.from_indices([0, 1])
        picks = [policy.choose(candidates, m) for _ in range(4)]
        assert picks.count(0) == picks.count(1) == 2

    def test_space_weight_prefers_space(self):
        m = ServerMetrics()
        m.free_space[0], m.free_space[1] = 1.0, 1000.0
        policy = WeightedComposite(w_load=0.0, w_freq=0.0, w_space=1.0)
        assert policy.choose(bitvec.from_indices([0, 1]), m) == 1

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedComposite(w_load=0.0, w_freq=0.0, w_space=0.0)


class TestRandomChoice:
    def test_deterministic_with_seed(self):
        candidates = bitvec.from_indices([3, 7, 11])
        picks_a = [
            RandomChoice(random.Random(42)).choose(candidates, ServerMetrics()) for _ in range(5)
        ]
        picks_b = [
            RandomChoice(random.Random(42)).choose(candidates, ServerMetrics()) for _ in range(5)
        ]
        assert picks_a == picks_b

    def test_only_candidates_chosen(self):
        rng = random.Random(1)
        policy = RandomChoice(rng)
        m = ServerMetrics()
        candidates = bitvec.from_indices([5, 60])
        for _ in range(50):
            assert policy.choose(candidates, m) in (5, 60)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RandomChoice(random.Random(0)).choose(0, ServerMetrics())
