"""Unit tests for CRC32 file-name hashing."""

import zlib

import pytest

from repro.core import crc32


class TestReferenceImplementation:
    """The pure-Python CRC must agree byte-for-byte with zlib."""

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"123456789",  # standard CRC-32 check vector
            b"/store/data/run001234/evts_0007.root",
            bytes(range(256)),
        ],
    )
    def test_matches_zlib(self, data):
        assert crc32.crc32_reference(data) == zlib.crc32(data) & 0xFFFFFFFF

    def test_check_vector(self):
        # The canonical CRC-32/ISO-HDLC check value for "123456789".
        assert crc32.crc32_reference(b"123456789") == 0xCBF43926

    def test_incremental_matches_oneshot(self):
        whole = crc32.crc32_reference(b"hello world")
        part = crc32.crc32_reference(b"hello ")
        assert crc32.crc32_reference(b"world", part) == whole

    def test_wrapper_incremental(self):
        part = crc32.crc32(b"/store/", 0)
        assert crc32.crc32(b"f.root", part) == crc32.crc32(b"/store/f.root")


class TestHashName:
    def test_deterministic(self):
        assert crc32.hash_name("/a/b/c") == crc32.hash_name("/a/b/c")

    def test_distinct_names_distinct_hashes(self):
        # Not guaranteed in general, but these must differ for any sane CRC.
        assert crc32.hash_name("/a/b/c") != crc32.hash_name("/a/b/d")

    def test_unsigned_32_bit(self):
        for name in ("", "x", "/very/long/" + "p" * 500):
            h = crc32.hash_name(name)
            assert 0 <= h <= 0xFFFFFFFF

    def test_utf8_paths(self):
        # cmsd treats names as opaque bytes; non-ASCII must hash cleanly.
        assert isinstance(crc32.hash_name("/données/σ.root"), int)
