"""Unit tests for the Fibonacci table-size ladder."""

import pytest

from repro.core import fibonacci


class TestLadder:
    def test_first_rungs(self):
        assert fibonacci.fibonacci_numbers(100) == [1, 2, 3, 5, 8, 13, 21, 34, 55, 89]

    def test_next_from_member(self):
        assert fibonacci.next_fibonacci(89) == 144
        assert fibonacci.next_fibonacci(144) == 233

    def test_next_from_non_member(self):
        assert fibonacci.next_fibonacci(100) == 144
        assert fibonacci.next_fibonacci(0) == 1

    def test_next_rejects_negative(self):
        with pytest.raises(ValueError):
            fibonacci.next_fibonacci(-1)

    def test_is_fibonacci(self):
        assert fibonacci.is_fibonacci(89)
        assert fibonacci.is_fibonacci(1)
        assert not fibonacci.is_fibonacci(4)
        assert not fibonacci.is_fibonacci(90)

    def test_growth_is_geometric(self):
        """Consecutive rungs must grow by ~the golden ratio, so the resize
        rate decays as the paper observes."""
        rungs = fibonacci.fibonacci_numbers(10**9)[5:]
        ratios = [b / a for a, b in zip(rungs, rungs[1:])]
        for r in ratios:
            assert 1.5 < r < 1.7

    def test_default_initial_size_on_ladder(self):
        assert fibonacci.is_fibonacci(fibonacci.DEFAULT_INITIAL_SIZE)

    def test_ladder_reaches_realistic_cache_sizes(self):
        # The paper's equilibrium bound is 28.8M objects; the ladder must
        # comfortably exceed the table size needed for that at 80% load.
        assert fibonacci.next_fibonacci(28_800_000 * 2) > 28_800_000 * 2

    def test_threshold_is_eighty_percent(self):
        assert fibonacci.GROWTH_THRESHOLD == pytest.approx(0.80)
