"""Stateful property tests of the fast response queue.

The queue's loose coupling to the cache (stamped anchors, generation
checks) has subtle failure modes under arbitrary interleavings of
enqueue / respond / expire / recycle.  This machine hammers those
interleavings and checks the safety properties the protocol depends on:

* a waiter is released at most once (no double redirects);
* releases carry the responding server (never -1); timeouts carry -1;
* anchors never leak: active + free == total;
* a location object's stored index never resolves to an anchor owned by a
  different object (the hijack bug the stamps exist to prevent).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.crc32 import hash_name
from repro.core.location import LocationObject
from repro.core.response_queue import AccessMode, ResponseQueue


class ResponseQueueMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.q = ResponseQueue(anchors=4, period=0.133)
        self.now = 0.0
        self.locs = []
        for i in range(3):
            obj = LocationObject()
            obj.assign(f"/f{i}", hash_name(f"/f{i}"), c_n=0, t_a=0)
            self.locs.append(obj)
        self._next_waiter = 0
        self.outcomes: dict[int, list] = {}

    @rule(loc=st.integers(min_value=0, max_value=2), write=st.booleans())
    def enqueue(self, loc, write):
        wid = self._next_waiter
        self._next_waiter += 1
        mode = AccessMode.WRITE if write else AccessMode.READ
        out = self.q.add_waiter(self.locs[loc], mode, wid, self.now)
        self.outcomes[wid] = [] if out.accepted else ["rejected"]

    @rule(loc=st.integers(min_value=0, max_value=2), server=st.integers(min_value=0, max_value=5), wc=st.booleans())
    def respond(self, loc, server, wc):
        for w in self.q.on_response(self.locs[loc], server, write_capable=wc):
            assert w.server == server  # releases carry the responder
            self.outcomes[w.payload].append("released")

    @rule(dt=st.floats(min_value=0.0, max_value=0.2))
    def advance_and_expire(self, dt):
        self.now += dt
        for w in self.q.expire(self.now):
            assert w.server == -1  # timeouts carry no server
            self.outcomes[w.payload].append("expired")

    @rule(loc=st.integers(min_value=0, max_value=2))
    def recycle_location(self, loc):
        """The cache recycles the object's storage for a new file."""
        obj = self.locs[loc]
        obj.hide()
        obj.assign(f"/new{self._next_waiter}", hash_name("x"), c_n=0, t_a=0)

    @invariant()
    def each_waiter_finalized_at_most_once(self):
        for wid, events in self.outcomes.items():
            terminal = [e for e in events if e in ("released", "expired")]
            assert len(terminal) <= 1, f"waiter {wid} finalized twice: {events}"

    @invariant()
    def anchors_conserved(self):
        assert self.q.active_anchors + len(self.q._free) == 4

    @invariant()
    def stored_indices_never_hijack(self):
        for obj in self.locs:
            for mode in (AccessMode.READ, AccessMode.WRITE):
                anchor = self.q._valid_anchor(obj, mode)
                if anchor is not None:
                    assert anchor.loc is obj
                    assert anchor.loc_generation == obj.generation


TestResponseQueueMachine = ResponseQueueMachine.TestCase
TestResponseQueueMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)
