"""Unit tests for deadline-based query synchronization."""

import pytest

from repro.core.crc32 import hash_name
from repro.core.deadline import DEFAULT_FULL_DELAY, DeadlinePolicy
from repro.core.location import LocationObject


def make_loc(key="/f"):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestArm:
    def test_arm_sets_deadline(self):
        p = DeadlinePolicy(full_delay=5.0)
        loc = make_loc()
        assert p.arm(loc, now=10.0) == 15.0
        assert loc.deadline == 15.0

    def test_default_full_delay_is_five_seconds(self):
        assert DEFAULT_FULL_DELAY == 5.0
        assert DeadlinePolicy().full_delay == 5.0

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(full_delay=0)


class TestSynchronization:
    def test_only_first_thread_queries(self):
        """The core §III-C2 property: exactly one querier per epoch."""
        p = DeadlinePolicy(full_delay=5.0)
        loc = make_loc()
        loc.v_q = 0b111
        assert p.i_should_query(loc, now=0.0)
        p.arm(loc, now=0.0)
        # Every later thread inside the epoch defers.
        assert not p.i_should_query(loc, now=0.1)
        assert not p.i_should_query(loc, now=4.999)

    def test_new_epoch_after_expiry(self):
        p = DeadlinePolicy(full_delay=5.0)
        loc = make_loc()
        loc.v_q = 0b1
        p.arm(loc, now=0.0)
        assert p.i_should_query(loc, now=5.1)

    def test_empty_vq_never_queries(self):
        p = DeadlinePolicy()
        loc = make_loc()
        assert not p.i_should_query(loc, now=0.0)

    def test_active(self):
        p = DeadlinePolicy(full_delay=2.0)
        loc = make_loc()
        p.arm(loc, now=1.0)
        assert p.active(loc, now=2.9)
        assert not p.active(loc, now=3.0)


class TestNonexistence:
    def test_empty_and_expired_means_nonexistent(self):
        p = DeadlinePolicy(full_delay=5.0)
        loc = make_loc()
        p.arm(loc, now=0.0)
        assert not p.nonexistent(loc, now=1.0)  # answers may be in flight
        assert p.nonexistent(loc, now=5.5)

    def test_nonempty_vectors_exist(self):
        p = DeadlinePolicy()
        loc = make_loc()
        loc.v_h = 0b1
        assert not p.nonexistent(loc, now=100.0)

    def test_pending_counts_as_existing(self):
        p = DeadlinePolicy()
        loc = make_loc()
        loc.v_p = 0b1
        assert not p.nonexistent(loc, now=100.0)
