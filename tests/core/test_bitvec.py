"""Unit tests for the 64-bit server vector helpers."""

import pytest

from repro.core import bitvec


class TestBit:
    def test_bit_zero(self):
        assert bitvec.bit(0) == 1

    def test_bit_sixty_three(self):
        assert bitvec.bit(63) == 1 << 63

    @pytest.mark.parametrize("bad", [-1, 64, 100])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            bitvec.bit(bad)

    def test_full_mask_is_all_64_bits(self):
        assert bitvec.FULL_MASK == 2**64 - 1
        assert bitvec.count(bitvec.FULL_MASK) == 64


class TestSetClearHas:
    def test_set_then_has(self):
        v = bitvec.set_bit(0, 17)
        assert bitvec.has(v, 17)
        assert not bitvec.has(v, 16)

    def test_clear_removes_only_target(self):
        v = bitvec.from_indices([3, 5, 9])
        v = bitvec.clear_bit(v, 5)
        assert bitvec.to_indices(v) == [3, 9]

    def test_clear_missing_bit_is_noop(self):
        v = bitvec.from_indices([1])
        assert bitvec.clear_bit(v, 2) == v

    def test_has_out_of_range_is_false(self):
        assert not bitvec.has(bitvec.FULL_MASK, 64)
        assert not bitvec.has(bitvec.FULL_MASK, -1)

    def test_set_is_idempotent(self):
        v = bitvec.set_bit(0, 7)
        assert bitvec.set_bit(v, 7) == v


class TestIteration:
    def test_iter_empty(self):
        assert list(bitvec.iter_bits(0)) == []

    def test_iter_ascending(self):
        v = bitvec.from_indices([63, 0, 31])
        assert list(bitvec.iter_bits(v)) == [0, 31, 63]

    def test_roundtrip(self):
        idx = [0, 1, 2, 13, 62, 63]
        assert bitvec.to_indices(bitvec.from_indices(idx)) == idx

    def test_count_matches_popcount(self):
        v = bitvec.from_indices(range(0, 64, 3))
        assert bitvec.count(v) == len(range(0, 64, 3))

    def test_first_bit(self):
        assert bitvec.first_bit(0) == -1
        assert bitvec.first_bit(bitvec.from_indices([5, 40])) == 5
        assert bitvec.first_bit(bitvec.bit(63)) == 63


class TestValidate:
    def test_accepts_valid(self):
        assert bitvec.validate(bitvec.FULL_MASK) == bitvec.FULL_MASK
        assert bitvec.validate(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bitvec.validate(-1)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            bitvec.validate(1 << 64)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            bitvec.validate(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            bitvec.validate(3.0)


class TestFormat:
    def test_format_empty(self):
        assert bitvec.format_vec(0) == "{}"

    def test_format_some(self):
        assert bitvec.format_vec(bitvec.from_indices([2, 5])) == "{2,5}"
