"""Property-based tests (hypothesis) for the core data structures.

These pin the *invariants* the paper's design depends on, over arbitrary
operation sequences rather than hand-picked cases:

* the three-vector invariant (V_q disjoint from V_h|V_p) survives any mix of
  lookups, responses, membership churn, refreshes and ticks;
* the hash table never loses or duplicates a visible key;
* corrections are exactly equivalent to recomputing from scratch;
* eviction windows always expire an object 64 ticks after its last refresh.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.analysis.simsan import Sanitizer
from repro.core import bitvec
from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership, apply_corrections
from repro.core.crc32 import hash_name
from repro.core.eviction import WINDOW_COUNT, EvictionWindows
from repro.core.fibonacci import is_fibonacci, next_fibonacci
from repro.core.hashtable import LocationTable
from repro.core.location import LocationObject

vectors = st.integers(min_value=0, max_value=bitvec.FULL_MASK)
slots = st.integers(min_value=0, max_value=63)


class TestBitvecProperties:
    @given(vectors)
    def test_roundtrip_indices(self, v):
        assert bitvec.from_indices(bitvec.to_indices(v)) == v

    @given(st.lists(slots, max_size=64))
    def test_roundtrip_from_indices(self, idxs):
        """The reverse round trip: indices -> vector -> sorted unique indices."""
        assert bitvec.to_indices(bitvec.from_indices(idxs)) == sorted(set(idxs))

    @given(vectors)
    def test_count_equals_index_count(self, v):
        assert bitvec.count(v) == len(bitvec.to_indices(v))

    @given(vectors, slots)
    def test_set_then_clear_restores(self, v, i):
        if not bitvec.has(v, i):
            assert bitvec.clear_bit(bitvec.set_bit(v, i), i) == v

    @given(vectors, slots)
    def test_clear_then_set_restores(self, v, i):
        if bitvec.has(v, i):
            assert bitvec.set_bit(bitvec.clear_bit(v, i), i) == v


class TestFibonacciProperties:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_next_is_strictly_greater_fibonacci(self, n):
        f = next_fibonacci(n)
        assert f > n
        assert is_fibonacci(f)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_next_is_minimal(self, n):
        f = next_fibonacci(n)
        # No Fibonacci number lies strictly between n and f.
        if is_fibonacci(n):
            assert next_fibonacci(n - 1) in (n, f) if n > 0 else True

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=12))
    def test_grow_sequence_monotone(self, start, steps):
        """The table's grow sequence: strictly increasing and never leaving
        the Fibonacci ladder, from any starting size."""
        sizes = [next_fibonacci(start)]
        for _ in range(steps):
            sizes.append(next_fibonacci(sizes[-1]))
        assert all(b > a for a, b in zip(sizes, sizes[1:]))
        assert all(is_fibonacci(s) for s in sizes)


class TestLocationProperties:
    @given(vectors, vectors, st.lists(st.tuples(slots, st.booleans()), max_size=20))
    def test_vector_invariant_under_responses(self, v_m, v_q0, responses):
        obj = LocationObject()
        obj.assign("/f", hash_name("/f"), c_n=0, t_a=0)
        obj.v_q = v_q0
        for server, pending in responses:
            obj.set_holder(server, pending=pending)
            assert obj.v_q & (obj.v_h | obj.v_p) == 0


class TestCorrectionProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=10),
        vectors,
        vectors,
    )
    def test_correction_equals_recompute(self, late_servers, v_h0, v_p0):
        """Applying Figure 3 must equal recomputing the vectors from the
        definition: every server that connected after C_n joins V_q, and
        V_h/V_p keep only still-eligible servers not needing a query."""
        m = ClusterMembership()
        base = [m.login(f"base-{i}", ["/store"]) for i in range(3)]
        snapshot = m.n_c
        v_m0 = m.eligible("/store/f")

        obj = LocationObject()
        obj.assign("/store/f", hash_name("/store/f"), c_n=snapshot, t_a=0)
        obj.v_h = v_h0 & v_m0
        obj.v_p = v_p0 & v_m0 & ~obj.v_h & bitvec.FULL_MASK
        obj.v_q = 0

        joined = []
        for i in set(late_servers):
            joined.append(m.login(f"late-{i}", ["/store"]))
        v_m = m.eligible("/store/f")
        v_c_expected = bitvec.from_indices(joined)

        apply_corrections(obj, m, v_m)
        assert obj.v_q == v_c_expected & v_m
        assert obj.v_h == (v_h0 & v_m0) & ~obj.v_q & v_m & bitvec.FULL_MASK
        assert obj.v_p & obj.v_h == 0
        assert obj.v_q & (obj.v_h | obj.v_p) == 0
        assert obj.c_n == m.n_c


class TestHashTableProperties:
    @given(st.lists(st.text(min_size=1, max_size=40), unique=True, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_all_inserted_keys_findable(self, keys):
        t = LocationTable()
        objs = []
        for k in keys:
            obj = LocationObject()
            obj.assign(k, hash_name(k), c_n=0, t_a=0)
            t.insert(obj)
            objs.append(obj)
        for obj in objs:
            assert t.find(obj.key, obj.hash_val) is obj
        assert t.count == len(keys)
        assert is_fibonacci(t.size)
        t.check_invariants()

    @given(
        st.lists(st.text(min_size=1, max_size=20), unique=True, min_size=2, max_size=100),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_removal_leaves_others_intact(self, keys, data):
        t = LocationTable()
        objs = {}
        for k in keys:
            obj = LocationObject()
            obj.assign(k, hash_name(k), c_n=0, t_a=0)
            t.insert(obj)
            objs[k] = obj
        victim = data.draw(st.sampled_from(keys))
        assert t.remove(objs[victim])
        for k, obj in objs.items():
            if k == victim:
                assert t.find(k, obj.hash_val) is None
            else:
                assert t.find(k, obj.hash_val) is obj


class TestEvictionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_expiry_always_64_ticks_after_last_refresh(self, refresh_ticks):
        """Wherever the refreshes land, the object must be hidden exactly on
        the first sweep of its final t_a window after the last refresh."""
        w = EvictionWindows()
        obj = LocationObject()
        obj.assign("/f", hash_name("/f"), c_n=0, t_a=0)
        w.add(obj)
        schedule = sorted(set(refresh_ticks))
        last_refresh_tick = 0
        for tick in range(1, max(schedule, default=0) + WINDOW_COUNT + 1):
            w.tick()
            if obj.hidden:
                break
            if tick in schedule:
                w.refresh(obj)
                last_refresh_tick = tick
        if not obj.hidden:
            # Keep ticking; it must die within 64 ticks of the last refresh.
            remaining = last_refresh_tick + WINDOW_COUNT - w.t_w
            for _ in range(max(0, remaining) + 1):
                if obj.hidden:
                    break
                w.tick()
        assert obj.hidden
        # Died exactly when the clock re-entered its final window.
        assert w.t_w - last_refresh_tick <= WINDOW_COUNT + 1


class CacheMachine(RuleBasedStateMachine):
    """Stateful test: arbitrary interleavings of cache operations keep every
    cross-structure invariant intact."""

    def __init__(self):
        super().__init__()
        self.m = ClusterMembership()
        for i in range(4):
            self.m.login(f"srv-{i}", ["/store"])
        self.cache = NameCache(self.m, lifetime=64.0)
        self.now = 0.0
        self.refs = []

    @rule(i=st.integers(min_value=0, max_value=30))
    def lookup(self, i):
        ref, _ = self.cache.lookup(f"/store/f{i}", now=self.now)
        self.refs.append(ref)

    @rule(server=st.integers(min_value=0, max_value=3), i=st.integers(min_value=0, max_value=30))
    def respond(self, server, i):
        self.cache.update_holder(f"/store/f{i}", hash_name(f"/store/f{i}"), server)

    @rule()
    def tick(self):
        self.now += 1.0
        self.cache.tick()

    @rule()
    def remove_background(self):
        self.cache.run_background_removal()

    @rule(idx=st.integers(min_value=0, max_value=10**6))
    def refresh_some_ref(self, idx):
        if self.refs:
            self.cache.refresh(self.refs[idx % len(self.refs)], now=self.now)

    @rule(idx=st.integers(min_value=0, max_value=10**6))
    def invalidate_some_ref(self, idx):
        if self.refs:
            self.cache.invalidate(self.refs[idx % len(self.refs)])

    @rule()
    def churn_membership(self):
        n = self.m.member_count()
        if n > 1:
            name = self.m.server_name(bitvec.first_bit(self.m.v_members))
            self.m.drop(name)
        else:
            self.m.login(f"srv-new-{self.m.n_c}", ["/store"])

    @invariant()
    def structures_consistent(self):
        self.cache.check_invariants()

    @invariant()
    def simsan_sweep_clean(self):
        # The runtime sanitizer must agree under arbitrary interleavings.
        Sanitizer().sweep(cache=self.cache, membership=self.m)


TestCacheMachine = CacheMachine.TestCase
TestCacheMachine.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
