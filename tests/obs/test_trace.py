"""Span nesting, async spans, and path correlation under simulated time.

These tests drive the tracer from real simulation processes — the spans
must carry sim-kernel timestamps, and nesting must survive the generator
style (no ``with`` blocks across ``yield``) the cluster code uses.
"""

from repro.obs import Observability
from repro.sim.kernel import Simulator


def sim_obs():
    sim = Simulator()
    obs = Observability()
    sim.attach_observability(obs)
    return sim, obs


class TestSpanNesting:
    def test_nested_begin_end_builds_a_tree(self):
        sim, obs = sim_obs()

        def walk():
            trace = obs.tracer.start("/store/f", client="c0")
            hop = trace.begin("cmsd.locate", obs.now(), node="mgr")
            yield sim.timeout(1.0)
            inner = trace.begin("cmsd.locate", obs.now(), node="sup")
            yield sim.timeout(2.0)
            trace.end(inner, obs.now(), outcome="redirect")
            trace.end(hop, obs.now(), outcome="redirect")
            obs.tracer.finish(trace, outcome="resolved")

        sim.run_until_process(sim.process(walk()))
        (trace,) = obs.tracer.finished
        root = trace.root
        assert root.name == "resolve"
        assert root.start == 0.0 and root.end == 3.0
        (hop,) = root.children
        assert (hop.node, hop.start, hop.end) == ("mgr", 0.0, 3.0)
        (inner,) = hop.children
        assert (inner.node, inner.start, inner.end) == ("sup", 1.0, 3.0)
        assert inner.attrs["outcome"] == "redirect"
        assert inner.duration == 2.0

    def test_finish_closes_dangling_spans(self):
        sim, obs = sim_obs()
        trace = obs.tracer.start("/store/f")
        trace.begin("cmsd.locate", obs.now(), node="mgr")
        sim.run(until=5.0)
        obs.tracer.finish(trace, outcome="timeout")
        assert trace.root.children[0].end == 5.0
        assert trace.finished_at == 5.0
        assert trace.done

    def test_end_pops_everything_above_the_target(self):
        _sim, obs = sim_obs()
        trace = obs.tracer.start("/store/f")
        outer = trace.begin("a", obs.now())
        trace.begin("b", obs.now())
        trace.begin("c", obs.now())
        trace.end(outer, obs.now())
        # New spans attach at the root again, not under the popped ones.
        d = trace.begin("d", obs.now())
        assert trace.root.children == [outer, d]

    def test_async_span_outlives_its_opener(self):
        """The rq anchor-wait pattern: open during dispatch, close later."""
        sim, obs = sim_obs()

        def walk():
            trace = obs.tracer.start("/store/f")
            hop = trace.begin("cmsd.locate", obs.now(), node="mgr")
            wait = trace.open_span("rq.wait", obs.now(), node="mgr")
            trace.end(hop, obs.now(), outcome="enqueued")  # dispatch returns
            yield sim.timeout(0.105)  # server response arrives much later
            trace.end(wait, obs.now(), outcome="released")
            obs.tracer.finish(trace, outcome="resolved")

        sim.run_until_process(sim.process(walk()))
        (trace,) = obs.tracer.finished
        (hop,) = trace.root.children
        (wait,) = hop.children
        assert hop.end == 0.0  # the dispatch itself was instantaneous
        assert wait.end == 0.105  # but the wait span kept running
        assert wait.attrs["outcome"] == "released"


class TestPathCorrelation:
    def test_event_attaches_to_active_trace_only(self):
        _sim, obs = sim_obs()
        obs.tracer.event("/store/f", "cache.lookup", hit=False)  # no trace: no-op
        trace = obs.tracer.start("/store/f")
        obs.tracer.event("/store/f", "cache.lookup", node="mgr", hit=True)
        obs.tracer.event("/store/other", "cache.lookup", hit=True)  # different path
        obs.tracer.finish(trace)
        (ev,) = trace.root.events
        assert ev["name"] == "cache.lookup" and ev["hit"] is True

    def test_concurrent_same_path_lookups_use_latest_trace(self):
        _sim, obs = sim_obs()
        first = obs.tracer.start("/store/f")
        second = obs.tracer.start("/store/f")
        obs.tracer.event("/store/f", "cache.lookup", hit=True)
        assert second.root.events and not first.root.events
        obs.tracer.finish(second)
        obs.tracer.event("/store/f", "cache.lookup", hit=False)
        assert len(first.root.events) == 1
        obs.tracer.finish(first)
        assert obs.tracer.active_count == 0

    def test_finished_retention_is_bounded(self):
        _sim, obs = sim_obs()
        obs.tracer.finished = type(obs.tracer.finished)(maxlen=4)
        for i in range(10):
            obs.tracer.finish(obs.tracer.start(f"/store/f{i}"))
        assert len(obs.tracer.finished) == 4
        assert obs.tracer.finished[0].path == "/store/f6"


class TestSimClockBinding:
    def test_spans_are_stamped_with_sim_time_not_wall_time(self):
        sim, obs = sim_obs()
        sim.run(until=42.0)
        trace = obs.tracer.start("/store/f")
        assert trace.root.start == 42.0

    def test_unbound_hub_uses_frozen_zero_clock(self):
        obs = Observability()
        trace = obs.tracer.start("/store/f")
        obs.tracer.finish(trace)
        assert trace.root.start == 0.0 and trace.finished_at == 0.0
