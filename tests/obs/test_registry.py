"""Counter/gauge/registry semantics: identity, label handling, roll-ups."""

import pytest

from repro.obs import MetricsRegistry
from repro.sim.monitor import Histogram


class TestCounter:
    def test_starts_at_zero(self):
        reg = MetricsRegistry()
        assert reg.counter("c").value == 0

    def test_inc_default_and_amount(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_same_name_and_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", node="s1")
        b = reg.counter("hits", node="s1")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", node="s1", role="server")
        b = reg.counter("hits", role="server", node="s1")
        assert a is b

    def test_different_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", node="s1")
        b = reg.counter("hits", node="s2")
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_counter_total_sums_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("hits", node="s1").inc(3)
        reg.counter("hits", node="s2").inc(4)
        reg.counter("misses", node="s1").inc(99)
        assert reg.counter_total("hits") == 7

    def test_counter_total_of_unknown_name_is_zero(self):
        assert MetricsRegistry().counter_total("nope") == 0


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("load")
        g.set(0.5)
        g.add(0.25)
        g.add(-0.5)
        assert g.value == pytest.approx(0.25)

    def test_gauge_and_counter_namespaces_are_separate(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        g = reg.gauge("x")
        assert g.value == 0


class TestHistogramSeries:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait", node="m1")
        assert h is reg.histogram("wait", node="m1")
        assert isinstance(h, Histogram)

    def test_merged_histogram_spans_label_sets(self):
        reg = MetricsRegistry()
        reg.histogram("wait", node="m1").record(1.0)
        reg.histogram("wait", node="m2").record(3.0)
        merged = reg.merged_histogram("wait").summary()
        assert merged.count == 2
        assert merged.mean == pytest.approx(2.0)

    def test_merged_histogram_does_not_mutate_sources(self):
        reg = MetricsRegistry()
        src = reg.histogram("wait", node="m1")
        src.record(1.0)
        reg.merged_histogram("wait").record(100.0)
        assert src.summary().count == 1


class TestCollect:
    def test_collect_yields_sorted_series(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", node="s1").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(0.1)
        rows = list(reg.collect())
        kinds = [r[0] for r in rows]
        names = [r[1] for r in rows]
        assert kinds == sorted(kinds)
        assert names == ["a", "b", "g", "h"]
        by_name = {r[1]: r for r in rows}
        assert by_name["a"][2] == {"node": "s1"}
        assert by_name["a"][3].value == 2
