"""End-to-end observability against a live cluster, with an oracle.

The scripted workload has exactly predictable cache behaviour on a flat
(depth-1) cluster: a cold locate of an existing file costs the manager
two cache lookups (the miss that creates the location object and anchors
the waiter, then the hit when the fast-response release re-resolves it),
and every warm locate costs one lookup, one hit.  The counters must match
that oracle exactly — if instrumentation drifts off the hot path, or the
resolution flow changes shape, this fails loudly.
"""

import pytest

from repro.cluster import ScallaCluster, ScallaConfig

N_PATHS = 5
WARM_ROUNDS = 2


@pytest.fixture(scope="module")
def driven_cluster():
    cluster = ScallaCluster(4, config=ScallaConfig(seed=13, observability=True))
    paths = [f"/store/obs/f{i}.root" for i in range(N_PATHS)]
    cluster.populate(paths, size=64)
    cluster.settle()
    client = cluster.client()

    def workload():
        for _round in range(1 + WARM_ROUNDS):
            for p in paths:
                yield from client.locate(p)

    cluster.run_process(workload(), limit=600)
    return cluster


class TestCacheCountersMatchOracle:
    def test_hit_and_miss_counts(self, driven_cluster):
        m = driven_cluster.obs.metrics
        lookups = m.counter_total("cache_lookups_total")
        hits = m.counter_total("cache_hits_total")
        # Cold: 2 lookups / 1 hit per path.  Warm: 1 lookup / 1 hit.
        assert lookups == N_PATHS * (2 + WARM_ROUNDS)
        assert hits == N_PATHS * (1 + WARM_ROUNDS)
        misses = lookups - hits
        assert misses == N_PATHS  # exactly one cold miss per distinct path

    def test_resolution_and_queue_counters(self, driven_cluster):
        m = driven_cluster.obs.metrics
        total = N_PATHS * (1 + WARM_ROUNDS)
        assert m.counter_total("client_locates_total") == total
        assert m.counter_total("cmsd_locate_requests_total") == total
        # Warm locates redirect synchronously; cold ones are released by a
        # Have and counted as fast releases — together they cover the lot.
        assert m.counter_total("cmsd_redirects_total") == N_PATHS * WARM_ROUNDS
        assert (
            m.counter_total("cmsd_redirects_total")
            + m.counter_total("cmsd_fast_released_total")
        ) == total
        # Only cold locates anchor a fast-response waiter, and every one
        # was released by a Have, none expired into the full delay.
        assert m.counter_total("rq_enqueued_total") == N_PATHS
        assert m.counter_total("rq_released_total") == N_PATHS
        assert m.counter_total("rq_expired_total") == 0
        assert m.counter_total("cmsd_fast_released_total") == N_PATHS

    def test_derived_rollup_is_consistent(self, driven_cluster):
        d = driven_cluster.obs_snapshot(traces=False)["derived"]
        total = N_PATHS * (1 + WARM_ROUNDS)
        assert d["resolutions"] == total
        assert d["cache_hit_ratio"] == pytest.approx(
            (N_PATHS * (1 + WARM_ROUNDS)) / (N_PATHS * (2 + WARM_ROUNDS))
        )
        assert d["fast_release_ratio"] == 1.0
        assert d["queue_wait"]["count"] == N_PATHS
        assert 0 < d["queue_wait"]["p99"] < 0.133


class TestTraces:
    def test_every_locate_left_a_finished_trace(self, driven_cluster):
        finished = driven_cluster.obs.tracer.finished
        assert len(finished) == N_PATHS * (1 + WARM_ROUNDS)
        assert driven_cluster.obs.tracer.active_count == 0
        assert all(t.root.attrs["outcome"] == "resolved" for t in finished)

    def test_cold_trace_records_the_anchor_wait(self, driven_cluster):
        cold = driven_cluster.obs.tracer.finished[0]
        walk = {s.name for s in cold.root.children}
        assert "cmsd.locate" in walk
        waits = [
            child
            for hop in cold.root.children
            for child in hop.children
            if child.name == "rq.wait"
        ]
        (wait,) = waits
        assert wait.attrs["outcome"] == "released"
        assert 0 < wait.duration < 0.133

    def test_warm_trace_has_no_wait(self, driven_cluster):
        warm = driven_cluster.obs.tracer.finished[-1]
        spans = [c for hop in warm.root.children for c in hop.children]
        assert not any(s.name == "rq.wait" for s in spans)
        # The cache hit shows up as an event on the locate hop.
        events = [e for hop in warm.root.children for e in hop.events]
        assert any(e["name"] == "cache.lookup" and e["hit"] for e in events)


class TestDisabledPath:
    def test_observability_off_means_no_hub(self):
        cluster = ScallaCluster(2, config=ScallaConfig(seed=13))
        assert cluster.obs is None
        with pytest.raises(RuntimeError):
            cluster.obs_snapshot()
