"""Snapshot export: strict-JSON round-trip, derived roll-up, file I/O."""

import json

import pytest

from repro.obs import Observability, export


def populated_hub():
    obs = Observability()
    obs.metrics.counter("cache_lookups_total", node="mgr").inc(10)
    obs.metrics.counter("cache_hits_total", node="mgr").inc(4)
    obs.metrics.counter("client_locates_total", node="c0").inc(5)
    obs.metrics.counter("cmsd_locate_requests_total", node="mgr").inc(5)
    obs.metrics.counter("cmsd_messages_sent_total", node="mgr").inc(40)
    obs.metrics.counter("rq_released_total", node="mgr").inc(3)
    obs.metrics.counter("rq_expired_total", node="mgr").inc(1)
    obs.metrics.gauge("cache_population", node="mgr").set(7)
    obs.metrics.histogram("rq_wait_seconds", node="mgr").record(0.000105)
    trace = obs.tracer.start("/store/f", client="c0")
    span = trace.begin("cmsd.locate", 0.0, node="mgr")
    trace.event("cache.lookup", 0.0, node="mgr", hit=False)
    trace.end(span, 1e-4, outcome="enqueued")
    obs.tracer.finish(trace, outcome="resolved")
    return obs


class TestRoundTrip:
    def test_snapshot_survives_strict_json(self):
        snap = export.snapshot(populated_hub())
        text = export.to_json(snap)
        assert json.loads(text) == json.loads(export.to_json(json.loads(text)))

    def test_empty_hub_is_still_strict_json(self):
        # The empty-histogram Summary must serialize as zeros, not NaN.
        snap = export.snapshot(Observability())
        parsed = json.loads(export.to_json(snap))
        assert parsed["schema"] == export.SCHEMA
        assert parsed["derived"]["queue_wait"]["count"] == 0
        assert parsed["derived"]["queue_wait"]["p99"] == 0.0

    def test_write_and_load(self, tmp_path):
        snap = export.snapshot(populated_hub(), extra={"experiment": "T1"})
        out = export.write(snap, tmp_path / "nested" / "t1.metrics.json")
        loaded = export.load(out)
        assert loaded["extra"] == {"experiment": "T1"}
        assert loaded == json.loads(export.to_json(snap))


class TestDerived:
    def test_headline_numbers(self):
        d = export.derive(populated_hub())
        assert d["cache_lookups"] == 10
        assert d["cache_hit_ratio"] == pytest.approx(0.4)
        assert d["resolutions"] == 5  # client-side count wins
        assert d["locate_hops"] == 5
        assert d["messages_per_resolution"] == pytest.approx(8.0)
        assert d["fast_release_ratio"] == pytest.approx(0.75)
        assert d["queue_wait"]["count"] == 1

    def test_resolutions_falls_back_to_cmsd_count(self):
        obs = Observability()
        obs.metrics.counter("cmsd_locate_requests_total", node="mgr").inc(7)
        assert export.derive(obs)["resolutions"] == 7

    def test_zero_activity_yields_zero_ratios(self):
        d = export.derive(Observability())
        assert d["cache_hit_ratio"] == 0.0
        assert d["messages_per_resolution"] == 0.0
        assert d["fast_release_ratio"] == 0.0


class TestSnapshotShape:
    def test_histograms_export_summaries_not_samples(self):
        snap = export.snapshot(populated_hub())
        hists = [m for m in snap["metrics"] if m["kind"] == "histogram"]
        assert hists and all("summary" in h and "value" not in h for h in hists)

    def test_traces_optional(self):
        obs = populated_hub()
        assert "traces" not in export.snapshot(obs, traces=False)
        snap = export.snapshot(obs)
        (trace,) = snap["traces"]
        assert trace["path"] == "/store/f"
        assert trace["root"]["children"][0]["attrs"]["outcome"] == "enqueued"
