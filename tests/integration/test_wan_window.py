"""Integration: the deadline-aware fast-response window on WAN federations.

EXPERIMENTS.md finding #4 (now fixed): with an 80 ms one-way site link the
133 ms fast-response window expires before query responses can possibly
arrive, so at seed every cold locate of an *existing* remote file silently
degraded to the full 5 s conservative wait.  These tests pin the fix from
all three sides:

* late-response reconciliation (default on) releases the parked client the
  moment the straggling ``HaveFile`` lands (~2x one-way latency);
* adaptive window sizing + bounded re-query keep the release on the fast
  path outright (no window expiry once RTT estimates are warm);
* on a LAN, with adaptive windowing off, behaviour is indistinguishable
  from the paper's fixed window — the fix is inert where the bug was not.
"""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.ids import cmsd_host, xrootd_host
from repro.sim.latency import Uniform

ONE_WAY = 80e-3  # transatlantic one-way latency (§IV-A federations)


def make_wan(settle: float = 0.5, *, n: int = 4, **config_kwargs):
    """A manager at 'hq' with all data servers behind an 80 ms site link."""
    cluster = ScallaCluster(n, config=ScallaConfig(seed=74, **config_kwargs))
    remote = [h for s in cluster.servers for h in (cmsd_host(s), xrootd_host(s))]
    cluster.network.federate(
        {"remote": remote, "hq": [cmsd_host(cluster.managers[0])]},
        wan_latency=Uniform(ONE_WAY - 2e-3, ONE_WAY + 2e-3),
    )
    cluster.populate(["/store/wan.root"], size=64)
    cluster.settle(settle)
    return cluster


def cold_locate(cluster, path="/store/wan.root"):
    client = cluster.client()
    cluster.network.set_host_site(client.host.name, "hq")
    t0 = cluster.sim.now

    def probe():
        yield from client.locate(path)
        return cluster.sim.now - t0

    return cluster.run_process(probe(), limit=120), client


class TestLateRelease:
    def test_seed_behaviour_degrades_to_full_delay(self):
        """The "before" row: late answers help nobody, clients eat 5 s."""
        cluster = make_wan(late_release=False)
        elapsed, _ = cold_locate(cluster)
        assert elapsed > 5.0
        assert cluster.manager_cmsd().stats.late_released == 0

    def test_late_response_releases_parked_client(self):
        cluster = make_wan()  # defaults: late_release on, adaptive off
        elapsed, client = cold_locate(cluster)
        mgr = cluster.manager_cmsd()
        # Released at ~2x one-way (query out + response back), not 5 s.
        assert elapsed < 0.3
        assert mgr.stats.late_released >= 1
        assert mgr.rq.timeouts >= 1  # the window did expire...
        assert client.stats.waits == 1  # ...and the client was parked once

    def test_parked_registry_drains(self):
        cluster = make_wan()
        cold_locate(cluster)
        cluster.run(until=cluster.sim.now + 2 * cluster.config.full_delay)
        assert cluster.manager_cmsd().rq.parked_waiters() == 0


class TestAdaptiveWindow:
    def test_warm_rtt_keeps_release_on_fast_path(self):
        # Settle past two heartbeat rounds so EWMA RTT reflects the WAN.
        cluster = make_wan(settle=2.5, adaptive_window=True)
        elapsed, client = cold_locate(cluster)
        mgr = cluster.manager_cmsd()
        assert elapsed < 0.3
        assert mgr.rq.timeouts == 0  # window sized to cover the RTT
        assert mgr.rq.fast_responses >= 1
        assert client.stats.waits == 0

    def test_cold_rtt_recovers_through_requery(self):
        """Before heartbeats carry WAN samples the first window is still
        133 ms; the bounded re-query (not the full delay) absorbs that."""
        cluster = make_wan(settle=0.5, adaptive_window=True)
        elapsed, client = cold_locate(cluster)
        mgr = cluster.manager_cmsd()
        assert elapsed < 0.3
        assert mgr.stats.requeries >= 1
        assert client.stats.waits == 0  # never condemned to the full delay

    def test_requery_is_bounded(self):
        """A file that exists nowhere gets at most requery_limit re-floods
        before the full-delay fallback — no infinite re-query loop."""
        from repro.cluster.client import NoSuchFile

        cluster = make_wan(settle=2.5, adaptive_window=True, full_delay=2.0)
        client = cluster.client()
        cluster.network.set_host_site(client.host.name, "hq")

        def probe():
            try:
                yield from client.locate("/store/ghost.root")
            except NoSuchFile:
                return True
            return False

        assert cluster.run_process(probe(), limit=120)
        mgr = cluster.manager_cmsd()
        assert mgr.stats.requeries <= mgr.config.requery_limit


class TestLanUnchanged:
    def make_lan(self, **config_kwargs):
        cluster = ScallaCluster(4, config=ScallaConfig(seed=74, **config_kwargs))
        cluster.populate(["/store/lan.root"], size=64)
        cluster.settle()
        return cluster

    def test_lan_timing_identical_with_and_without_late_release(self):
        """On a LAN no response is ever late, so the fix must be inert:
        same locate latency, same message count, bit for bit."""
        results = []
        for late_release in (True, False):
            cluster = self.make_lan(late_release=late_release)
            client = cluster.client()
            t0 = cluster.sim.now

            def probe(client=client, cluster=cluster):
                yield from client.locate("/store/lan.root")
                return cluster.sim.now - t0

            elapsed = cluster.run_process(probe(), limit=60)
            results.append((elapsed, cluster.network.stats.sent))
        assert results[0] == results[1]

    def test_lan_adaptive_window_preserves_the_paper_default(self):
        """With microsecond RTTs, max(133 ms, k x RTT) is exactly 133 ms."""
        cluster = self.make_lan(adaptive_window=True)
        cluster.settle(2.5)  # heartbeats populate the RTT estimates
        mgr = cluster.manager_cmsd()
        assert mgr._fast_window() == mgr.config.fast_period

    def test_lan_fast_release_unaffected(self):
        cluster = self.make_lan(adaptive_window=True)
        elapsed, _ = cold_locate_lan(cluster)
        mgr = cluster.manager_cmsd()
        assert elapsed < 1e-3
        assert mgr.rq.fast_responses >= 1
        assert mgr.stats.late_released == 0 and mgr.stats.requeries == 0


def cold_locate_lan(cluster, path="/store/lan.root"):
    client = cluster.client()
    t0 = cluster.sim.now

    def probe():
        yield from client.locate(path)
        return cluster.sim.now - t0

    return cluster.run_process(probe(), limit=60), client


class TestAnchorExhaustionVisibility:
    def test_rejection_counted_in_stats(self):
        """Anchor exhaustion used to be invisible outside the queue's own
        counter; it now shows up in CmsdStats (and on traces)."""
        cluster = ScallaCluster(2, config=ScallaConfig(seed=75, full_delay=0.5))
        # Shrink the queue to one anchor so the second distinct path rejects.
        cluster.settle()
        mgr = cluster.manager_cmsd()
        from repro.core.response_queue import ResponseQueue

        mgr.rq = ResponseQueue(anchors=1, period=mgr.config.fast_period)
        client = cluster.client()

        def probe():
            from repro.cluster.client import NoSuchFile

            def one(path):
                try:
                    yield from client.locate(path)
                except NoSuchFile:
                    pass

            p1 = cluster.sim.process(one("/store/gone-a.root"))
            p2 = cluster.sim.process(one("/store/gone-b.root"))
            yield cluster.sim.all_of([p1, p2])

        cluster.run_process(probe(), limit=60)
        assert mgr.stats.rq_rejected >= 1
        assert mgr.rq.rejected >= 1
