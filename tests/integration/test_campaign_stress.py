"""Stress integration: a full analysis campaign at §II-A scale.

The paper's motivating requirement — "sustain thousands of transactions per
second" from "a thousand or more simultaneous analysis jobs" — as one
asserted test: a 64-server cluster, 1,000-file dataset, 300 concurrent jobs
with Zipf-popular file selections.  Everything must finish, every read must
land on a genuine holder, and the manager's cache arithmetic must balance.
"""

import random

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.workloads.jobs import JobSpec, run_job
from repro.workloads.namegen import hep_paths
from repro.workloads.popularity import ZipfChooser

N_SERVERS = 64
N_FILES = 1_000
N_JOBS = 300
FILES_PER_JOB = 10


@pytest.fixture(scope="module")
def campaign():
    rng = random.Random(77)
    cluster = ScallaCluster(N_SERVERS, config=ScallaConfig(seed=77))
    dataset = hep_paths(N_FILES, rng=rng)
    cluster.populate(dataset, copies=2, size=16 * 1024)
    cluster.settle()
    chooser = ZipfChooser(dataset, s=1.1)
    results = []

    def run():
        procs = []
        for j in range(N_JOBS):
            files = tuple({chooser.choose(rng) for _ in range(FILES_PER_JOB)})
            client = cluster.client(f"job{j:04d}")
            delay = rng.uniform(0.0, 3.0)

            def job(client=client, files=files, delay=delay):
                yield cluster.sim.timeout(delay)
                results.append((yield from run_job(client, JobSpec(files=files))))

            procs.append(cluster.sim.process(job()))
        yield cluster.sim.all_of(procs)

    cluster.run_process(run(), limit=600)
    return cluster, results


class TestCampaign:
    def test_every_job_finishes_cleanly(self, campaign):
        _cluster, results = campaign
        assert len(results) == N_JOBS
        assert sum(r.failures for r in results) == 0

    def test_sustained_transaction_rate(self, campaign):
        """The §II-A requirement: thousands of metadata transactions/s."""
        _cluster, results = campaign
        total_md = sum(r.metadata_ops for r in results)
        span = max(r.finished_at for r in results) - min(r.started_at for r in results)
        assert total_md / span > 1_000

    def test_latency_stays_low_under_campaign_load(self, campaign):
        _cluster, results = campaign
        opens = sorted(v for r in results for v in r.open_latencies)
        p95 = opens[int(len(opens) * 0.95)]
        assert p95 < 1e-3  # sub-millisecond p95 open latency

    def test_manager_cache_accounting_balances(self, campaign):
        cluster, _results = campaign
        mgr = cluster.manager_cmsd()
        stats = mgr.cache.stats
        assert stats.lookups == stats.hits + stats.adds + (
            stats.lookups - stats.hits - stats.adds
        )
        # The hit rate must be high under Zipf popularity.
        assert stats.hits / stats.lookups > 0.5
        # The cache only tracks requested names, never the whole namespace.
        assert mgr.cache.live_count() <= N_FILES
        mgr.cache.check_invariants()

    def test_request_rarely_respond_economy(self, campaign):
        """Across the whole campaign, responses stay a small fraction of
        queries: most servers stay silent for most files (2 holders / 64)."""
        cluster, _results = campaign
        mgr = cluster.manager_cmsd()
        assert mgr.stats.haves_received < mgr.stats.queries_sent * 0.2

    def test_all_reads_landed_on_holders(self, campaign):
        """Spot-check the invariant behind every redirect: the chosen node
        really has the file."""
        cluster, _results = campaign
        rng = random.Random(5)
        mgr = cluster.manager_cmsd()
        for _ in range(50):
            # Sample a cached object and verify every V_h holder is real.
            visible = list(mgr.cache.table.visible())
            obj = rng.choice(visible)
            from repro.core import bitvec

            for slot in bitvec.iter_bits(obj.v_h):
                name = mgr.membership.server_name(slot)
                assert cluster.node(name).fs.exists(obj.key), (
                    f"{name} advertised for {obj.key} but lacks it"
                )
