"""Integration: a flat (single-level) cluster end to end."""

import pytest

from repro.cluster import NoSuchFile, ScallaCluster, ScallaConfig
from repro.cluster.client import FileExists


@pytest.fixture()
def cluster():
    c = ScallaCluster(4, config=ScallaConfig(seed=7))
    c.populate([f"/store/run1/f{i}.root" for i in range(8)], size=2048)
    c.settle()
    return c


class TestOpenRead:
    def test_open_existing_file(self, cluster):
        client = cluster.client()
        res = cluster.run_process(client.open("/store/run1/f0.root"), limit=60)
        assert res.size == 2048
        assert res.node in cluster.servers
        assert res.latency < 0.01  # sub-10ms, nowhere near the 5 s delay

    def test_open_redirects_to_actual_holder(self, cluster):
        client = cluster.client()
        res = cluster.run_process(client.open("/store/run1/f3.root"), limit=60)
        assert cluster.node(res.node).fs.exists("/store/run1/f3.root")

    def test_fetch_whole_file(self, cluster):
        client = cluster.client()
        data = cluster.run_process(client.fetch("/store/run1/f1.root"), limit=60)
        assert data == b"\x00" * 2048

    def test_read_write_through_cluster(self, cluster):
        client = cluster.client()

        def scenario():
            res = yield from client.open("/store/run1/f2.root", mode="w")
            yield from client.write(res, 0, b"physics!")
            back = yield from client.read(res, 0, 8)
            yield from client.close(res)
            return back

        assert cluster.run_process(scenario(), limit=60) == b"physics!"

    def test_stat_existing(self, cluster):
        client = cluster.client()
        exists, size = cluster.run_process(client.stat("/store/run1/f0.root"), limit=60)
        assert exists and size == 2048

    def test_stat_missing(self, cluster):
        client = cluster.client()
        exists, size = cluster.run_process(client.stat("/store/ghost.root"), limit=60)
        assert not exists


class TestNonexistence:
    def test_missing_file_raises_after_full_delay(self, cluster):
        """Non-existence costs the full 5 s wait (§III-B): silence is the
        only negative signal."""
        client = cluster.client()
        t0 = cluster.sim.now
        with pytest.raises(NoSuchFile):
            cluster.run_process(client.open("/store/ghost.root"), limit=60)
        elapsed = cluster.sim.now - t0
        assert elapsed >= cluster.config.full_delay

    def test_waits_reported(self, cluster):
        client = cluster.client()
        with pytest.raises(NoSuchFile):
            cluster.run_process(client.open("/store/ghost.root"), limit=60)
        assert client.stats.waits >= 1


class TestCaching:
    def test_second_lookup_is_fast(self, cluster):
        c1 = cluster.client()
        first = cluster.run_process(c1.open("/store/run1/f4.root"), limit=60)
        c2 = cluster.client()
        second = cluster.run_process(c2.open("/store/run1/f4.root"), limit=60)
        # Cached resolution skips the query round trip entirely.
        assert second.latency < first.latency

    def test_manager_caches_location(self, cluster):
        client = cluster.client()
        cluster.run_process(client.open("/store/run1/f5.root"), limit=60)
        mgr = cluster.manager_cmsd()
        before = mgr.stats.queries_sent
        cluster.run_process(cluster.client().open("/store/run1/f5.root"), limit=60)
        assert mgr.stats.queries_sent == before  # no re-flood

    def test_request_rarely_respond(self, cluster):
        """Only the holder answers a flood: 4 queries out, 1 have back."""
        client = cluster.client()
        mgr = cluster.manager_cmsd()
        cluster.run_process(client.open("/store/run1/f6.root"), limit=60)
        assert mgr.stats.queries_sent == 4
        assert mgr.stats.haves_received == 1


class TestCreate:
    def test_create_new_file(self, cluster):
        client = cluster.client()
        res = cluster.run_process(client.open("/store/new.root", mode="w", create=True), limit=60)
        assert cluster.node(res.node).fs.exists("/store/new.root")

    def test_create_waits_full_delay(self, cluster):
        """File creation necessarily eats one full delay (§III-B2)."""
        client = cluster.client()
        t0 = cluster.sim.now
        cluster.run_process(client.open("/store/new2.root", mode="w", create=True), limit=60)
        assert cluster.sim.now - t0 >= cluster.config.full_delay

    def test_create_existing_raises(self, cluster):
        client = cluster.client()
        with pytest.raises(FileExists):
            cluster.run_process(
                client.open("/store/run1/f0.root", mode="w", create=True), limit=60
            )

    def test_created_file_locatable_afterwards(self, cluster):
        client = cluster.client()
        cluster.run_process(client.open("/store/fresh.root", mode="w", create=True), limit=60)
        res = cluster.run_process(cluster.client().open("/store/fresh.root"), limit=60)
        assert res.size == 0


class TestRemove:
    def test_remove_then_open_fails(self, cluster):
        client = cluster.client()
        assert cluster.run_process(client.remove("/store/run1/f7.root"), limit=60)
        with pytest.raises(NoSuchFile):
            cluster.run_process(cluster.client().open("/store/run1/f7.root"), limit=120)

    def test_remove_missing_returns_false(self, cluster):
        client = cluster.client()
        assert not cluster.run_process(client.remove("/store/ghost.root"), limit=60)


class TestReplicas:
    def test_replicated_file_selection_rotates(self):
        cluster = ScallaCluster(4, config=ScallaConfig(seed=3))
        cluster.populate(["/store/hot.root"], copies=3, size=128)
        cluster.settle()
        nodes = set()
        for _ in range(6):
            res = cluster.run_process(cluster.client().open("/store/hot.root"), limit=60)
            nodes.add(res.node)
        # Round-robin selection must spread across all three replicas.
        assert len(nodes) == 3
