"""Integration: multi-level (supervisor) trees.

Uses a small fanout so a two/three-level tree stays cheap: fanout=4 with 16
servers gives manager -> 4 supervisors -> 16 servers.
"""

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.ids import Role


@pytest.fixture(scope="module")
def tree():
    c = ScallaCluster(16, config=ScallaConfig(seed=11, fanout=4))
    c.populate([f"/store/data/f{i}.root" for i in range(32)], size=512)
    c.settle()
    return c


class TestTreeResolution:
    def test_topology_is_two_levels(self, tree):
        assert tree.topology.depth() == 2
        assert len(tree.topology.supervisors) == 4

    def test_open_descends_through_supervisor(self, tree):
        client = tree.client()
        res = tree.run_process(client.open("/store/data/f5.root"), limit=60)
        assert res.redirects == 2  # manager -> supervisor -> server
        assert tree.node(res.node).fs.exists("/store/data/f5.root")

    def test_every_file_reachable(self, tree):
        client = tree.client()
        for i in range(0, 32, 5):
            res = tree.run_process(client.open(f"/store/data/f{i}.root"), limit=60)
            assert res.size == 512

    def test_supervisor_compresses_responses(self, tree):
        """The manager sees at most one HaveFile per supervisor per file,
        no matter how many leaf servers answered below (§II-B2)."""
        c = ScallaCluster(16, config=ScallaConfig(seed=12, fanout=4))
        # Every server holds the file: worst case for response compression.
        for s in c.servers:
            c.place("/store/hot.root", s, size=64)
        c.settle()
        mgr = c.manager_cmsd()
        c.run_process(c.client().open("/store/hot.root"), limit=60)
        # 4 supervisors can answer; 16 leaf responses were compressed.
        assert mgr.stats.haves_received <= 4

    def test_supervisor_caches_after_first_query(self, tree):
        client = tree.client()
        res = tree.run_process(client.open("/store/data/f9.root"), limit=60)
        sup_name = tree.topology.nodes[res.node].parents[0]
        sup = tree.node(sup_name).cmsd
        queries_before = sup.stats.queries_sent
        tree.run_process(tree.client().open("/store/data/f9.root"), limit=60)
        assert sup.stats.queries_sent == queries_before

    def test_create_descends_tree(self, tree):
        client = tree.client()
        res = tree.run_process(
            client.open("/store/data/created.root", mode="w", create=True), limit=120
        )
        node = tree.node(res.node)
        assert node.role is Role.SERVER
        assert node.fs.exists("/store/data/created.root")

    def test_created_file_visible_at_manager_level(self, tree):
        client = tree.client()
        tree.run_process(client.open("/store/data/adv.root", mode="w", create=True), limit=120)
        tree.settle(0.01)
        res = tree.run_process(tree.client().open("/store/data/adv.root"), limit=60)
        assert res.size == 0


class TestDeepTree:
    def test_three_level_tree_resolves(self):
        c = ScallaCluster(8, config=ScallaConfig(seed=13, fanout=2))
        assert c.topology.depth() == 3
        c.populate(["/store/deep.root"], size=256)
        c.settle()
        res = c.run_process(c.client().open("/store/deep.root"), limit=60)
        assert res.redirects == 3
        assert res.size == 256

    def test_latency_grows_linearly_with_depth(self):
        """§II-B5: cached redirection costs <50 µs *per tree level*."""
        lat = {}
        for n, fanout in ((4, 64), (16, 4), (8, 2)):
            c = ScallaCluster(n, config=ScallaConfig(seed=14, fanout=fanout))
            c.populate(["/store/x.root"], size=64)
            c.settle()
            c.run_process(c.client().open("/store/x.root"), limit=60)  # warm caches
            res = c.run_process(c.client().open("/store/x.root"), limit=60)
            lat[c.topology.depth()] = res.latency
        assert lat[1] < lat[2] < lat[3]
        # Each extra level adds well under 50 µs once cached.
        assert lat[2] - lat[1] < 50e-6
        assert lat[3] - lat[2] < 50e-6
