"""Every example script must run to completion and print its story.

Examples are executable documentation; these tests keep them from rotting.
Each runs in a subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "cluster up: 64 servers" in out
        assert "cold open" in out and "warm open" in out
        assert "fetched" not in out  # renamed long ago; guard wording drift
        assert "roundtrip : wrote+read back b'brand new physics'" in out

    def test_babar_analysis(self):
        out = run_example("babar_analysis.py")
        assert "200 jobs finished" in out
        assert "0 failures" in out
        assert "hit rate" in out

    def test_qserv_survey(self):
        out = run_example("qserv_survey.py")
        assert "point query" in out
        assert "re-dispatch" in out
        assert "fault tolerance came from Scalla's mapping" in out

    def test_failure_drill(self):
        out = run_example("failure_drill.py")
        assert "members=16 online=15 offline=1" in out  # case 1 observed
        assert "'within seconds of restarting'" in out

    def test_wan_federation(self):
        out = run_example("wan_federation.py")
        assert "local replica" in out
        assert "tape-archived file staged at SLAC" in out
        # Locality-aware selection: every hot-file line must be local.
        hot_lines = [ln for ln in out.splitlines() if "replicated hot file" in ln]
        assert len(hot_lines) == 3
        assert all("local replica" in ln for ln in hot_lines)
