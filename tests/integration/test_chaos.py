"""Chaos soak: gray failures + interior churn never corrupt results.

The fault-tolerance tentpole's end-to-end harness.  A cluster with two
peer managers runs a continuous read workload while a seeded schedule
crashes interior and leaf nodes, isolates cmsds (gray failure: control
plane dark, data plane alive), and severs links one-way — on top of
probabilistic message loss, duplication, and delay spikes on every link.

Asserted invariants, per the paper's recoverability objective (§VI):

* **zero stale results** — every successful open lands on a node whose
  disk actually holds the file;
* **zero stranded clients** — every read terminates (success or a typed
  ``ScallaError``) within a bounded sim-time budget; a hung client trips
  ``run_process(limit=...)`` and fails the test;
* **bounded unavailability** — reads keep succeeding during the churn,
  and once every injected failure is recovered a full verify sweep
  resolves every file at ordinary latency.

Everything is seeded: the schedule, the chaos RNG, and the workload all
derive from the test seed, so a failing seed replays exactly.
"""

import random

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.client import ClientConfig, ScallaError
from repro.cluster.ids import cmsd_host
from repro.sim import ChaosConfig
from repro.sim.failures import FailureEvent, random_chaos_schedule

SEEDS = [7, 19, 33]

N_SERVERS = 8
N_FILES = 12
HORIZON = 10.0  # chaos window, simulated seconds
COOLDOWN = 2.0  # post-recovery settle before the verify sweep


def chaos_cluster(seed, **overrides):
    cfg = dict(
        seed=seed,
        fanout=4,  # 2 managers -> 2 supervisors -> 8 servers
        managers=2,
        heartbeat_interval=0.2,
        disconnect_timeout=0.7,
        drop_timeout=60.0,
        relogin_timeout=0.5,
        full_delay=1.0,
        chaos=ChaosConfig(
            drop_prob=0.02,
            dup_prob=0.02,
            delay_spike_prob=0.05,
            delay_spike=0.05,
            seed=seed,
        ),
        # Short client timeouts: dead-manager detection in fractions of a
        # second keeps the read cadence high through the churn window.
        client=ClientConfig(
            locate_timeout=0.5, op_timeout=0.5, pending_open_timeout=5.0
        ),
    )
    cfg.update(overrides)
    cluster = ScallaCluster(N_SERVERS, config=ScallaConfig(**cfg))
    paths = [f"/store/c/f{i}.root" for i in range(N_FILES)]
    for i, path in enumerate(paths):
        # One replica in each supervisor's subtree: no single crash makes
        # a file legitimately unreachable, so any hard failure during the
        # soak is bounded-unavailability, not data loss.
        cluster.place(path, cluster.servers[i % 4], size=64)
        cluster.place(path, cluster.servers[4 + i % 4], size=64)
    cluster.settle(0.5)
    return cluster, paths


def run_chaos_executor(cluster, schedule):
    """Execute *schedule* through the cluster layer.

    Node-level kinds go through ScallaNode lifecycle (daemons must die
    with their host); link-level kinds act on the cmsd network endpoints
    — an isolated cmsd with a live xrootd is precisely the gray failure
    a plain crash cannot model.
    """
    base = cluster.sim.now

    def executor():
        for ev in schedule:
            delay = base + ev.at - cluster.sim.now
            if delay > 0:
                yield cluster.sim.timeout(delay)
            if ev.kind == "crash":
                if cluster.node(ev.target).running:
                    cluster.node(ev.target).crash()
            elif ev.kind == "restart":
                if not cluster.node(ev.target).running:
                    cluster.node(ev.target).restart()
            elif ev.kind == "isolate":
                cluster.network.isolate(cmsd_host(ev.target))
            elif ev.kind == "unisolate":
                cluster.network.unisolate(cmsd_host(ev.target))
            elif ev.kind == "partition_oneway":
                a, b = ev.target
                cluster.network.partition_oneway(cmsd_host(a), cmsd_host(b))
            elif ev.kind == "heal_oneway":
                a, b = ev.target
                cluster.network.heal_oneway(cmsd_host(a), cmsd_host(b))

    return cluster.sim.process(executor(), name="chaos-schedule")


def soak(seed, *, horizon=HORIZON, events=6, pace=0.1):
    """One full soak run; returns its outcome fingerprint."""
    cluster, paths = chaos_cluster(seed)
    rng = random.Random(seed)
    # Interior nodes (supervisors + one manager) and leaves all churn;
    # the second manager stays up so the cluster is never headless.
    hosts = (
        list(cluster.topology.supervisors)
        + cluster.servers
        + [cluster.managers[0]]
    )
    schedule = random_chaos_schedule(
        rng,
        hosts,
        horizon=horizon,
        events=events,
        min_duration=0.8,
        max_duration=2.5,
    )
    run_chaos_executor(cluster, schedule)

    reader = cluster.client("soak")
    outcomes = []  # (path, node-or-None) per read, in order
    stale = []
    end = cluster.sim.now + horizon + 1.0
    while cluster.sim.now < end:
        path = paths[rng.randrange(len(paths))]
        try:
            # limit= is the stranded-client detector: a read that neither
            # succeeds nor raises within 60 simulated seconds aborts the run.
            res = cluster.run_process(reader.open(path), limit=60)
        except ScallaError:
            outcomes.append((path, None))
        else:
            outcomes.append((path, res.node))
            if not cluster.node(res.node).fs.exists(path):
                stale.append((path, res.node))
        cluster.run(until=cluster.sim.now + pace)

    # Every injected failure recovers within the schedule; belt and
    # braces for reads that crossed the horizon mid-flight.
    for name in hosts:
        if not cluster.node(name).running:
            cluster.node(name).restart()
    cluster.run(until=cluster.sim.now + COOLDOWN)
    return cluster, paths, outcomes, stale


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_soak(seed):
    cluster, paths, outcomes, stale = soak(seed)

    # Zero stale results: every success came off a disk that has the file.
    assert stale == [], f"stale redirects under chaos: {stale}"

    # Bounded unavailability: the soak keeps making progress during the
    # churn — most reads succeed even while nodes flap.
    successes = sum(1 for _, node in outcomes if node is not None)
    assert len(outcomes) > 20
    assert successes >= 0.7 * len(outcomes), (
        f"only {successes}/{len(outcomes)} reads succeeded under chaos"
    )

    # The chaos layer actually engaged (the knobs are not dead config).
    assert cluster.network.stats.chaos_dropped > 0
    assert cluster.network.stats.chaos_duplicated > 0

    # Full recovery: with every failure healed, a cold sweep resolves
    # every file from a genuine holder at ordinary latency.
    verify = cluster.client("verify")
    for path in paths:
        res = cluster.run_process(verify.open(path), limit=120)
        assert cluster.node(res.node).fs.exists(path), f"stale redirect for {path}"
        # Bounded: a few fruitless epochs at a stale-vectored subtree plus
        # the refreshed re-resolution (the §III-C1 escape) — chaos stays on
        # during the sweep, so any single round can still lose a query.
        assert res.latency < 10 * cluster.config.full_delay
        try:
            cluster.run_process(verify.close(res), limit=60)
        except ScallaError:
            pass  # the CloseAck itself can be a chaos casualty; not under test

    # Invariants on the survivors' caches (SimSan runs these continuously
    # when SCALLA_SANITIZE=1; this is the unconditional spot check).
    for mgr in cluster.managers:
        if cluster.node(mgr).running:
            cluster.node(mgr).cmsd.cache.check_invariants()


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_chaos_soak_is_deterministic(seed):
    """Same seed -> bit-identical churn: message counts, chaos decisions,
    and every read outcome replay exactly (the debuggability guarantee)."""

    def fingerprint():
        cluster, _, outcomes, stale = soak(seed, horizon=5.0, events=3)
        s = cluster.network.stats
        return (
            s.sent,
            s.delivered,
            s.chaos_dropped,
            s.chaos_duplicated,
            s.chaos_delayed,
            tuple(outcomes),
            tuple(stale),
            cluster.sim.now,
        )

    assert fingerprint() == fingerprint()


class TestManagerFailover:
    """Tentpole piece 1 end-to-end: redundant managers + client failover."""

    def test_client_fails_over_to_live_manager(self):
        cluster, paths = chaos_cluster(3, chaos=None)
        cluster.node(cluster.managers[0]).crash()
        cluster.run(until=cluster.sim.now + 1.0)
        client = cluster.client("fo")
        res = cluster.run_process(client.open(paths[0]), limit=60)
        assert res.size == 64
        assert client.stats.failovers >= 1

    def test_all_managers_dead_is_a_typed_error(self):
        from repro.cluster.client import ClusterUnreachable

        cluster, paths = chaos_cluster(3, chaos=None)
        for mgr in cluster.managers:
            cluster.node(mgr).crash()
        cluster.run(until=cluster.sim.now + 1.0)
        with pytest.raises(ClusterUnreachable):
            cluster.run_process(cluster.client("fo").open(paths[0]), limit=600)

    def test_isolated_manager_is_a_gray_failure(self):
        """cmsd dark but host alive: clients time out and rotate, no crash
        event ever fires — the failover path must not depend on one."""
        cluster, paths = chaos_cluster(3, chaos=None)
        cluster.network.isolate(cmsd_host(cluster.managers[0]))
        client = cluster.client("fo")
        res = cluster.run_process(client.open(paths[0]), limit=60)
        assert res.size == 64
        assert client.stats.failovers >= 1
        cluster.network.unisolate(cmsd_host(cluster.managers[0]))


class TestScheduleValidation:
    """random_chaos_schedule: structural guarantees the soak leans on."""

    def test_every_failure_is_recovered(self):
        rng = random.Random(5)
        sched = random_chaos_schedule(
            rng,
            ["a", "b", "c", "d"],
            horizon=10.0,
            events=8,
            min_duration=0.5,
            max_duration=2.0,
        )
        open_by_target = {}
        recovery = {
            "crash": "restart",
            "isolate": "unisolate",
            "partition_oneway": "heal_oneway",
        }
        for ev in sched:
            if ev.kind in recovery:
                open_by_target[(recovery[ev.kind], ev.target)] = ev.at
            else:
                begin = open_by_target.pop((ev.kind, ev.target))
                assert begin <= ev.at <= 10.0
        assert not open_by_target

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="no recovery action"):
            random_chaos_schedule(
                random.Random(0),
                ["a", "b"],
                horizon=5.0,
                events=1,
                min_duration=0.1,
                max_duration=0.2,
                kinds=("meteor",),
            )

    def test_events_are_failure_events(self):
        sched = random_chaos_schedule(
            random.Random(1),
            ["a", "b", "c"],
            horizon=5.0,
            events=3,
            min_duration=0.1,
            max_duration=0.5,
        )
        assert all(isinstance(ev, FailureEvent) for ev in sched)
        assert sched == sorted(sched, key=lambda e: e.at)
