"""Integration: interior-node (supervisor) failures.

The paper's recoverability argument applies at every tree level: a
supervisor is just another replaceable node whose state is reconstructible.
These tests kill supervisors mid-service and verify the tree heals — via
re-login when the same host returns (the seed behaviour, kept under
``rehome=False``), and via standby re-homing when it does not: orphaned
subordinates adopt the dead parent's sibling (else the grandparent), whose
membership machinery treats the login as an ordinary §III-A4 "server
added" event.
"""

from repro.cluster import ScallaCluster, ScallaConfig


def tree_cluster(**overrides):
    cfg = dict(
        seed=401,
        fanout=4,  # manager -> 2 supervisors -> 8 servers
        heartbeat_interval=0.2,
        disconnect_timeout=0.7,
        drop_timeout=30.0,
        relogin_timeout=0.5,
        full_delay=1.0,
    )
    cfg.update(overrides)
    c = ScallaCluster(8, config=ScallaConfig(**cfg))
    # One replica in each supervisor's subtree (servers 0-3 vs 4-7), so a
    # whole-subtree outage leaves every file reachable.
    for i in range(16):
        c.place(f"/store/t/f{i}.root", c.servers[i % 4], size=64)
        c.place(f"/store/t/f{i}.root", c.servers[4 + (i % 4)], size=64)
    c.settle(0.5)
    return c


class TestSupervisorCrash:
    def test_manager_marks_supervisor_offline(self):
        cluster = tree_cluster()
        sup = cluster.topology.supervisors[0]
        mgr = cluster.manager_cmsd()
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        slot = mgr.membership.slot_of(sup)
        assert slot is not None and not mgr.membership.slot(slot).online

    def test_files_under_other_supervisor_unaffected(self):
        cluster = tree_cluster()
        # Find a file served via supervisor 1's subtree.
        res = cluster.run_process(cluster.client().open("/store/t/f0.root"), limit=60)
        serving_sup = cluster.topology.nodes[res.node].parents[0]
        other_sup = next(s for s in cluster.topology.supervisors if s != serving_sup)
        cluster.node(other_sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        res2 = cluster.run_process(cluster.client().open("/store/t/f0.root"), limit=60)
        assert res2.size == 64

    def test_replica_under_other_supervisor_takes_over(self):
        """copies=2 round-robin puts replicas in different subtrees, so a
        whole subtree outage still leaves every file reachable — even with
        re-homing off (pure replica redundancy)."""
        cluster = tree_cluster(rehome=False)
        sup = cluster.topology.supervisors[0]
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        for i in range(0, 16, 3):
            res = cluster.run_process(
                cluster.client().open(f"/store/t/f{i}.root"), limit=120
            )
            serving_sup = cluster.topology.nodes[res.node].parents[0]
            assert serving_sup != sup

    def test_supervisor_restart_reattaches_subtree(self):
        """Seed semantics (rehome=False): the subtree waits for the same
        host and re-attaches by re-login when it returns."""
        cluster = tree_cluster(rehome=False)
        sup = cluster.topology.supervisors[0]
        subtree = set(cluster.topology.nodes[sup].children)
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        cluster.node(sup).restart()
        cluster.run(until=cluster.sim.now + 3.0)
        # The restarted (state-less) supervisor re-learned its children...
        sup_cmsd = cluster.node(sup).cmsd
        assert sup_cmsd.membership.member_count() == len(subtree)
        # ...and the manager sees it online again.
        mgr = cluster.manager_cmsd()
        assert mgr.membership.slot(mgr.membership.slot_of(sup)).online
        # Files in that subtree resolve through it once more.
        res = cluster.run_process(cluster.client().open("/store/t/f1.root"), limit=120)
        assert res.size == 64


class TestSupervisorRehome:
    """Supervisor failover: the crashed parent never comes back."""

    def test_seed_behavior_strands_sole_copy(self):
        """Documented regression (rehome=False): with the only replica
        under the dead supervisor, the file becomes unreachable — its
        server is alive but orphaned, heartbeating into the void, while
        the client burns its entire retry budget on full-delay Waits."""
        cluster = tree_cluster(rehome=False)
        sup = cluster.topology.supervisors[0]
        lonely = cluster.topology.nodes[sup].children[0]
        cluster.place("/store/t/only.root", lonely, size=64)
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        import pytest

        from repro.cluster.client import ScallaError

        with pytest.raises(ScallaError):
            cluster.run_process(
                cluster.client().open("/store/t/only.root"), limit=120
            )

    def test_rehome_within_one_relogin_timeout(self):
        """Orphans adopt the sibling supervisor within ~relogin_timeout
        (plus a heartbeat for detection)."""
        cluster = tree_cluster()
        sup0, sup1 = cluster.topology.supervisors[:2]
        children = cluster.topology.nodes[sup0].children
        t0 = cluster.sim.now
        cluster.node(sup0).crash()
        relogin = cluster.config.relogin_timeout
        hb = cluster.config.heartbeat_interval
        cluster.run(until=t0 + relogin + 3 * hb)
        for child in children:
            assert cluster.node(child).current_parents == (sup1,)
            assert cluster.node(child).cmsd.stats.rehomes == 1
        # The adopter registered all four as ordinary membership additions.
        sup1_cmsd = cluster.node(sup1).cmsd
        for child in children:
            assert sup1_cmsd.membership.slot_of(child) is not None
        assert sup1_cmsd.membership.member_count() == 8

    def test_cold_locate_after_rehome_is_fast(self):
        """Acceptance: supervisor crashed and never restarted — a cold
        locate for a file whose only copy sits in the former subtree
        completes at fast-path latency (< 1 s with the paper's 5 s full
        delay), where the seed either waits >= full_delay or fails."""
        cluster = tree_cluster(full_delay=5.0)
        sup0 = cluster.topology.supervisors[0]
        lonely = cluster.topology.nodes[sup0].children[0]
        cluster.place("/store/t/only.root", lonely, size=64)
        cluster.node(sup0).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        res = cluster.run_process(
            cluster.client().open("/store/t/only.root"), limit=120
        )
        assert res.node == lonely
        assert res.latency < 1.0

    def test_both_supervisors_dead_rehomes_to_manager(self):
        """Standby rotation escalates past dead siblings to the
        grandparent level: with every supervisor gone, servers end up
        logged into the manager and files stay reachable."""
        cluster = tree_cluster()
        sup0, sup1 = cluster.topology.supervisors[:2]
        cluster.node(sup0).crash()
        cluster.node(sup1).crash()
        cluster.run(until=cluster.sim.now + 4.0)
        for srv in cluster.servers:
            assert cluster.node(srv).current_parents == ("mgr0",)
        res = cluster.run_process(cluster.client().open("/store/t/f3.root"), limit=120)
        assert res.size == 64

    def test_orphan_accounting_and_relogin_backoff(self):
        """A subordinate with nowhere to go (manager dead, no standbys)
        records orphaned time and backs off its re-login storm instead of
        firing once per heartbeat forever."""
        cluster = tree_cluster()
        sup0 = cluster.topology.supervisors[0]
        cluster.node("mgr0").crash()
        cluster.run(until=cluster.sim.now + 10.0)
        cmsd = cluster.node(sup0).cmsd
        assert cmsd.stats.orphaned_seconds > 0
        # ~50 heartbeats elapsed; unbounded re-login would send ~50 logins
        # to the dead manager.  Backoff (0.5 * 2^n, capped) keeps it small.
        assert cmsd.stats.relogins_by_parent.get("mgr0", 0) <= 8
        assert cmsd.stats.rehomes == 0  # top level: nowhere to re-home


class TestResponseCompression:
    def test_compression_ratio_measured(self):
        """Quantify §II-B2's compression: with every leaf holding the file,
        the manager hears from supervisors only — a fanout-factor reduction
        in upward traffic."""
        cluster = tree_cluster()
        for s in cluster.servers:
            cluster.place("/store/everywhere.root", s, size=32)
        mgr = cluster.manager_cmsd()
        h0 = mgr.stats.haves_received
        cluster.run_process(cluster.client().open("/store/everywhere.root"), limit=60)
        cluster.settle(0.05)
        upward = mgr.stats.haves_received - h0
        leaf_responses = sum(
            cluster.node(s).cmsd.stats.haves_sent for s in cluster.servers
        )
        assert leaf_responses == 8  # every leaf answered its supervisor
        assert upward <= 2  # but the manager heard at most one per supervisor
