"""Integration: interior-node (supervisor) failures.

The paper's recoverability argument applies at every tree level: a
supervisor is just another replaceable node whose state is reconstructible.
These tests kill supervisors mid-service and verify the tree heals — the
manager's membership machinery treats a supervisor exactly like a server,
and the subtree re-attaches by re-login when the supervisor returns.
"""

from repro.cluster import ScallaCluster, ScallaConfig


def tree_cluster():
    c = ScallaCluster(
        8,
        config=ScallaConfig(
            seed=401,
            fanout=4,  # manager -> 2 supervisors -> 8 servers
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
            drop_timeout=30.0,
            relogin_timeout=0.5,
            full_delay=1.0,
        ),
    )
    # One replica in each supervisor's subtree (servers 0-3 vs 4-7), so a
    # whole-subtree outage leaves every file reachable.
    for i in range(16):
        c.place(f"/store/t/f{i}.root", c.servers[i % 4], size=64)
        c.place(f"/store/t/f{i}.root", c.servers[4 + (i % 4)], size=64)
    c.settle(0.5)
    return c


class TestSupervisorCrash:
    def test_manager_marks_supervisor_offline(self):
        cluster = tree_cluster()
        sup = cluster.topology.supervisors[0]
        mgr = cluster.manager_cmsd()
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        slot = mgr.membership.slot_of(sup)
        assert slot is not None and not mgr.membership.slot(slot).online

    def test_files_under_other_supervisor_unaffected(self):
        cluster = tree_cluster()
        # Find a file served via supervisor 1's subtree.
        res = cluster.run_process(cluster.client().open("/store/t/f0.root"), limit=60)
        serving_sup = cluster.topology.nodes[res.node].parents[0]
        other_sup = next(s for s in cluster.topology.supervisors if s != serving_sup)
        cluster.node(other_sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        res2 = cluster.run_process(cluster.client().open("/store/t/f0.root"), limit=60)
        assert res2.size == 64

    def test_replica_under_other_supervisor_takes_over(self):
        """copies=2 round-robin puts replicas in different subtrees, so a
        whole subtree outage still leaves every file reachable."""
        cluster = tree_cluster()
        sup = cluster.topology.supervisors[0]
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        for i in range(0, 16, 3):
            res = cluster.run_process(
                cluster.client().open(f"/store/t/f{i}.root"), limit=120
            )
            serving_sup = cluster.topology.nodes[res.node].parents[0]
            assert serving_sup != sup

    def test_supervisor_restart_reattaches_subtree(self):
        cluster = tree_cluster()
        sup = cluster.topology.supervisors[0]
        subtree = set(cluster.topology.nodes[sup].children)
        cluster.node(sup).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        cluster.node(sup).restart()
        cluster.run(until=cluster.sim.now + 3.0)
        # The restarted (state-less) supervisor re-learned its children...
        sup_cmsd = cluster.node(sup).cmsd
        assert sup_cmsd.membership.member_count() == len(subtree)
        # ...and the manager sees it online again.
        mgr = cluster.manager_cmsd()
        assert mgr.membership.slot(mgr.membership.slot_of(sup)).online
        # Files in that subtree resolve through it once more.
        res = cluster.run_process(cluster.client().open("/store/t/f1.root"), limit=120)
        assert res.size == 64


class TestResponseCompression:
    def test_compression_ratio_measured(self):
        """Quantify §II-B2's compression: with every leaf holding the file,
        the manager hears from supervisors only — a fanout-factor reduction
        in upward traffic."""
        cluster = tree_cluster()
        for s in cluster.servers:
            cluster.place("/store/everywhere.root", s, size=32)
        mgr = cluster.manager_cmsd()
        h0 = mgr.stats.haves_received
        cluster.run_process(cluster.client().open("/store/everywhere.root"), limit=60)
        cluster.settle(0.05)
        upward = mgr.stats.haves_received - h0
        leaf_responses = sum(
            cluster.node(s).cmsd.stats.haves_sent for s in cluster.servers
        )
        assert leaf_responses == 8  # every leaf answered its supervisor
        assert upward <= 2  # but the manager heard at most one per supervisor
