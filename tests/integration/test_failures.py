"""Integration: failures and recovery — Scalla's third design objective.

Covers the four §III-A4 membership cases end-to-end, client recovery via
refresh+avoid (§III-C1), manager restart rebuilding state from re-logins
(§V "within seconds of restarting"), and manager replica failover.
"""

import pytest

from repro.cluster import NoSuchFile, ScallaCluster, ScallaConfig
from repro.core import bitvec


def fast_config(**kw):
    """Short timers so failure scenarios run in seconds of simulated time."""
    defaults = dict(
        seed=21,
        heartbeat_interval=0.2,
        disconnect_timeout=0.7,
        drop_timeout=5.0,
        full_delay=1.0,
    )
    defaults.update(kw)
    return ScallaConfig(**defaults)


class TestServerCrashRecovery:
    def test_client_recovers_via_refresh_and_avoid(self):
        """Replica surviving elsewhere: the client gets vectored to the dead
        server, reports it, and lands on the живой copy."""
        cluster = ScallaCluster(4, config=fast_config())
        cluster.populate(["/store/f.root"], copies=2, size=128)
        cluster.settle()
        # Warm the cache, note which server we'd be sent to first.
        first = cluster.run_process(cluster.client().open("/store/f.root"), limit=60)
        holders = [s for s in cluster.servers if cluster.node(s).fs.exists("/store/f.root")]
        cluster.node(first.node).crash()
        cluster.settle(0.05)
        res = cluster.run_process(cluster.client().open("/store/f.root"), limit=60)
        assert res.node in holders and res.node != first.node

    def test_sole_holder_crash_then_restart(self):
        cluster = ScallaCluster(3, config=fast_config())
        cluster.populate(["/store/solo.root"], copies=1, size=64)
        cluster.settle()
        holder = cluster.run_process(cluster.client().open("/store/solo.root"), limit=60).node
        cluster.node(holder).crash()
        cluster.run(until=cluster.sim.now + 2.0)  # heartbeats lapse -> offline
        mgr = cluster.manager_cmsd()
        slot = mgr.membership.slot_of(holder)
        assert slot is not None  # disconnected, NOT dropped (case 1)
        assert not mgr.membership.slot(slot).online
        cluster.node(holder).restart()
        cluster.run(until=cluster.sim.now + 1.0)  # reconnect (case 3)
        assert mgr.membership.slot(mgr.membership.slot_of(holder)).online
        res = cluster.run_process(cluster.client().open("/store/solo.root"), limit=60)
        assert res.node == holder

    def test_silent_server_dropped_after_drop_timeout(self):
        """Case 2: a server that stays away is dropped and its V_m bits go."""
        cluster = ScallaCluster(3, config=fast_config(drop_timeout=2.0))
        cluster.populate(["/store/a.root"], size=32)
        cluster.settle()
        victim = cluster.servers[0]
        mgr = cluster.manager_cmsd()
        assert mgr.membership.slot_of(victim) is not None
        cluster.node(victim).crash()
        cluster.run(until=cluster.sim.now + 6.0)
        assert mgr.membership.slot_of(victim) is None
        v_m = mgr.membership.eligible("/store/a.root")
        assert bitvec.count(v_m) == 2  # only the two survivors

    def test_dropped_server_rejoins_as_new(self):
        """Case 4: back after the drop window -> fresh login, fresh epoch."""
        cluster = ScallaCluster(3, config=fast_config(drop_timeout=1.5))
        cluster.populate(["/store/b.root"], size=32)
        cluster.settle()
        victim = cluster.servers[1]
        mgr = cluster.manager_cmsd()
        n_c_before = mgr.membership.n_c
        cluster.node(victim).crash()
        cluster.run(until=cluster.sim.now + 4.0)  # well past drop
        assert mgr.membership.slot_of(victim) is None
        cluster.node(victim).restart()
        cluster.run(until=cluster.sim.now + 1.0)
        assert mgr.membership.slot_of(victim) is not None
        assert mgr.membership.n_c > n_c_before


class TestManagerRestart:
    def test_manager_rebuilds_membership_from_relogins(self):
        """§V: no persistent state — a restarted manager re-learns its
        subordinates from their heartbeats/re-logins within seconds."""
        cluster = ScallaCluster(4, config=fast_config(relogin_timeout=0.5))
        cluster.populate(["/store/c.root"], size=32)
        cluster.settle()
        mgr_name = cluster.managers[0]
        cluster.node(mgr_name).restart()
        assert cluster.manager_cmsd().membership.member_count() == 0  # fresh state
        t0 = cluster.sim.now
        cluster.run(until=cluster.sim.now + 3.0)
        assert cluster.manager_cmsd().membership.member_count() == 4
        # And files are servable again.
        res = cluster.run_process(cluster.client().open("/store/c.root"), limit=60)
        assert res.size == 32
        assert cluster.sim.now - t0 < 10.0  # "within seconds"

    def test_manager_replica_failover(self):
        cluster = ScallaCluster(
            4, config=fast_config(manager_replicas=2)
        )
        cluster.populate(["/store/d.root"], size=32)
        cluster.settle()
        cluster.node(cluster.managers[0]).crash()
        cluster.settle(0.05)
        client = cluster.client()
        res = cluster.run_process(client.open("/store/d.root"), limit=60)
        assert res.size == 32
        assert client.stats.failovers >= 1


class TestPartitions:
    def test_partition_heals_and_service_resumes(self):
        cluster = ScallaCluster(2, config=fast_config())
        cluster.populate(["/store/e.root"], copies=2, size=32)
        cluster.settle()
        mgr_cmsd_host = cluster.manager_cmsd().host.name
        srv = cluster.servers[0]
        cluster.network.partition(mgr_cmsd_host, f"{srv}.cmsd")
        cluster.run(until=cluster.sim.now + 2.0)
        res = cluster.run_process(cluster.client().open("/store/e.root"), limit=60)
        assert res.size == 32  # the other replica serves
        cluster.network.heal(mgr_cmsd_host, f"{srv}.cmsd")
        cluster.run(until=cluster.sim.now + 2.0)
        mgr = cluster.manager_cmsd()
        slot = mgr.membership.slot_of(srv)
        assert slot is not None and mgr.membership.slot(slot).online


class TestDataLoss:
    def test_file_lost_with_sole_holder(self):
        cluster = ScallaCluster(3, config=fast_config())
        cluster.populate(["/store/precious.root"], copies=1, size=16)
        cluster.settle()
        holder = cluster.run_process(
            cluster.client().open("/store/precious.root"), limit=60
        ).node
        cluster.node(holder).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        client = cluster.client()
        with pytest.raises((NoSuchFile, Exception)):
            cluster.run_process(client.open("/store/precious.root"), limit=120)
