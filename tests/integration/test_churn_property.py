"""Property-based churn: random failure schedules never corrupt the cache.

A hypothesis-driven generalization of bench E12: whatever crash/restart
schedule the strategy draws, once every server is back the cluster must
serve every file from a genuine holder with clean invariants.  Few examples
(simulations are comparatively slow) but fully random schedules.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.failures import random_crash_schedule


@given(seed=st.integers(min_value=0, max_value=2**16), crashes=st.integers(min_value=1, max_value=6))
@settings(max_examples=8, deadline=None)
def test_random_churn_recovers_fully(seed, crashes):
    cluster = ScallaCluster(
        6,
        config=ScallaConfig(
            seed=seed,
            heartbeat_interval=0.2,
            disconnect_timeout=0.7,
            drop_timeout=4.0,
            relogin_timeout=0.5,
            full_delay=0.5,
        ),
    )
    paths = [f"/store/p/f{i}.root" for i in range(18)]
    cluster.populate(paths, copies=3, size=32)
    cluster.settle()

    # Warm the cache so stale state exists to be corrected.
    warm = cluster.client("warm")

    def warm_all():
        for p in paths:
            yield from warm.locate(p)

    cluster.run_process(warm_all(), limit=120)

    rng = random.Random(seed)
    schedule = random_crash_schedule(
        rng,
        cluster.servers,
        horizon=8.0,
        crashes=crashes,
        min_downtime=0.5,
        max_downtime=3.0,
    )
    # Execute through node lifecycle (daemons must die with their hosts).
    base = cluster.sim.now

    def executor():
        for ev in schedule:
            delay = base + ev.at - cluster.sim.now
            if delay > 0:
                yield cluster.sim.timeout(delay)
            node = cluster.node(ev.target)
            if ev.kind == "crash" and node.running:
                node.crash()
            elif ev.kind == "restart" and not node.running:
                node.restart()

    cluster.run_process(executor(), limit=600)
    # Everyone back, heartbeats settled.
    for s in cluster.servers:
        if not cluster.node(s).running:
            cluster.node(s).restart()
    cluster.run(until=cluster.sim.now + 2.0)

    # Verify: every file opens on a real holder; invariants hold.
    client = cluster.client("verify")

    def verify():
        for p in paths:
            res = yield from client.open(p)
            assert cluster.node(res.node).fs.exists(p), f"stale redirect for {p}"
            yield from client.close(res)

    cluster.run_process(verify(), limit=600)
    mgr = cluster.manager_cmsd()
    mgr.cache.check_invariants()
    assert mgr.membership.member_count() == 6
