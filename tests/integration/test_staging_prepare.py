"""Integration: MSS staging (V_p) and the parallel prepare optimization."""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.sim.latency import Fixed


class TestStaging:
    def make(self, stage=3.0):
        c = ScallaCluster(
            3,
            config=ScallaConfig(seed=31, full_delay=1.0, stage_latency=Fixed(stage)),
        )
        c.settle()
        return c

    def test_offline_file_answered_pending(self):
        """A server whose MSS holds the file answers the flood with a
        pending response — that is what V_p exists for."""
        cluster = self.make()
        cluster.archive("/store/tape.root", cluster.servers[0], size=512)
        mgr = cluster.manager_cmsd()
        res = cluster.run_process(cluster.client().open("/store/tape.root"), limit=60)
        assert res.node == cluster.servers[0]
        assert res.size == 512
        # The open had to ride out the stage.
        assert res.latency >= 3.0

    def test_staged_file_is_online_afterwards(self):
        cluster = self.make()
        cluster.archive("/store/tape2.root", cluster.servers[1], size=64)
        cluster.run_process(cluster.client().open("/store/tape2.root"), limit=60)
        res2 = cluster.run_process(cluster.client().open("/store/tape2.root"), limit=60)
        assert res2.latency < 0.01  # on disk now: microseconds, not minutes

    def test_cache_records_pending_state(self):
        cluster = self.make(stage=30.0)
        cluster.archive("/store/slow.root", cluster.servers[2], size=64)
        client = cluster.client()
        proc = cluster.sim.process(client.open("/store/slow.root"))
        cluster.run(until=cluster.sim.now + 1.0)  # flood answered 'pending'
        mgr = cluster.manager_cmsd()
        ref, _ = mgr.cache.lookup("/store/slow.root", cluster.sim.now, add=False)
        assert ref is not None
        obj = ref.get()
        assert obj.v_p != 0 and obj.v_h == 0
        cluster.sim.run_until_process(proc, limit=100.0)


class TestPrepare:
    def make(self, n=4, full_delay=1.0):
        c = ScallaCluster(n, config=ScallaConfig(seed=32, full_delay=full_delay))
        c.settle()
        return c

    def test_sequential_creates_pay_per_file(self):
        """Without prepare, each create eats its own full delay (§III-B2)."""
        cluster = self.make()
        client = cluster.client()

        def scenario():
            for i in range(3):
                res = yield from client.open(f"/store/new{i}.root", mode="w", create=True)
                yield from client.close(res)

        t0 = cluster.sim.now
        cluster.run_process(scenario(), limit=120)
        assert cluster.sim.now - t0 >= 3 * cluster.config.full_delay

    def test_prepare_amortizes_to_single_delay(self):
        """With prepare, at most one full delay is visible externally."""
        cluster = self.make()
        client = cluster.client()
        paths = [f"/store/bulk{i}.root" for i in range(3)]

        def scenario():
            yield from client.prepare(paths)
            # Give the background look-ups their full delay, as a real
            # framework does while it sets up the job.
            yield cluster.sim.timeout(cluster.config.full_delay + 0.2)
            for p in paths:
                res = yield from client.open(p, mode="w", create=True)
                yield from client.close(res)

        t0 = cluster.sim.now
        cluster.run_process(scenario(), limit=120)
        elapsed = cluster.sim.now - t0
        # One full delay (plus protocol microseconds), not three.
        assert elapsed < 2 * cluster.config.full_delay

    def test_prepare_warms_read_lookups(self):
        cluster = self.make()
        cluster.populate(["/store/warm.root"], size=64)
        client = cluster.client()

        def scenario():
            yield from client.prepare(["/store/warm.root"])
            yield cluster.sim.timeout(0.01)  # responses arrive in ~100 µs
            return (yield from client.open("/store/warm.root"))

        res = cluster.run_process(scenario(), limit=60)
        # The open itself saw a warm cache: no query round trip in its path.
        mgr = cluster.manager_cmsd()
        assert res.latency < 200e-6
        assert mgr.stats.prepares == 1

    def test_prepare_ack_counts_paths(self):
        cluster = self.make()
        client = cluster.client()
        n = cluster.run_process(client.prepare([f"/store/p{i}" for i in range(7)]), limit=60)
        assert n == 7
