"""Client edge cases: failover, budgets, and error surfaces."""

import pytest

from repro.cluster import (
    ClientConfig,
    ClusterUnreachable,
    NoSuchFile,
    ScallaCluster,
    ScallaConfig,
    ScallaError,
)


class TestFailover:
    def test_all_managers_dead_raises_unreachable(self):
        cluster = ScallaCluster(2, config=ScallaConfig(seed=321, manager_replicas=2))
        cluster.populate(["/store/f.root"], size=32)
        cluster.settle()
        for m in cluster.managers:
            cluster.node(m).crash()
        client = cluster.client(config=ClientConfig(locate_timeout=0.2, max_failover_cycles=1))
        with pytest.raises(ClusterUnreachable):
            cluster.run_process(client.open("/store/f.root"), limit=120)

    def test_failover_count_visible_in_stats(self):
        cluster = ScallaCluster(2, config=ScallaConfig(seed=322, manager_replicas=2))
        cluster.populate(["/store/f.root"], size=32)
        cluster.settle()
        cluster.node(cluster.managers[0]).crash()
        client = cluster.client(config=ClientConfig(locate_timeout=0.2))
        res = cluster.run_process(client.open("/store/f.root"), limit=120)
        assert res.size == 32
        assert client.stats.failovers >= 1

    def test_dead_server_triggers_refresh_and_avoid(self):
        cluster = ScallaCluster(
            3,
            config=ScallaConfig(
                seed=323, heartbeat_interval=0.2, disconnect_timeout=0.7
            ),
        )
        cluster.populate(["/store/f.root"], copies=2, size=32)
        cluster.settle()
        first = cluster.run_process(cluster.client().open("/store/f.root"), limit=60)
        # Balance the round-robin selection counts so the next pick is the
        # node we are about to kill (tie broken by slot order = first.node).
        cluster.run_process(cluster.client().open("/store/f.root"), limit=60)
        # Kill the chosen server but do NOT let heartbeats catch up: the
        # client must discover the death through the failed open itself.
        cluster.node(first.node).crash()
        client = cluster.client(config=ClientConfig(op_timeout=0.3))
        res = cluster.run_process(client.open("/store/f.root"), limit=120)
        assert res.node != first.node
        assert client.stats.refreshes >= 1


class TestBudgets:
    def test_retry_budget_exhaustion_raises(self):
        """A file that keeps timing out must eventually fail loudly."""
        cluster = ScallaCluster(1, config=ScallaConfig(seed=324, full_delay=0.3))
        cluster.settle()
        client = cluster.client(config=ClientConfig(max_retries=2))
        # Non-existent file: Wait -> retry -> NotFound. With retries capped
        # at 2 the client either sees NoSuchFile (clean) — never hangs.
        with pytest.raises((NoSuchFile, ScallaError)):
            cluster.run_process(client.open("/store/never.root"), limit=120)

    def test_stat_missing_does_not_raise(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=325, full_delay=0.3))
        cluster.settle()
        exists, size = cluster.run_process(cluster.client().stat("/store/no"), limit=60)
        assert (exists, size) == (False, 0)

    def test_remove_missing_does_not_raise(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=326, full_delay=0.3))
        cluster.settle()
        assert not cluster.run_process(cluster.client().remove("/store/no"), limit=60)


class TestPendingOpens:
    def test_mid_stage_crash_does_not_hang_client(self):
        """Regression: ``_open_timeout`` returned a ``1e6`` s sentinel for
        pending opens, so a server crashing mid-stage stranded the client
        for ~11 simulated days instead of entering the recovery loop."""
        from repro.sim.latency import Fixed

        cluster = ScallaCluster(
            2,
            config=ScallaConfig(seed=332, full_delay=0.5, stage_latency=Fixed(30.0)),
        )
        cluster.archive("/store/tape.root", cluster.servers[0], size=64)
        cluster.settle()
        client = cluster.client(
            config=ClientConfig(pending_open_timeout=2.0, max_retries=3)
        )

        def scenario():
            try:
                yield from client.open("/store/tape.root")
            except ScallaError:
                return cluster.sim.now
            raise AssertionError("open succeeded against a crashed stager")

        proc = cluster.sim.process(scenario())
        # Let the pending redirect land and the stage get underway...
        cluster.run(until=cluster.sim.now + 1.0)
        # ...then kill the only server that could ever produce the file.
        cluster.node(cluster.servers[0]).crash()
        t_end = cluster.sim.run_until_process(proc, limit=600)
        # Failure surfaces within a few timeout/retry rounds, not 1e6 s.
        assert t_end is not None and t_end < 60.0

    def test_slow_stage_still_succeeds_within_budget(self):
        """The finite pending timeout must not break legitimate staging."""
        from repro.sim.latency import Fixed

        cluster = ScallaCluster(
            2,
            config=ScallaConfig(seed=333, full_delay=0.5, stage_latency=Fixed(30.0)),
        )
        cluster.archive("/store/tape2.root", cluster.servers[0], size=64)
        cluster.settle()
        client = cluster.client(config=ClientConfig(pending_open_timeout=120.0))
        res = cluster.run_process(client.open("/store/tape2.root"), limit=300)
        assert res.size == 64
        assert res.latency >= 30.0


class TestDataPlaneErrors:
    def test_read_with_stale_handle_raises(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=327))
        cluster.populate(["/store/f.root"], size=32)
        cluster.settle()
        client = cluster.client()
        res = cluster.run_process(client.open("/store/f.root"), limit=60)
        cluster.run_process(client.close(res), limit=60)
        with pytest.raises(ScallaError):
            cluster.run_process(client.read(res, 0, 4), limit=60)

    def test_fetch_empty_file(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=328))
        cluster.place("/store/empty.root", cluster.servers[0], data=b"")
        cluster.settle()
        data = cluster.run_process(cluster.client().fetch("/store/empty.root"), limit=60)
        assert data == b""

    def test_fetch_large_file_chunked(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=329))
        payload = bytes(range(256)) * 1024  # 256 KiB
        cluster.place("/store/big.root", cluster.servers[0], data=payload)
        cluster.settle()
        data = cluster.run_process(
            cluster.client().fetch("/store/big.root", chunk=64 * 1024), limit=60
        )
        assert data == payload


class TestRequestCorrelation:
    def test_interleaved_requests_route_by_req_id(self):
        """Two in-flight operations from one client must not cross wires."""
        cluster = ScallaCluster(2, config=ScallaConfig(seed=330))
        cluster.place("/store/a.root", cluster.servers[0], data=b"AAAA")
        cluster.place("/store/b.root", cluster.servers[1], data=b"BBBB")
        cluster.settle()
        client = cluster.client()
        results = {}

        def fetcher(path, key):
            results[key] = yield from client.fetch(path)

        p1 = cluster.sim.process(fetcher("/store/a.root", "a"))
        p2 = cluster.sim.process(fetcher("/store/b.root", "b"))

        def both():
            yield cluster.sim.all_of([p1, p2])

        cluster.run_process(both(), limit=60)
        assert results["a"] == b"AAAA"
        assert results["b"] == b"BBBB"

    def test_late_reply_after_timeout_is_dropped(self):
        """A reply arriving after the client failed over must be ignored."""
        cluster = ScallaCluster(1, config=ScallaConfig(seed=331, manager_replicas=2))
        cluster.populate(["/store/f.root"], size=32)
        cluster.settle()
        # Partition the client from mgr0 so its first locate times out, then
        # heal: the late reply (if queued) must not corrupt the next request.
        client = cluster.client(config=ClientConfig(locate_timeout=0.3))
        cluster.network.partition(client.host.name, "mgr0.cmsd")
        res = cluster.run_process(client.open("/store/f.root"), limit=120)
        assert res.size == 32
        cluster.network.heal(client.host.name, "mgr0.cmsd")
        res2 = cluster.run_process(client.open("/store/f.root"), limit=120)
        assert res2.size == 32
