"""Unit tests for 64-ary tree construction."""

import pytest

from repro.cluster.ids import Role
from repro.cluster.topology import build_topology, expected_depth


class TestFlatClusters:
    def test_single_server(self):
        topo = build_topology(1)
        assert len(topo.servers) == 1
        assert topo.supervisors == []
        assert len(topo.managers) == 1
        assert topo.depth() == 1

    def test_sixty_four_servers_flat(self):
        topo = build_topology(64)
        assert topo.supervisors == []
        mgr = topo.nodes[topo.managers[0]]
        assert len(mgr.children) == 64
        assert topo.depth() == 1

    def test_all_servers_parented_by_manager(self):
        topo = build_topology(10)
        for s in topo.servers:
            assert topo.nodes[s].parents == topo.managers


class TestDeepTrees:
    def test_sixty_five_servers_needs_supervisors(self):
        topo = build_topology(65)
        assert len(topo.supervisors) == 2
        assert topo.depth() == 2

    def test_4096_two_levels(self):
        topo = build_topology(4096)
        assert len(topo.supervisors) == 64
        assert topo.depth() == 2
        topo.validate()

    def test_small_fanout_builds_deep_tree(self):
        # fanout 2, 8 servers -> 3 levels of interior nodes... bottom-up
        # grouping: 8 -> 4 sups -> 2 sups -> manager (2 children).
        topo = build_topology(8, fanout=2)
        assert topo.depth() == 3
        topo.validate()

    def test_depth_matches_model(self):
        from repro.core.models import tree_depth

        for n in (1, 2, 63, 64, 65, 200, 4096):
            topo = build_topology(n, fanout=64)
            assert topo.depth() == tree_depth(n, 64) == expected_depth(n, 64)

    def test_fanout_respected_everywhere(self):
        topo = build_topology(100, fanout=8)
        for spec in topo.nodes.values():
            assert len(spec.children) <= 8


class TestReplication:
    def test_replicated_managers_share_children(self):
        topo = build_topology(10, manager_replicas=3)
        assert len(topo.managers) == 3
        kids = {topo.nodes[m].children for m in topo.managers}
        assert len(kids) == 1  # identical child sets
        for s in topo.servers:
            assert set(topo.nodes[s].parents) == set(topo.managers)

    def test_roles(self):
        topo = build_topology(70, manager_replicas=2)
        assert all(topo.nodes[m].role is Role.MANAGER for m in topo.managers)
        assert all(topo.nodes[s].role is Role.SUPERVISOR for s in topo.supervisors)
        assert all(topo.nodes[s].role is Role.SERVER for s in topo.servers)


class TestValidation:
    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            build_topology(0)

    def test_fanout_above_64_rejected(self):
        """64 is a hard cap: the cache's vectors are single machine words."""
        with pytest.raises(ValueError):
            build_topology(10, fanout=65)

    def test_fanout_one_rejected(self):
        with pytest.raises(ValueError):
            build_topology(10, fanout=1)

    def test_zero_managers_rejected(self):
        with pytest.raises(ValueError):
            build_topology(10, manager_replicas=0)

    def test_exports_propagate(self):
        topo = build_topology(5, exports=("/store", "/atlas"))
        for spec in topo.nodes.values():
            assert spec.exports == ("/store", "/atlas")


class TestRedundantManagers:
    def test_managers_spelling_wins(self):
        topo = build_topology(8, fanout=4, manager_replicas=1, managers=3)
        assert topo.managers == ("mgr0", "mgr1", "mgr2")

    def test_top_level_logs_into_every_manager(self):
        topo = build_topology(8, fanout=4, managers=2)
        for sup in topo.supervisors:
            assert topo.nodes[sup].parents == topo.managers


class TestStandbys:
    def test_server_standbys_are_sibling_sups_then_managers(self):
        """The re-home escalation order: the dead parent's siblings under
        the shared grandparent first, the grandparent itself last."""
        topo = build_topology(8, fanout=4)  # mgr -> 2 sups -> 8 servers
        sup0, sup1 = topo.supervisors[:2]
        for child in topo.nodes[sup0].children:
            assert topo.nodes[child].standbys == (sup1, "mgr0")
        for child in topo.nodes[sup1].children:
            assert topo.nodes[child].standbys == (sup0, "mgr0")

    def test_top_level_subordinates_have_no_standbys(self):
        """They already log into every manager — nowhere else to go."""
        topo = build_topology(8, fanout=4, managers=2)
        for sup in topo.supervisors:
            assert topo.nodes[sup].standbys == ()

    def test_managers_have_no_standbys(self):
        topo = build_topology(8, fanout=4)
        for m in topo.managers:
            assert topo.nodes[m].standbys == ()

    def test_flat_cluster_servers_have_no_standbys(self):
        """Directly under the manager(s): same situation as a top-level
        supervisor."""
        topo = build_topology(4, fanout=8, managers=2)
        for s in topo.servers:
            assert topo.nodes[s].standbys == ()

    def test_standbys_exclude_own_parents(self):
        topo = build_topology(32, fanout=4)
        for name, spec in topo.nodes.items():
            for standby in spec.standbys:
                assert standby not in spec.parents
                assert standby != name
