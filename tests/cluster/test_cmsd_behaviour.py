"""Behavioural tests of the cmsd daemon through small live clusters."""

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster import protocol as pr
from repro.core.selection import LeastLoad


class TestHeartbeatMetrics:
    def test_heartbeats_carry_load_and_space(self):
        cluster = ScallaCluster(2, config=ScallaConfig(seed=301, heartbeat_interval=0.1))
        cluster.settle(0.5)
        mgr = cluster.manager_cmsd()
        for server in cluster.servers:
            slot = mgr.membership.slot_of(server)
            assert mgr.metrics.free_space[slot] > 0  # disk_size reported

    def test_least_load_selection_prefers_idle_server(self):
        cluster = ScallaCluster(2, config=ScallaConfig(seed=302, heartbeat_interval=0.1))
        cluster.populate(["/store/hot.root"], copies=2, size=64)
        cluster.settle(0.5)
        mgr = cluster.manager_cmsd()
        mgr.config.read_policy = LeastLoad()
        # Warm the location cache first: the very first (cold) open is
        # answered by whichever server responds first, not by policy.
        cluster.run_process(cluster.client().open("/store/hot.root"), limit=60)
        # Fake a loaded first server via its reported metric.
        s0 = mgr.membership.slot_of(cluster.servers[0])
        s1 = mgr.membership.slot_of(cluster.servers[1])
        mgr.metrics.load[s0] = 0.9
        mgr.metrics.load[s1] = 0.1
        picks = set()
        for _ in range(4):
            res = cluster.run_process(cluster.client().open("/store/hot.root"), limit=60)
            picks.add(res.node)
            # keep the skew pinned (heartbeats would reset it to truth)
            mgr.metrics.load[s0] = 0.9
            mgr.metrics.load[s1] = 0.1
        assert picks == {cluster.servers[1]}


class TestMembershipTiming:
    def test_disconnect_fires_after_timeout_not_before(self):
        cluster = ScallaCluster(
            1,
            config=ScallaConfig(seed=303, heartbeat_interval=0.2, disconnect_timeout=1.0),
        )
        cluster.settle(0.5)
        mgr = cluster.manager_cmsd()
        srv = cluster.servers[0]
        cluster.node(srv).crash()
        slot = mgr.membership.slot_of(srv)
        cluster.run(until=cluster.sim.now + 0.7)
        assert mgr.membership.slot(slot).online  # not yet
        cluster.run(until=cluster.sim.now + 1.0)
        assert not mgr.membership.slot(slot).online

    def test_drop_fires_only_after_drop_timeout(self):
        cluster = ScallaCluster(
            1,
            config=ScallaConfig(
                seed=304,
                heartbeat_interval=0.2,
                disconnect_timeout=0.5,
                drop_timeout=3.0,
            ),
        )
        cluster.settle(0.5)
        mgr = cluster.manager_cmsd()
        srv = cluster.servers[0]
        cluster.node(srv).crash()
        cluster.run(until=cluster.sim.now + 2.0)
        assert mgr.membership.slot_of(srv) is not None  # offline, kept
        cluster.run(until=cluster.sim.now + 2.5)
        assert mgr.membership.slot_of(srv) is None  # dropped

    def test_relogin_after_manager_forgets(self):
        cluster = ScallaCluster(
            2,
            config=ScallaConfig(seed=305, heartbeat_interval=0.2, relogin_timeout=0.5),
        )
        cluster.settle(0.5)
        cluster.node(cluster.managers[0]).restart()
        cluster.run(until=cluster.sim.now + 1.5)
        mgr = cluster.manager_cmsd()
        assert mgr.membership.member_count() == 2
        assert mgr.stats.logins_handled >= 2


class TestRequestRarelyRespond:
    def test_server_silent_for_absent_file(self):
        """Direct QueryFile to a server cmsd that lacks the file: silence."""
        cluster = ScallaCluster(1, config=ScallaConfig(seed=306))
        cluster.settle()
        srv = cluster.servers[0]
        probe = cluster.network.add_host("probe")
        q = pr.QueryFile(path="/store/absent.root", hash_val=1, mode="r", serial=1)
        cluster.network.send("probe", f"{srv}.cmsd", q)
        cluster.run(until=cluster.sim.now + 1.0)
        assert len(probe.inbox) == 0

    def test_server_answers_for_present_file(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=307))
        cluster.place("/store/here.root", cluster.servers[0], size=32)
        cluster.settle()
        probe = cluster.network.add_host("probe")
        q = pr.QueryFile(path="/store/here.root", hash_val=1, mode="r", serial=1)
        cluster.network.send("probe", f"{cluster.servers[0]}.cmsd", q)
        cluster.run(until=cluster.sim.now + 1.0)
        msgs = probe.inbox.drain()
        assert len(msgs) == 1
        assert isinstance(msgs[0].payload, pr.HaveFile)
        assert not msgs[0].payload.pending

    def test_supervisor_silent_upward_when_subtree_lacks_file(self):
        cluster = ScallaCluster(4, config=ScallaConfig(seed=308, fanout=2, full_delay=0.4))
        cluster.settle()
        sup = cluster.topology.supervisors[0]
        probe = cluster.network.add_host("probe")
        q = pr.QueryFile(path="/store/nothing.root", hash_val=1, mode="r", serial=1)
        cluster.network.send("probe", f"{sup}.cmsd", q)
        cluster.run(until=cluster.sim.now + 2.0)
        assert len(probe.inbox) == 0


class TestEdgeBehaviour:
    def test_create_with_no_eligible_servers_is_notfound(self):
        from repro.cluster.client import NoSuchFile

        cluster = ScallaCluster(2, config=ScallaConfig(seed=309, full_delay=0.4))
        cluster.settle()
        client = cluster.client()
        with pytest.raises((NoSuchFile, Exception)):
            cluster.run_process(
                client.open("/elsewhere/f.root", mode="w", create=True), limit=60
            )

    def test_response_queue_exhaustion_falls_back_to_full_wait(self):
        """With a single anchor, a second concurrent cold file cannot get a
        fast-response slot and is told to wait the full delay."""
        cfg = ScallaConfig(seed=310, full_delay=0.4)
        cluster = ScallaCluster(2, config=cfg)
        mgr_cfg = cluster.manager_cmsd().config
        cluster.populate(["/store/a.root", "/store/b.root"], size=32)
        # Rebuild the manager with 1 anchor by mutating config pre-restart.
        mgr_cfg.anchors = 1
        cluster.node(cluster.managers[0]).restart()
        cluster.run(until=cluster.sim.now + 2.0)

        waits = []

        def opener(path, tag):
            client = cluster.client(tag)
            res = yield from client.open(path)
            waits.append((tag, client.stats.waits))

        p1 = cluster.sim.process(opener("/store/a.root", "c1"))
        p2 = cluster.sim.process(opener("/store/b.root", "c2"))

        def both():
            yield cluster.sim.all_of([p1, p2])

        cluster.run_process(both(), limit=120)
        total_waits = sum(w for _t, w in waits)
        assert total_waits >= 1  # somebody hit the exhausted queue

    def test_unknown_message_ignored(self):
        cluster = ScallaCluster(1, config=ScallaConfig(seed=311))
        cluster.settle()
        mgr_host = cluster.manager_cmsd().host.name
        cluster.network.send(
            cluster.network.add_host("noise").name, mgr_host, object()
        )
        cluster.run(until=cluster.sim.now + 0.5)  # must not blow up
        res = cluster.run_process(
            cluster.client().open("/store/x", mode="w", create=True), limit=120
        )
        assert res.size == 0
