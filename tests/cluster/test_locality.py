"""Tests for the locality-aware selection extension (WAN federations)."""

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.ids import cmsd_host, xrootd_host
from repro.sim.latency import Fixed


def wan_cluster(locality: bool):
    cluster = ScallaCluster(
        4,
        config=ScallaConfig(
            seed=341,
            heartbeat_interval=0.2,
            fast_period=0.5,
            locality_aware=locality,
        ),
    )
    net = cluster.network
    # Two sites, two servers each; the manager sits at site east.
    for i, server in enumerate(cluster.servers):
        site = "east" if i < 2 else "west"
        net.set_host_site(cmsd_host(server), site)
        net.set_host_site(xrootd_host(server), site)
    net.set_host_site(cmsd_host(cluster.managers[0]), "east")
    net.set_site_latency("east", "west", Fixed(40e-3))
    # A file replicated once per site.
    cluster.place("/store/hot.root", cluster.servers[0], size=64)  # east
    cluster.place("/store/hot.root", cluster.servers[2], size=64)  # west
    # Heartbeats must run once so the manager learns each child's site.
    cluster.settle(0.5)
    return cluster


def client_at(cluster, site, name):
    c = cluster.client(name)
    cluster.network.set_host_site(name, site)
    return c


def warm(cluster):
    """Warm the location cache and let the cross-WAN responses land
    (the west replica's HaveFile takes 40 ms to reach the east manager)."""
    cluster.run_process(client_at(cluster, "east", f"warm{cluster._clients}").open("/store/hot.root"), limit=120)
    cluster.settle(0.1)


def opens_from(cluster, site, n=4):
    nodes = []
    for i in range(n):
        client = client_at(cluster, site, f"{site}-c{i}")
        res = cluster.run_process(client.open("/store/hot.root"), limit=120)
        nodes.append(res.node)
    return nodes


class TestLocalityAware:
    def test_west_clients_stay_west(self):
        cluster = wan_cluster(locality=True)
        # Warm the location cache (cold opens are answered by first
        # responder, which is a latency race, not a policy decision).
        warm(cluster)
        west_nodes = set(opens_from(cluster, "west"))
        assert west_nodes == {cluster.servers[2]}

    def test_east_clients_stay_east(self):
        cluster = wan_cluster(locality=True)
        warm(cluster)
        east_nodes = set(opens_from(cluster, "east"))
        assert east_nodes == {cluster.servers[0]}

    def test_latency_benefit_is_real(self):
        aware = wan_cluster(locality=True)
        naive = wan_cluster(locality=False)
        for c in (aware, naive):
            warm(c)
        aware_lat = []
        for i in range(4):
            client = client_at(aware, "west", f"wa{i}")
            aware_lat.append(aware.run_process(client.open("/store/hot.root"), limit=120).latency)
        naive_lat = []
        for i in range(4):
            client = client_at(naive, "west", f"wn{i}")
            naive_lat.append(naive.run_process(client.open("/store/hot.root"), limit=120).latency)
        # Locality: locate crosses the WAN (manager is east) but the data
        # open stays west.  Naive round-robin alternates sites, so its mean
        # open latency carries extra WAN round trips half the time.
        assert sum(aware_lat) < sum(naive_lat)

    def test_falls_back_when_no_local_replica(self):
        cluster = wan_cluster(locality=True)
        cluster.place("/store/east-only.root", cluster.servers[1], size=64)
        cluster.run_process(
            client_at(cluster, "east", "warm2").open("/store/east-only.root"), limit=120
        )
        client = client_at(cluster, "west", "lonely")
        res = cluster.run_process(client.open("/store/east-only.root"), limit=120)
        assert res.node == cluster.servers[1]  # served, remotely

    def test_unsited_client_gets_plain_selection(self):
        cluster = wan_cluster(locality=True)
        warm(cluster)
        nodes = set()
        for i in range(4):
            client = cluster.client(f"nosite{i}")  # never placed at a site
            nodes.add(cluster.run_process(client.open("/store/hot.root"), limit=120).node)
        assert len(nodes) == 2  # round-robin across both replicas

    def test_disabled_flag_ignores_sites(self):
        cluster = wan_cluster(locality=False)
        warm(cluster)
        west_nodes = set(opens_from(cluster, "west"))
        assert len(west_nodes) == 2  # alternates, ignoring locality
