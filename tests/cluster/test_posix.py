"""Tests for the footnote-3 POSIX view (cnsd + client)."""

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.posix import PosixView


@pytest.fixture(scope="module")
def view_cluster():
    cluster = ScallaCluster(4, config=ScallaConfig(seed=201, full_delay=0.5))
    cluster.populate(
        [
            "/store/run1/a.root",
            "/store/run1/b.root",
            "/store/run2/sub/c.root",
            "/store/top.root",
            "/atlas/x.root",
        ],
        size=128,
    )
    cluster.settle()
    view = PosixView(cluster.cnsd, cluster.client("posix"))
    return cluster, view


class TestNamespace:
    def test_listdir_root(self, view_cluster):
        _, view = view_cluster
        entries = view.listdir("/")
        assert [(e.name, e.is_dir) for e in entries] == [("atlas", True), ("store", True)]

    def test_listdir_mixed(self, view_cluster):
        _, view = view_cluster
        entries = view.listdir("/store")
        assert [(e.name, e.is_dir) for e in entries] == [
            ("run1", True),
            ("run2", True),
            ("top.root", False),
        ]

    def test_listdir_files_only(self, view_cluster):
        _, view = view_cluster
        names = [e.name for e in view.listdir("/store/run1")]
        assert names == ["a.root", "b.root"]

    def test_listdir_empty_directory(self, view_cluster):
        _, view = view_cluster
        assert view.listdir("/nowhere") == []

    def test_exists_and_isdir(self, view_cluster):
        _, view = view_cluster
        assert view.exists("/store/run1/a.root")
        assert view.exists("/store/run1")
        assert view.isdir("/store/run1")
        assert not view.isdir("/store/run1/a.root")
        assert not view.exists("/ghost")

    def test_walk(self, view_cluster):
        _, view = view_cluster
        walked = list(view.walk("/store"))
        tops = [w[0] for w in walked]
        assert "/store" in tops and "/store/run2/sub" in tops
        root = walked[0]
        assert root[1] == ["run1", "run2"]
        assert root[2] == ["top.root"]

    def test_glob_count(self, view_cluster):
        _, view = view_cluster
        assert view.glob_count("/store/") == 4
        assert view.glob_count("/atlas/") == 1

    def test_listing_never_touches_the_manager(self, view_cluster):
        """The whole point of the cnsd: ls is off the fast path."""
        cluster, view = view_cluster
        mgr = cluster.manager_cmsd()
        locates_before = mgr.stats.locates
        view.listdir("/store")
        view.walk("/")
        assert mgr.stats.locates == locates_before


class TestDataOps:
    def test_read_through_view(self, view_cluster):
        cluster, view = view_cluster
        data = cluster.run_process(view.read_file("/store/run1/a.root"), limit=60)
        assert len(data) == 128

    def test_stat_through_view(self, view_cluster):
        cluster, view = view_cluster
        exists, size = cluster.run_process(view.stat("/store/run1/b.root"), limit=60)
        assert exists and size == 128

    def test_write_creates_and_namespace_updates(self, view_cluster):
        cluster, view = view_cluster
        n = cluster.run_process(view.write_file("/store/run1/new.txt", b"hello"), limit=60)
        assert n == 5
        cluster.settle(0.01)  # cnsd notification in flight
        assert "new.txt" in [e.name for e in view.listdir("/store/run1")]
        data = cluster.run_process(view.read_file("/store/run1/new.txt"), limit=60)
        assert data == b"hello"

    def test_unlink(self, view_cluster):
        cluster, view = view_cluster
        cluster.run_process(view.write_file("/store/run1/tmp.txt", b"x"), limit=60)
        cluster.settle(0.01)
        assert cluster.run_process(view.unlink("/store/run1/tmp.txt"), limit=60)
        cluster.settle(0.01)
        assert "tmp.txt" not in [e.name for e in view.listdir("/store/run1")]

    def test_unlink_missing_is_false(self, view_cluster):
        cluster, view = view_cluster
        assert not cluster.run_process(view.unlink("/store/nope.txt"), limit=60)
