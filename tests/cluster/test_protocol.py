"""Unit tests for protocol messages and the size model."""

from repro.cluster import protocol as pr
from repro.cluster.ids import NodeId, Role, cmsd_host, xrootd_host


class TestIds:
    def test_host_names(self):
        nid = NodeId("srv00001", Role.SERVER)
        assert nid.cmsd == "srv00001.cmsd" == cmsd_host("srv00001")
        assert nid.xrootd == "srv00001.xrootd" == xrootd_host("srv00001")

    def test_str(self):
        assert str(NodeId("mgr0", Role.MANAGER)) == "mgr0(manager)"


class TestMessages:
    def test_login_carries_prefixes_only(self):
        """The Login message must have no field capable of carrying a file
        manifest — registration cost is O(prefixes) by construction."""
        login = pr.Login(node="srv1", role="server", paths=("/store", "/atlas"))
        assert set(vars(login)) == {"node", "role", "paths", "instance"}

    def test_messages_hashable_and_frozen(self):
        q = pr.QueryFile(path="/a", hash_val=1, mode="r", serial=1)
        assert hash(q) is not None

    def test_have_file_pending_flag(self):
        h = pr.HaveFile(path="/a", hash_val=1, node="srv1", pending=True, write_capable=False)
        assert h.pending and not h.write_capable


class TestSizeModel:
    def test_size_scales_with_path_length(self):
        short = pr.QueryFile(path="/a", hash_val=1, mode="r", serial=1)
        long = pr.QueryFile(path="/a" * 100, hash_val=1, mode="r", serial=1)
        assert pr.estimate_size(long) > pr.estimate_size(short)

    def test_size_scales_with_payload(self):
        small = pr.ReadAck(req_id=1, data=b"x")
        big = pr.ReadAck(req_id=1, data=b"x" * 10_000)
        assert pr.estimate_size(big) - pr.estimate_size(small) == 9_999

    def test_login_size_scales_with_prefix_count_not_file_count(self):
        one = pr.Login(node="s", role="server", paths=("/store",))
        many = pr.Login(node="s", role="server", paths=tuple(f"/p{i}" for i in range(10)))
        assert pr.estimate_size(many) > pr.estimate_size(one)
        # But even many prefixes stay tiny — order hundreds of bytes.
        assert pr.estimate_size(many) < 500

    def test_base_overhead_present(self):
        assert pr.estimate_size(pr.CloseAck(req_id=1)) >= 24
