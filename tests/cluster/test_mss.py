"""Unit tests for the simulated mass storage system."""

import pytest

from repro.cluster.mss import MassStorage
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed


class TestCatalog:
    def test_archive_and_has(self):
        mss = MassStorage(Simulator())
        mss.archive("/store/old.root", 2048)
        assert mss.has("/store/old.root")
        assert mss.size_of("/store/old.root") == 2048
        assert not mss.has("/store/new.root")

    def test_catalog_paths_sorted(self):
        mss = MassStorage(Simulator())
        mss.archive("/b", 1)
        mss.archive("/a", 1)
        assert mss.catalog_paths() == ["/a", "/b"]


class TestStaging:
    def test_stage_takes_latency(self):
        sim = Simulator()
        mss = MassStorage(sim, stage_latency=Fixed(120.0))
        mss.archive("/f", 100)
        done = []

        def p():
            size = yield mss.stage("/f")
            done.append((sim.now, size))

        sim.process(p())
        sim.run()
        assert done == [(120.0, 100)]
        assert mss.stages_started == 1
        assert mss.stages_completed == 1

    def test_concurrent_stages_shared(self):
        """Two requests for the same file share one tape operation."""
        sim = Simulator()
        mss = MassStorage(sim, stage_latency=Fixed(60.0))
        mss.archive("/f", 1)
        times = []

        def p(tag):
            yield mss.stage("/f")
            times.append((tag, sim.now))

        sim.process(p("a"))
        sim.process(p("b"))
        sim.run()
        assert times == [("a", 60.0), ("b", 60.0)]
        assert mss.stages_started == 1

    def test_stage_after_completion_restages(self):
        sim = Simulator()
        mss = MassStorage(sim, stage_latency=Fixed(10.0))
        mss.archive("/f", 1)

        def p():
            yield mss.stage("/f")
            yield mss.stage("/f")

        sim.run_until_process(sim.process(p()))
        assert mss.stages_started == 2
        assert sim.now == 20.0

    def test_unknown_path_raises(self):
        mss = MassStorage(Simulator())
        with pytest.raises(KeyError):
            mss.stage("/ghost")
