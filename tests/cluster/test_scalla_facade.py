"""Tests of the ScallaCluster facade's own API surface."""

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.ids import Role


class TestConstruction:
    def test_default_config(self):
        cluster = ScallaCluster(2)
        assert cluster.config.fanout == 64
        assert len(cluster.servers) == 2
        assert cluster.managers == ("mgr0",)

    def test_deferred_start(self):
        cluster = ScallaCluster(2, start=False)
        assert not any(n.running for n in cluster.nodes.values())
        cluster.start()
        assert all(n.running for n in cluster.nodes.values())

    def test_start_is_idempotent(self):
        cluster = ScallaCluster(2)
        cluster.start()  # second call must not raise
        assert all(n.running for n in cluster.nodes.values())

    def test_client_names_auto_increment(self):
        cluster = ScallaCluster(1)
        c1, c2 = cluster.client(), cluster.client()
        assert c1.name != c2.name

    def test_manager_cmsd_accessor(self):
        cluster = ScallaCluster(1, config=ScallaConfig(manager_replicas=2))
        assert cluster.manager_cmsd(0).node_id.role is Role.MANAGER
        assert cluster.manager_cmsd(1).node_id.name == "mgr1"


class TestPlacement:
    def test_place_on_non_server_rejected(self):
        cluster = ScallaCluster(1)
        with pytest.raises(ValueError):
            cluster.place("/store/x", cluster.managers[0])

    def test_archive_on_non_server_rejected(self):
        cluster = ScallaCluster(1)
        with pytest.raises(ValueError):
            cluster.archive("/store/x", cluster.managers[0])

    def test_populate_round_robin_determinism(self):
        c1 = ScallaCluster(3, config=ScallaConfig(seed=1))
        c2 = ScallaCluster(3, config=ScallaConfig(seed=1))
        paths = [f"/store/f{i}" for i in range(7)]
        p1 = c1.populate(paths, copies=2)
        p2 = c2.populate(paths, copies=2)
        assert p1 == p2

    def test_populate_random_with_rng(self):
        import random

        cluster = ScallaCluster(4, config=ScallaConfig(seed=2))
        placement = cluster.populate(
            [f"/f{i}" for i in range(10)], copies=2, rng=random.Random(9)
        )
        for path, holders in placement.items():
            assert len(holders) == 2
            assert len(set(holders)) == 2
            for h in holders:
                assert cluster.node(h).fs.exists(path)

    def test_populate_updates_cnsd(self):
        cluster = ScallaCluster(2, config=ScallaConfig(seed=3))
        cluster.populate(["/store/a", "/store/b"])
        assert cluster.cnsd.file_count() == 2

    def test_copies_capped_at_server_count(self):
        import random

        cluster = ScallaCluster(2, config=ScallaConfig(seed=4))
        placement = cluster.populate(["/f"], copies=5, rng=random.Random(0))
        assert len(placement["/f"]) == 2


class TestRunHelpers:
    def test_settle_advances_clock(self):
        cluster = ScallaCluster(1)
        t0 = cluster.sim.now
        cluster.settle(0.25)
        assert cluster.sim.now == pytest.approx(t0 + 0.25)

    def test_run_process_returns_value(self):
        cluster = ScallaCluster(1)

        def answer():
            yield cluster.sim.timeout(0.1)
            return 42

        assert cluster.run_process(answer()) == 42

    def test_run_process_limit_enforced(self):
        from repro.sim.errors import SimError

        cluster = ScallaCluster(1)

        def forever():
            yield cluster.sim.timeout(100.0)

        with pytest.raises(SimError):
            cluster.run_process(forever(), limit=1.0)
