"""Unit tests for the Cluster Name Space daemon."""

import random

import pytest

from repro.cluster import protocol as pr
from repro.cluster.cnsd import CnsDaemon
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed
from repro.sim.network import Network


def make():
    sim = Simulator()
    net = Network(sim, default_latency=Fixed(1e-6), rng=random.Random(0))
    cnsd = CnsDaemon(sim, net)
    cnsd.start()
    return sim, net, cnsd


class TestApply:
    def test_create_and_list(self):
        _, _, cnsd = make()
        cnsd.apply("srv1", "/store/a", "create")
        cnsd.apply("srv2", "/store/b", "create")
        assert cnsd.list("/store") == ["/store/a", "/store/b"]
        assert cnsd.file_count() == 2

    def test_multiple_holders(self):
        _, _, cnsd = make()
        cnsd.apply("srv1", "/a", "create")
        cnsd.apply("srv2", "/a", "create")
        assert cnsd.holders("/a") == {"srv1", "srv2"}

    def test_remove_last_holder_drops_path(self):
        _, _, cnsd = make()
        cnsd.apply("srv1", "/a", "create")
        cnsd.apply("srv1", "/a", "remove")
        assert cnsd.list() == []

    def test_remove_one_of_two_holders(self):
        _, _, cnsd = make()
        cnsd.apply("srv1", "/a", "create")
        cnsd.apply("srv2", "/a", "create")
        cnsd.apply("srv1", "/a", "remove")
        assert cnsd.holders("/a") == {"srv2"}

    def test_remove_unknown_is_noop(self):
        _, _, cnsd = make()
        cnsd.apply("srv1", "/ghost", "remove")
        assert cnsd.list() == []

    def test_bad_op_rejected(self):
        _, _, cnsd = make()
        with pytest.raises(ValueError):
            cnsd.apply("srv1", "/a", "rename")


class TestOverTheWire:
    def test_namespace_update_message(self):
        sim, net, cnsd = make()
        tester = net.add_host("tester")
        net.send("tester", "cnsd", pr.NamespaceUpdate(node="srv9", path="/x", op="create"))
        sim.run()
        assert cnsd.holders("/x") == {"srv9"}

    def test_list_request_reply(self):
        sim, net, cnsd = make()
        tester = net.add_host("tester")
        cnsd.apply("srv1", "/store/a", "create")
        cnsd.apply("srv1", "/other/b", "create")
        got = []

        def p():
            net.send("tester", "cnsd", pr.List(req_id=5, reply_to="tester", prefix="/store"))
            env = yield tester.inbox.get()
            got.append(env.payload)

        sim.run_until_process(sim.process(p()))
        assert got[0].names == ("/store/a",)
