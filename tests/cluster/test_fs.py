"""Unit tests for the per-server filesystem."""

import pytest

from repro.cluster.fs import FSError, ServerFS


class TestCreate:
    def test_create_and_exists(self):
        fs = ServerFS()
        fs.create("/store/a", now=1.0)
        assert fs.exists("/store/a")
        assert fs.stat("/store/a").size == 0
        assert fs.stat("/store/a").created_at == 1.0

    def test_duplicate_create_rejected(self):
        fs = ServerFS()
        fs.create("/a")
        with pytest.raises(FSError, match="exists"):
            fs.create("/a")

    def test_relative_path_rejected(self):
        with pytest.raises(FSError, match="absolute"):
            ServerFS().create("a/b")

    def test_put_replaces(self):
        fs = ServerFS()
        fs.put("/a", b"one")
        fs.put("/a", b"twotwo")
        assert fs.stat("/a").size == 6


class TestReadWrite:
    def test_write_then_read(self):
        fs = ServerFS()
        fs.create("/a")
        assert fs.write("/a", 0, b"hello") == 5
        assert fs.read("/a", 0, 5) == b"hello"

    def test_sparse_write_zero_fills(self):
        fs = ServerFS()
        fs.create("/a")
        fs.write("/a", 4, b"x")
        assert fs.read("/a", 0, 5) == b"\x00\x00\x00\x00x"

    def test_read_past_eof_is_short(self):
        fs = ServerFS()
        fs.put("/a", b"abc")
        assert fs.read("/a", 2, 100) == b"c"
        assert fs.read("/a", 10, 5) == b""

    def test_overwrite_middle(self):
        fs = ServerFS()
        fs.put("/a", b"abcdef")
        fs.write("/a", 2, b"XY")
        assert fs.read("/a", 0, 6) == b"abXYef"

    def test_negative_offset_rejected(self):
        fs = ServerFS()
        fs.put("/a", b"abc")
        with pytest.raises(FSError):
            fs.read("/a", -1, 2)
        with pytest.raises(FSError):
            fs.write("/a", -1, b"x")

    def test_missing_file_raises(self):
        with pytest.raises(FSError):
            ServerFS().read("/nope", 0, 1)

    def test_io_accounting(self):
        fs = ServerFS()
        fs.put("/a", b"abc")
        fs.read("/a", 0, 3)
        fs.write("/a", 0, b"zz")
        assert fs.bytes_read == 3
        assert fs.bytes_written == 2


class TestRemoveAndList:
    def test_remove(self):
        fs = ServerFS()
        fs.put("/a", b"x")
        fs.remove("/a")
        assert not fs.exists("/a")

    def test_remove_missing_raises(self):
        with pytest.raises(FSError):
            ServerFS().remove("/a")

    def test_list_by_prefix(self):
        fs = ServerFS()
        for p in ("/store/run1/a", "/store/run1/b", "/store/run2/c", "/atlas/x"):
            fs.put(p, b"")
        assert fs.list("/store/run1") == ["/store/run1/a", "/store/run1/b"]
        assert fs.list() == fs.paths()
        assert len(fs) == 4

    def test_total_bytes(self):
        fs = ServerFS()
        fs.put("/a", b"12345")
        fs.put("/b", b"12")
        assert fs.total_bytes() == 7
