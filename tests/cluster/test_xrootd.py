"""Unit tests for the xrootd data server, driven by raw protocol messages."""

import random

from repro.cluster import protocol as pr
from repro.cluster.fs import ServerFS
from repro.cluster.ids import NodeId, Role
from repro.cluster.mss import MassStorage
from repro.cluster.xrootd import XrootdConfig, XrootdServer
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed
from repro.sim.network import Network


class Harness:
    """A bare xrootd plus a test endpoint to exchange messages with it."""

    def __init__(self, *, mss=False, stage_latency=10.0):
        self.sim = Simulator()
        self.net = Network(self.sim, default_latency=Fixed(1e-6), rng=random.Random(0))
        self.me = self.net.add_host("tester")
        self.fs = ServerFS()
        self.mss = None
        if mss:
            self.mss = MassStorage(self.sim, stage_latency=Fixed(stage_latency))
        self.cnsd_inbox = self.net.add_host("cnsd")
        self.server = XrootdServer(
            self.sim,
            self.net,
            NodeId("srv0", Role.SERVER),
            self.fs,
            mss=self.mss,
            cnsd_host="cnsd",
            config=XrootdConfig(service_time=Fixed(50e-6)),
        )
        self.server.start()
        self._req = 0

    def req_id(self):
        self._req += 1
        return self._req

    def ask(self, msg, limit=1000.0):
        """Send and await the reply with the matching req_id."""

        def p():
            self.net.send("tester", "srv0.xrootd", msg)
            while True:
                env = yield self.me.inbox.get()
                if getattr(env.payload, "req_id", None) == msg.req_id:
                    return env.payload

        return self.sim.run_until_process(self.sim.process(p()), limit=limit)

    def open(self, path, mode="r", create=False):
        return self.ask(pr.Open(self.req_id(), "tester", path, mode, create))


class TestOpen:
    def test_open_existing(self):
        h = Harness()
        h.fs.put("/store/a", b"hello")
        resp = h.open("/store/a")
        assert isinstance(resp, pr.OpenAck)
        assert resp.size == 5

    def test_open_missing_fails_enoent(self):
        h = Harness()
        resp = h.open("/store/missing")
        assert isinstance(resp, pr.OpenFail)
        assert resp.reason == "ENOENT"
        assert h.server.open_failures == 1

    def test_create_new_file(self):
        h = Harness()
        resp = h.open("/store/new", mode="w", create=True)
        assert isinstance(resp, pr.OpenAck)
        assert h.fs.exists("/store/new")

    def test_create_existing_fails(self):
        h = Harness()
        h.fs.put("/store/a", b"x")
        resp = h.open("/store/a", mode="w", create=True)
        assert isinstance(resp, pr.OpenFail)
        assert resp.reason == "exists"

    def test_open_staging_file_waits_for_stage(self):
        h = Harness(mss=True, stage_latency=30.0)
        h.mss.archive("/store/tape", 256)
        resp = h.open("/store/tape")
        assert isinstance(resp, pr.OpenAck)
        assert resp.size == 256
        assert h.sim.now >= 30.0
        assert h.fs.exists("/store/tape")
        assert h.server.stages == 1

    def test_staged_file_served_from_disk_after(self):
        h = Harness(mss=True, stage_latency=30.0)
        h.mss.archive("/store/tape", 64)
        h.open("/store/tape")
        t0 = h.sim.now
        h.open("/store/tape")
        assert h.sim.now - t0 < 1.0  # no second stage
        assert h.mss.stages_started == 1


class TestDataOps:
    def test_read_write_roundtrip(self):
        h = Harness()
        h.fs.put("/a", b"\x00" * 10)
        ack = h.open("/a", mode="w")
        h.ask(pr.Write(h.req_id(), "tester", ack.handle, 0, b"hello"))
        resp = h.ask(pr.Read(h.req_id(), "tester", ack.handle, 0, 5))
        assert resp.data == b"hello"

    def test_read_bad_handle(self):
        h = Harness()
        resp = h.ask(pr.Read(h.req_id(), "tester", 999, 0, 5))
        assert isinstance(resp, pr.OpenFail)

    def test_close_releases_handle(self):
        h = Harness()
        h.fs.put("/a", b"x")
        ack = h.open("/a")
        h.ask(pr.Close(h.req_id(), "tester", ack.handle))
        resp = h.ask(pr.Read(h.req_id(), "tester", ack.handle, 0, 1))
        assert isinstance(resp, pr.OpenFail)

    def test_stat(self):
        h = Harness()
        h.fs.put("/a", b"abc")
        resp = h.ask(pr.Stat(h.req_id(), "tester", "/a"))
        assert resp.exists and resp.size == 3
        resp = h.ask(pr.Stat(h.req_id(), "tester", "/b"))
        assert not resp.exists

    def test_remove(self):
        h = Harness()
        h.fs.put("/a", b"x")
        resp = h.ask(pr.Remove(h.req_id(), "tester", "/a"))
        assert resp.removed
        resp = h.ask(pr.Remove(h.req_id(), "tester", "/a"))
        assert not resp.removed

    def test_list(self):
        h = Harness()
        h.fs.put("/store/a", b"")
        h.fs.put("/store/b", b"")
        resp = h.ask(pr.List(h.req_id(), "tester", "/store"))
        assert resp.names == ("/store/a", "/store/b")

    def test_read_transfer_time_scales(self):
        h = Harness()
        h.fs.put("/big", b"\x01" * 1_000_000)
        ack = h.open("/big")
        t0 = h.sim.now
        h.ask(pr.Read(h.req_id(), "tester", ack.handle, 0, 1_000_000))
        big_time = h.sim.now - t0
        t0 = h.sim.now
        h.ask(pr.Read(h.req_id(), "tester", ack.handle, 0, 10))
        small_time = h.sim.now - t0
        assert big_time > small_time * 10


class TestConcurrency:
    def test_stage_does_not_block_other_requests(self):
        """A minutes-long stage must not serialize the daemon."""
        h = Harness(mss=True, stage_latency=100.0)
        h.mss.archive("/tape", 1)
        h.fs.put("/disk", b"x")
        done = []

        def slow():
            self_req = pr.Open(900, "tester", "/tape", "r", False)
            h.net.send("tester", "srv0.xrootd", self_req)
            return
            yield

        def fast():
            req = pr.Open(901, "tester", "/disk", "r", False)
            h.net.send("tester", "srv0.xrootd", req)
            while True:
                env = yield h.me.inbox.get()
                if getattr(env.payload, "req_id", None) == 901:
                    done.append(h.sim.now)
                    return

        h.sim.process(slow())
        h.sim.process(fast())
        h.sim.run(until=5.0)
        assert done and done[0] < 1.0

    def test_load_metric_reflects_activity(self):
        h = Harness(mss=True, stage_latency=50.0)
        h.mss.archive("/tape", 1)
        h.net.send("tester", "srv0.xrootd", pr.Open(1, "tester", "/tape", "r", False))
        h.sim.run(until=1.0)
        assert h.server.load > 0.0
        h.sim.run(until=100.0)
        assert h.server.load == 0.0


class TestNamespaceNotifications:
    def test_create_and_remove_notify_cnsd(self):
        h = Harness()
        h.open("/store/new", mode="w", create=True)
        h.ask(pr.Remove(h.req_id(), "tester", "/store/new"))
        h.sim.run()
        ops = [e.payload.op for e in h.cnsd_inbox.inbox.drain()]
        assert ops == ["create", "remove"]

    def test_free_space_decreases(self):
        h = Harness()
        before = h.server.free_space
        h.fs.put("/a", b"\x00" * 1000)
        assert h.server.free_space == before - 1000
