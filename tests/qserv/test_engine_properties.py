"""Property-based tests: chunked execution equals a flat full scan."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qserv.engine import ChunkTable, Query, QueryResult, Row
from repro.qserv.partition import SkyPartitioner

row_strategy = st.builds(
    Row,
    object_id=st.integers(min_value=0, max_value=10**6),
    ra=st.floats(min_value=0.0, max_value=359.999),
    dec=st.floats(min_value=-90.0, max_value=89.999),
    mag=st.floats(min_value=5.0, max_value=35.0),
)


def flat_scan(rows, q: Query):
    """Reference implementation: one unpartitioned pass."""
    out = QueryResult(kind=q.kind)
    for r in rows:
        out.rows_scanned += 1
        if not (q.ra_min <= r.ra <= q.ra_max and q.dec_min <= r.dec <= q.dec_max):
            continue
        if r.mag > q.mag_max:
            continue
        out.count += 1
        out.mag_sum += r.mag
        if q.kind == "scan":
            out.rows.append((r.object_id, r.ra, r.dec, r.mag))
    return out


class TestChunkedEqualsFlat:
    @given(
        st.lists(row_strategy, min_size=1, max_size=120),
        st.floats(min_value=0.0, max_value=350.0),
        st.floats(min_value=-90.0, max_value=80.0),
        st.floats(min_value=8.0, max_value=32.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_query_partition_invariant(self, rows, ra_min, dec_min, mag_max):
        """Splitting the catalog by sky chunk and merging chunk results must
        equal a flat scan — the shared-nothing correctness invariant."""
        part = SkyPartitioner(ra_stripes=4, dec_stripes=4)
        q = Query(
            kind="count",
            ra_min=ra_min,
            ra_max=min(ra_min + 120.0, 360.0),
            dec_min=dec_min,
            dec_max=min(dec_min + 60.0, 90.0),
            mag_max=mag_max,
        )
        chunks: dict[int, list[Row]] = {}
        for r in rows:
            chunks.setdefault(part.chunk_of(r.ra, r.dec), []).append(r)
        merged = QueryResult.merge(
            [ChunkTable(rs).execute(q) for rs in chunks.values()]
        )
        reference = flat_scan(rows, q)
        assert merged.count == reference.count
        assert abs(merged.mag_sum - reference.mag_sum) < 1e-6
        assert merged.rows_scanned == len(rows)

    @given(st.lists(row_strategy, min_size=1, max_size=80, unique_by=lambda r: r.object_id))
    @settings(max_examples=40, deadline=None)
    def test_point_query_finds_every_object_in_its_chunk(self, rows):
        part = SkyPartitioner(ra_stripes=4, dec_stripes=2)
        chunks: dict[int, list[Row]] = {}
        for r in rows:
            chunks.setdefault(part.chunk_of(r.ra, r.dec), []).append(r)
        tables = {c: ChunkTable(rs) for c, rs in chunks.items()}
        for r in rows:
            c = part.chunk_of(r.ra, r.dec)
            res = tables[c].execute(Query(kind="point", object_id=r.object_id))
            assert res.count == 1
            assert res.rows[0][0] == r.object_id

    @given(st.lists(row_strategy, min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_box_pruning_loses_nothing(self, rows):
        """Executing only on chunks overlapping the box must find exactly
        the rows a flat scan finds."""
        part = SkyPartitioner(ra_stripes=4, dec_stripes=4)
        q = Query(kind="count", ra_min=40.0, ra_max=200.0, dec_min=-30.0, dec_max=45.0)
        chunks: dict[int, list[Row]] = {}
        for r in rows:
            chunks.setdefault(part.chunk_of(r.ra, r.dec), []).append(r)
        overlapping = set(part.chunks_overlapping(q.ra_min, q.ra_max, q.dec_min, q.dec_max))
        merged = QueryResult.merge(
            [ChunkTable(rs).execute(q) for c, rs in chunks.items() if c in overlapping]
        )
        assert merged.count == flat_scan(rows, q).count

    @given(st.lists(row_strategy, min_size=0, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_serialization_roundtrip_any_result(self, rows):
        q = Query(kind="scan", mag_max=25.0)
        res = ChunkTable(rows).execute(q)
        back = QueryResult.from_bytes(res.to_bytes())
        assert back.count == res.count
        assert back.rows == res.rows


class TestSkyPartitionProperties:
    @given(
        st.floats(min_value=0.0, max_value=359.999),
        st.floats(min_value=-90.0, max_value=89.999),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_coordinate_maps_to_valid_chunk(self, ra, dec, rs, ds):
        part = SkyPartitioner(ra_stripes=rs, dec_stripes=ds)
        c = part.chunk_of(ra, dec)
        assert 0 <= c < part.n_chunks

    @given(
        st.floats(min_value=0.0, max_value=359.0),
        st.floats(min_value=-90.0, max_value=88.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_point_always_inside_its_overlap_set(self, ra, dec):
        part = SkyPartitioner(ra_stripes=8, dec_stripes=4)
        c = part.chunk_of(ra, dec)
        box = part.chunks_overlapping(ra, min(ra + 0.5, 359.999), dec, min(dec + 0.5, 89.999))
        assert c in box
