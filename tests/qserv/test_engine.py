"""Unit tests for the Qserv partitioner and query engine."""

import random

import pytest

from repro.qserv.engine import ChunkTable, Query, QueryResult, Row, make_catalog_chunk
from repro.qserv.partition import SkyPartitioner, chunk_path, query_path, result_path


class TestPartitioner:
    def test_chunk_count(self):
        p = SkyPartitioner(ra_stripes=4, dec_stripes=2)
        assert p.n_chunks == 8
        assert p.all_chunks() == list(range(8))

    def test_chunk_of_corners(self):
        p = SkyPartitioner(ra_stripes=4, dec_stripes=2)
        assert p.chunk_of(0.0, -90.0) == 0
        assert p.chunk_of(359.9, 89.9) == 7

    def test_chunk_boundaries(self):
        p = SkyPartitioner(ra_stripes=4, dec_stripes=2)
        assert p.chunk_of(89.9, -90) == 0
        assert p.chunk_of(90.0, -90) == 1
        assert p.chunk_of(0.0, 0.0) == 4  # second dec stripe

    def test_out_of_range(self):
        p = SkyPartitioner()
        with pytest.raises(ValueError):
            p.chunk_of(360.0, 0.0)
        with pytest.raises(ValueError):
            p.chunk_of(0.0, 90.0)

    def test_box_overlap(self):
        p = SkyPartitioner(ra_stripes=4, dec_stripes=2)
        chunks = p.chunks_overlapping(0.0, 100.0, -90.0, -1.0)
        assert chunks == [0, 1]
        assert p.chunks_overlapping(0, 359.9, -90, 89.9) == list(range(8))

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            SkyPartitioner().chunks_overlapping(10, 5, 0, 1)

    def test_paths(self):
        assert chunk_path(3) == "/qserv/chunk/00003"
        assert query_path(3, 7) == "/qserv/chunk/00003/q00000007.query"
        assert result_path(3, 7) == "/qserv/chunk/00003/q00000007.result"


class TestQuerySerialization:
    def test_roundtrip(self):
        q = Query(kind="scan", ra_min=10, ra_max=20, mag_max=22.5)
        assert Query.from_bytes(q.to_bytes()) == q

    def test_unknown_kind_rejected(self):
        bad = Query(kind="scan").to_bytes().replace(b"scan", b"drop")
        with pytest.raises(ValueError):
            Query.from_bytes(bad)

    def test_result_roundtrip(self):
        r = QueryResult(kind="scan", rows=[(1, 2.0, 3.0, 4.0)], count=1, mag_sum=4.0, rows_scanned=9)
        back = QueryResult.from_bytes(r.to_bytes())
        assert back == r


class TestChunkTable:
    def rows(self):
        return [
            Row(1, 10.0, 0.0, 15.0),
            Row(2, 20.0, 10.0, 25.0),
            Row(3, 30.0, -10.0, 18.0),
        ]

    def test_point_query(self):
        t = ChunkTable(self.rows())
        res = t.execute(Query(kind="point", object_id=2))
        assert res.count == 1
        assert res.rows[0][0] == 2

    def test_point_query_missing(self):
        t = ChunkTable(self.rows())
        res = t.execute(Query(kind="point", object_id=99))
        assert res.count == 0 and res.rows == []

    def test_scan_with_box_and_mag(self):
        t = ChunkTable(self.rows())
        res = t.execute(Query(kind="scan", ra_min=5, ra_max=25, mag_max=20.0))
        assert [r[0] for r in res.rows] == [1]
        assert res.rows_scanned == 3

    def test_count_and_mean(self):
        t = ChunkTable(self.rows())
        res = t.execute(Query(kind="mean_mag", mag_max=99.0))
        assert res.count == 3
        assert res.mag_sum == pytest.approx(58.0)

    def test_merge(self):
        a = QueryResult(kind="count", count=2, mag_sum=30.0, rows_scanned=10)
        b = QueryResult(kind="count", count=3, mag_sum=60.0, rows_scanned=20)
        m = QueryResult.merge([a, b])
        assert m.count == 5
        assert m.mean_mag == pytest.approx(18.0)
        assert m.rows_scanned == 30

    def test_merge_empty(self):
        assert QueryResult.merge([]).kind == "empty"
        with pytest.raises(ValueError):
            _ = QueryResult(kind="count").mean_mag


class TestMakeCatalogChunk:
    def test_rows_land_in_partition(self):
        p = SkyPartitioner(ra_stripes=4, dec_stripes=4)
        table = make_catalog_chunk(5, partitioner=p, rows=100, rng=random.Random(0))
        assert len(table) == 100
        for row in table.rows:
            assert p.chunk_of(row.ra, row.dec) == 5

    def test_id_base_offsets(self):
        p = SkyPartitioner(ra_stripes=2, dec_stripes=2)
        t = make_catalog_chunk(1, partitioner=p, rows=10, rng=random.Random(1), id_base=500)
        assert [r.object_id for r in t.rows] == list(range(500, 510))
