"""Qserv master edge cases: unhosted chunks, timeouts, empty results."""

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.cluster.client import ScallaError
from repro.qserv import (
    Query,
    QservMaster,
    QservMasterConfig,
    QservWorker,
    QueryResult,
    SkyPartitioner,
    make_catalog_chunk,
)


def small_qserv():
    import random

    cluster = ScallaCluster(
        2, config=ScallaConfig(seed=351, exports=("/qserv",), full_delay=0.5)
    )
    part = SkyPartitioner(ra_stripes=2, dec_stripes=1)
    worker = QservWorker(cluster.node(cluster.servers[0]))
    table = make_catalog_chunk(0, partitioner=part, rows=20, rng=random.Random(0))
    worker.host_chunk(0, table, cnsd=cluster.cnsd)
    cluster.settle()
    return cluster, part, worker


class TestMasterEdges:
    def test_unhosted_chunk_fails_loudly(self):
        cluster, part, _w = small_qserv()
        master = QservMaster(cluster.client("m"))
        # Chunk 1 was never hosted anywhere: the locate itself fails.
        with pytest.raises(ScallaError):
            cluster.run_process(master.run_query(Query(kind="count"), [1]), limit=120)

    def test_empty_chunk_result_is_zero(self):
        import random

        cluster, part, worker = small_qserv()
        # Host a chunk whose rows all exceed the magnitude cut.
        master = QservMaster(cluster.client("m"))
        out = cluster.run_process(
            master.run_query(Query(kind="count", mag_max=0.0), [0]), limit=120
        )
        assert out.result.count == 0
        assert out.result.rows_scanned == 20

    def test_chunk_timeout_configurable(self):
        cluster, part, worker = small_qserv()
        # A pathological per-row cost makes the query outlast the timeout.
        worker.config.per_row_cost = 10.0
        master = QservMaster(
            cluster.client("m"),
            config=QservMasterConfig(chunk_timeout=1.0, max_attempts=1),
        )
        with pytest.raises(ScallaError):
            cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=600)

    def test_merge_of_empty_outcome(self):
        assert QueryResult.merge([]).kind == "empty"

    def test_dispatch_counts(self):
        cluster, part, _w = small_qserv()
        master = QservMaster(cluster.client("m"))
        cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=120)
        cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=120)
        assert master.dispatches == 2
        assert master.redispatches == 0
