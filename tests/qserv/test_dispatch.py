"""Integration: Qserv distributed dispatch over the Scalla file abstraction."""

import random

import pytest

from repro.cluster import ScallaCluster, ScallaConfig
from repro.qserv import (
    Query,
    QservMaster,
    QservWorker,
    SkyPartitioner,
    make_catalog_chunk,
)


def build(n_servers=4, ra=4, dec=2, rows=50, copies=1, seed=5, **cfg_kw):
    """A Qserv deployment: chunks spread (optionally replicated) over servers."""
    cfg = ScallaConfig(seed=seed, exports=("/qserv",), **cfg_kw)
    cluster = ScallaCluster(n_servers, config=cfg)
    part = SkyPartitioner(ra_stripes=ra, dec_stripes=dec)
    rng = random.Random(1)
    workers = {}
    tables = {}
    for i, p in enumerate(part.all_chunks()):
        tables[p] = make_catalog_chunk(
            p, partitioner=part, rows=rows, rng=rng, id_base=p * 10_000
        )
        for c in range(copies):
            server = cluster.servers[(i + c) % len(cluster.servers)]
            if server not in workers:
                workers[server] = QservWorker(cluster.node(server))
            workers[server].host_chunk(p, tables[p], cnsd=cluster.cnsd)
    cluster.settle()
    master = QservMaster(cluster.client("qserv-master"))
    return cluster, part, master, workers, tables


class TestDispatch:
    def test_full_sky_count_is_exact(self):
        cluster, part, master, workers, tables = build()
        expected = sum(
            sum(1 for r in t.rows if r.mag <= 20.0) for t in tables.values()
        )
        outcome = cluster.run_process(
            master.run_query(Query(kind="count", mag_max=20.0), part.all_chunks()), limit=120
        )
        assert outcome.result.count == expected
        assert outcome.result.rows_scanned == 50 * part.n_chunks

    def test_point_query_single_chunk(self):
        cluster, part, master, workers, tables = build()
        target = tables[3].rows[7]
        outcome = cluster.run_process(
            master.run_query(Query(kind="point", object_id=target.object_id), [3]), limit=120
        )
        assert outcome.result.rows == [
            (target.object_id, target.ra, target.dec, target.mag)
        ]

    def test_box_query_prunes_chunks(self):
        """Partial-sky queries touch only overlapping chunks — the
        'quick retrieval' class of §IV-B."""
        cluster, part, master, workers, tables = build()
        chunks = part.chunks_overlapping(0, 80, -90, -10)
        assert 0 < len(chunks) < part.n_chunks
        outcome = cluster.run_process(
            master.run_query(Query(kind="count", ra_max=80.0, dec_max=-10.0), chunks),
            limit=120,
        )
        assert outcome.chunks == len(chunks)
        expected = sum(
            sum(1 for r in tables[c].rows if r.ra <= 80 and r.dec <= -10)
            for c in chunks
        )
        assert outcome.result.count == expected

    def test_no_cluster_size_configuration(self):
        """'There is no configuration for the number of nodes': the master
        object is built from a client and nothing else."""
        cluster, part, master, workers, tables = build()
        assert not hasattr(master, "workers")
        assert master.channels == {}  # learned lazily, not configured
        cluster.run_process(master.run_query(Query(kind="count"), [0, 1]), limit=120)
        assert set(master.channels) == {0, 1}

    def test_channels_cached_across_queries(self):
        cluster, part, master, workers, tables = build()
        cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=120)
        locates_before = master.client.stats.locates
        cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=120)
        assert master.client.stats.locates == locates_before  # channel reused

    def test_scatter_gather_is_parallel(self):
        """8 chunks at ~250 µs each must take ~one chunk time, not eight."""
        cluster, part, master, workers, tables = build()
        outcome = cluster.run_process(
            master.run_query(Query(kind="count"), part.all_chunks()), limit=120
        )
        slowest = max(outcome.per_chunk_latency.values())
        assert outcome.duration < slowest * 2.5

    def test_mean_mag_aggregate(self):
        cluster, part, master, workers, tables = build()
        all_rows = [r for t in tables.values() for r in t.rows]
        expected = sum(r.mag for r in all_rows) / len(all_rows)
        outcome = cluster.run_process(
            master.run_query(Query(kind="mean_mag"), part.all_chunks()), limit=120
        )
        assert outcome.result.mean_mag == pytest.approx(expected)


class TestWorkerFailure:
    def test_master_redispatches_to_replica(self):
        """Worker loss surfaces as a failed file op; the master re-locates
        the chunk and lands on the replica — fault tolerance purely through
        Scalla's mapping."""
        cluster, part, master, workers, tables = build(copies=2, heartbeat_interval=0.2, disconnect_timeout=0.7)
        # Learn channels first.
        cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=120)
        victim = master.channels[0]
        cluster.node(victim).crash()
        cluster.settle(1.0)  # let the manager notice the disconnect
        outcome = cluster.run_process(master.run_query(Query(kind="count"), [0]), limit=240)
        expected = sum(1 for r in tables[0].rows if r.mag <= 99.0)
        assert outcome.result.count == expected
        assert master.channels[0] != victim
        assert outcome.redispatches >= 1
