"""Per-rule unit tests for scalla-lint: positive, negative, suppressed.

Every rule gets (a) a snippet it must flag, (b) an equivalent clean
snippet it must not, and (c) the flagged snippet with a suppression
comment, which must come back clean.
"""

import textwrap

from repro.analysis.lint import lint_source

SRC = "src/repro/cluster/fake.py"  # in scope for every rule
BENCH = "benchmarks/bench_fake.py"  # out of scope for the src-only rules


def run(source, path=SRC):
    return lint_source(textwrap.dedent(source), path)


def rule_ids(source, path=SRC):
    return [v.rule for v in run(source, path)]


class TestSim001WallClock:
    def test_time_time_call(self):
        assert "SIM001" in rule_ids("import time\nt = time.time()\n")

    def test_monotonic_and_perf_counter(self):
        ids = rule_ids("import time\na = time.monotonic()\nb = time.perf_counter_ns()\n")
        assert ids.count("SIM001") == 2

    def test_datetime_now(self):
        assert "SIM001" in rule_ids("import datetime\nd = datetime.datetime.now()\n")

    def test_from_import_flagged_and_call_tracked(self):
        ids = rule_ids("from time import perf_counter\nt = perf_counter()\n")
        assert ids.count("SIM001") == 2  # the import and the call

    def test_sim_timeout_is_clean(self):
        assert rule_ids("def proc(sim):\n    yield sim.timeout(1.0)\n") == []

    def test_benchmarks_out_of_scope(self):
        assert rule_ids("import time\nt = time.time()\n", path=BENCH) == []

    def test_suppressed(self):
        src = "import time\nt = time.time()  # scalla-lint: disable=SIM001\n"
        assert rule_ids(src) == []


class TestSim002GlobalRandom:
    def test_module_level_call(self):
        assert "SIM002" in rule_ids("import random\nx = random.random()\n")

    def test_from_import(self):
        assert "SIM002" in rule_ids("from random import choice\n")

    def test_applies_outside_src_too(self):
        assert "SIM002" in rule_ids("import random\nrandom.seed(1)\n", path="tests/t.py")

    def test_seeded_instance_is_clean(self):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert rule_ids(src) == []

    def test_from_import_random_class_is_clean(self):
        assert rule_ids("from random import Random\nrng = Random(1)\n") == []

    def test_suppressed(self):
        src = "import random\nx = random.random()  # scalla-lint: disable=SIM002\n"
        assert rule_ids(src) == []


class TestSim003SetIteration:
    def test_for_over_set_literal(self):
        assert "SIM003" in rule_ids("for x in {1, 2, 3}:\n    pass\n")

    def test_for_over_annotated_set_name(self):
        src = """\
        names: set[str] = set()
        for n in names:
            pass
        """
        assert "SIM003" in rule_ids(src)

    def test_for_over_assigned_frozenset_attribute(self):
        src = """\
        class C:
            def __init__(self, paths):
                self.paths = frozenset(paths)
            def walk(self):
                for p in self.paths:
                    pass
        """
        assert "SIM003" in rule_ids(src)

    def test_comprehension_over_set_call(self):
        assert "SIM003" in rule_ids("xs = [x for x in set(range(3))]\n")

    def test_sorted_wrapping_is_clean(self):
        src = """\
        names: set[str] = set()
        for n in sorted(names):
            pass
        """
        assert rule_ids(src) == []

    def test_list_iteration_is_clean(self):
        assert rule_ids("for x in [1, 2]:\n    pass\n") == []

    def test_tests_out_of_scope(self):
        assert rule_ids("for x in {1, 2}:\n    pass\n", path="tests/core/t.py") == []

    def test_suppressed(self):
        src = "for x in {1, 2}:  # scalla-lint: disable=SIM003\n    pass\n"
        assert rule_ids(src) == []


class TestSim004BlockingInProcess:
    def test_sleep_in_generator(self):
        src = """\
        import time
        def proc(sim):
            time.sleep(1)
            yield sim.timeout(1)
        """
        assert "SIM004" in rule_ids(src)

    def test_open_in_generator(self):
        src = """\
        def proc():
            f = open("/tmp/x")
            yield f
        """
        assert "SIM004" in rule_ids(src)

    def test_socket_call_in_generator(self):
        src = """\
        import socket
        def proc(sim):
            s = socket.create_connection(("h", 1))
            yield sim.timeout(1)
        """
        assert "SIM004" in rule_ids(src)

    def test_non_generator_may_open(self):
        src = """\
        def load(path):
            with open(path) as f:
                return f.read()
        """
        assert rule_ids(src) == []

    def test_nested_def_not_attributed_to_generator(self):
        src = """\
        def proc(sim):
            def helper(path):
                return open(path)
            yield sim.timeout(1)
        """
        assert rule_ids(src) == []

    def test_suppressed(self):
        src = """\
        import time
        def proc(sim):
            time.sleep(1)  # scalla-lint: disable=SIM004
            yield sim.timeout(1)
        """
        assert rule_ids(src) == []


class TestSca001BitvecHelpers:
    def test_computed_shift_flagged(self):
        assert "SCA001" in rule_ids("def f(i):\n    return 1 << i\n")

    def test_literal_shift_is_clean(self):
        assert rule_ids("CHUNK = 1 << 20\n") == []

    def test_bitvec_bit_is_clean(self):
        src = "from repro.core import bitvec\ndef f(i):\n    return bitvec.bit(i)\n"
        assert rule_ids(src) == []

    def test_bitvec_module_itself_exempt(self):
        src = "def bit(i):\n    return 1 << i\n"
        assert rule_ids(src, path="src/repro/core/bitvec.py") == []

    def test_suppressed(self):
        src = "def f(i):\n    return 1 << i  # scalla-lint: disable=SCA001\n"
        assert rule_ids(src) == []


class TestSca002FibonacciSizes:
    def test_positional_non_fibonacci(self):
        src = "from repro.core.hashtable import LocationTable\nt = LocationTable(100)\n"
        assert "SCA002" in rule_ids(src)

    def test_keyword_non_fibonacci(self):
        src = "t = NameCache(initial_size=1000)\n"
        assert "SCA002" in rule_ids(src)

    def test_fibonacci_literal_is_clean(self):
        src = "t = LocationTable(initial_size=89)\n"
        assert rule_ids(src) == []

    def test_applies_in_tests_too(self):
        src = "t = LocationTable(initial_size=90)\n"
        assert "SCA002" in rule_ids(src, path="tests/core/t.py")

    def test_computed_size_not_flagged(self):
        # Non-literal sizes are runtime-checked by LocationTable itself.
        src = "t = LocationTable(initial_size=next_fibonacci(n))\n"
        assert rule_ids(src) == []

    def test_suppressed(self):
        src = "t = LocationTable(100)  # scalla-lint: disable=SCA002\n"
        assert rule_ids(src) == []


class TestSca003NoDispatchAllocation:
    def test_event_in_step(self):
        src = """
        class Simulator:
            def step(self):
                poke = Event(self)
                poke.succeed()
        """
        assert "SCA003" in rule_ids(src)

    def test_timeout_in_run(self):
        src = """
        class Simulator:
            def run(self, until=None):
                guard = Timeout(self, 0.0)
                return guard
        """
        assert "SCA003" in rule_ids(src)

    def test_attribute_call_flagged(self):
        src = """
        import repro.sim.kernel as kernel

        class Simulator:
            def step(self):
                kernel.Event(self)
        """
        assert "SCA003" in rule_ids(src)

    def test_other_methods_are_clean(self):
        # Allocation in the public API (sleep/process) is fine — only the
        # per-event dispatch path is restricted.
        src = """
        class Simulator:
            def sleep(self, delay):
                return Timeout(self, delay)

            def process(self, gen):
                return Process(self, gen)
        """
        assert rule_ids(src) == []

    def test_other_classes_are_clean(self):
        src = """
        class Network:
            def step(self):
                return Event(self.sim)
        """
        assert rule_ids(src) == []

    def test_non_event_calls_in_step_are_clean(self):
        src = """
        class Simulator:
            def step(self):
                self._ready.append((self._seq, fn, None, None))
                heappush(self._heap, item)
        """
        assert rule_ids(src) == []

    def test_applies_in_tests_too(self):
        src = """
        class Simulator:
            def step(self):
                Event(self)
        """
        assert "SCA003" in rule_ids(src, path="tests/sim/t.py")

    def test_suppressed(self):
        src = """
        class Simulator:
            def step(self):
                poke = Event(self)  # scalla-lint: disable=SCA003
        """
        assert rule_ids(src) == []


class TestSuppressionMachinery:
    def test_disable_file(self):
        src = "# scalla-lint: disable-file=SIM002\nimport random\nx = random.random()\n"
        assert rule_ids(src) == []

    def test_disable_all_on_line(self):
        src = "import random\nx = random.random()  # scalla-lint: disable=all\n"
        assert rule_ids(src) == []

    def test_multiple_ids_one_comment(self):
        src = (
            "import random\n"
            "t = LocationTable(100), random.random()  # scalla-lint: disable=SCA002,SIM002\n"
        )
        assert rule_ids(src) == []

    def test_unrelated_rule_still_fires(self):
        src = "import random\nx = random.random()  # scalla-lint: disable=SCA002\n"
        assert "SIM002" in rule_ids(src)


class TestEngine:
    def test_syntax_error_reported_as_parse(self):
        ids = rule_ids("def broken(:\n")
        assert ids == ["PARSE"]

    def test_violations_sorted_and_rendered(self):
        vs = run("import random\nb = random.random()\na = random.random()\n")
        assert [v.line for v in vs] == sorted(v.line for v in vs)
        rendered = vs[0].render()
        assert SRC in rendered and "SIM002" in rendered
