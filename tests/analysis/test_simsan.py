"""SimSan: the sanitizer sweeps clean runs silently and catches corruption."""

import pytest

from repro.analysis.simsan import Sanitizer
from repro.analysis.violations import (
    AnchorLeakViolation,
    CorrectionCounterViolation,
    InvariantViolation,
    LoadFactorViolation,
    VectorInvariantViolation,
)
from repro.cluster.scalla import ScallaCluster, ScallaConfig
from repro.core.cache import NameCache
from repro.core.corrections import ClusterMembership
from repro.core.crc32 import hash_name
from repro.core.location import LocationObject
from repro.core.response_queue import AccessMode, ResponseQueue


def sanitized_cluster(n=8, seed=7):
    cfg = ScallaConfig(seed=seed, fanout=n, sanitize=True, lifetime=1200.0)
    cluster = ScallaCluster(n, config=cfg)
    cluster.populate([f"/store/f{i}" for i in range(12)])
    cluster.settle()
    return cluster


class TestSanitizedCluster:
    def test_config_plumbs_through(self):
        cluster = sanitized_cluster()
        mgr = cluster.manager_cmsd()
        assert mgr.sanitizer is not None
        # Servers have no cache to sweep, but their subordinate half
        # (parents, re-home state) is checked every heartbeat.
        server = cluster.nodes[cluster.servers[0]].cmsd
        assert server.sanitizer is not None
        cluster.run(until=cluster.sim.now + 3 * cluster.config.heartbeat_interval)
        assert server.sanitizer.sweeps > 0

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("SCALLA_SANITIZE", raising=False)
        assert ScallaConfig().sanitize is False

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("SCALLA_SANITIZE", "1")
        assert ScallaConfig().sanitize is True
        monkeypatch.setenv("SCALLA_SANITIZE", "0")
        assert ScallaConfig().sanitize is False

    def test_clean_workload_sweeps_silently(self):
        cluster = sanitized_cluster()
        client = cluster.client()
        for i in range(12):
            node, pending = cluster.run_process(client.locate(f"/store/f{i}"))
            assert node and not pending
        # Cross several eviction ticks so the full sweep hook runs.
        cluster.run(until=cluster.sim.now + 3 * cluster.config.lifetime / 64)
        san = cluster.manager_cmsd().sanitizer
        assert san.sweeps >= 3
        assert san.objects_checked > 0

    def test_corrupted_cache_is_caught(self):
        """The acceptance scenario: corrupt a live object, sweep, get the
        typed violation with node context."""
        cluster = sanitized_cluster()
        client = cluster.client()
        cluster.run_process(client.locate("/store/f0"))
        mgr = cluster.manager_cmsd()
        obj = next(iter(mgr.cache.table.visible()))
        obj.v_q = obj.v_h = 0b1  # break V_q ∧ (V_h|V_p) == 0
        with pytest.raises(VectorInvariantViolation) as exc_info:
            mgr.sanitizer.sweep(cache=mgr.cache, rq=mgr.rq, membership=mgr.membership)
        assert exc_info.value.invariant == "vq-disjoint"
        assert exc_info.value.node == mgr.node_id.name


def make(key):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestObjectChecks:
    def test_vh_vp_overlap(self):
        san = Sanitizer(node="n1")
        obj = make("/a")
        obj.v_h = obj.v_p = 0b10
        with pytest.raises(VectorInvariantViolation) as exc_info:
            san.check_object(obj)
        assert exc_info.value.invariant == "vh-vp-disjoint"
        assert exc_info.value.node == "n1"

    def test_counts_objects(self):
        san = Sanitizer()
        san.check_object(make("/a"))
        san.check_object(make("/b"))
        assert san.objects_checked == 2


class TestCacheChecks:
    def test_load_factor_violation(self):
        """Bypass the growth trigger to exceed 80%: SimSan must notice."""
        cache = NameCache(initial_size=89)
        san = Sanitizer(node="n1")
        for i in range(80):  # 80 > 0.8 * 89
            obj = make(f"/f{i}")
            cache.table._buckets[obj.hash_val % cache.table.size].append(obj)
            cache.table._count += 1
            cache.windows.add(obj)
        with pytest.raises(LoadFactorViolation) as exc_info:
            san.check_cache(cache)
        assert exc_info.value.invariant == "load-factor"
        assert exc_info.value.node == "n1"

    def test_chained_object_missing_from_table(self):
        cache = NameCache()
        cache.lookup("/store/a", now=0.0)
        ghost = make("/store/ghost")
        cache.windows.add(ghost)  # chained but never inserted into the table
        san = Sanitizer(node="n1")
        with pytest.raises(InvariantViolation) as exc_info:
            san.check_cache(cache)
        assert exc_info.value.invariant == "chain-table-sync"

    def test_cn_from_the_future(self):
        cache = NameCache()
        ref, _ = cache.lookup("/store/a", now=0.0)
        ref.get().c_n = 99  # membership.n_c is still 0
        san = Sanitizer(node="n1")
        with pytest.raises(CorrectionCounterViolation) as exc_info:
            san.check_cache(cache)
        assert exc_info.value.invariant == "cn-order"

    def test_clean_cache_passes(self):
        cache = NameCache()
        for i in range(20):
            cache.lookup(f"/store/f{i}", now=0.0)
        Sanitizer().check_cache(cache)


class TestMembershipChecks:
    def test_slot_counter_exceeds_master(self):
        m = ClusterMembership()
        m.login("s1", ["/store"])
        m.c[0] = m.n_c + 5
        with pytest.raises(CorrectionCounterViolation) as exc_info:
            Sanitizer().check_membership(m)
        assert exc_info.value.invariant == "ci-order"

    def test_duplicate_stamps(self):
        m = ClusterMembership()
        m.login("s1", ["/store"])
        m.login("s2", ["/store"])
        m.c[1] = m.c[0]
        with pytest.raises(CorrectionCounterViolation) as exc_info:
            Sanitizer().check_membership(m)
        assert exc_info.value.invariant == "ci-distinct"

    def test_unstamped_occupied_slot(self):
        m = ClusterMembership()
        m.login("s1", ["/store"])
        m.c[0] = 0
        with pytest.raises(CorrectionCounterViolation) as exc_info:
            Sanitizer().check_membership(m)
        assert exc_info.value.invariant == "ci-stamped"

    def test_offline_mask_must_be_subset(self):
        m = ClusterMembership()
        m.login("s1", ["/store"])
        m.v_offline |= 0b10  # slot 1 is unoccupied
        with pytest.raises(InvariantViolation) as exc_info:
            Sanitizer().check_membership(m)
        assert exc_info.value.invariant == "offline-subset"

    def test_clean_membership_passes(self):
        m = ClusterMembership()
        m.login("s1", ["/store"])
        m.login("s2", ["/store"])
        m.disconnect("s2")
        Sanitizer().check_membership(m)


class TestQueueChecks:
    def _queue_with_waiter(self):
        rq = ResponseQueue(anchors=8)
        loc = make("/store/a")
        rq.add_waiter(loc, AccessMode.READ, payload="w", now=0.0)
        return rq, loc

    def test_clean_queue_passes(self):
        rq, loc = self._queue_with_waiter()
        Sanitizer().check_queue(rq)
        rq.on_response(loc, server=3, write_capable=True)
        Sanitizer().check_queue(rq)

    def test_active_count_desync(self):
        rq, _ = self._queue_with_waiter()
        rq._active = 0
        with pytest.raises(AnchorLeakViolation) as exc_info:
            Sanitizer().check_queue(rq)
        assert exc_info.value.invariant == "active-count"

    def test_unreachable_anchor_leak(self):
        rq, _ = self._queue_with_waiter()
        rq._timeline.clear()  # the anchor can now never expire
        with pytest.raises(AnchorLeakViolation) as exc_info:
            Sanitizer().check_queue(rq)
        assert exc_info.value.invariant == "timeline-reach"

    def test_anchor_without_waiters(self):
        rq, loc = self._queue_with_waiter()
        anchor = rq._anchors[loc.rq_read]
        anchor.waiters.clear()
        with pytest.raises(AnchorLeakViolation) as exc_info:
            Sanitizer().check_queue(rq)
        assert exc_info.value.invariant == "anchor-waiters"

    def test_partition_violation(self):
        rq, _ = self._queue_with_waiter()
        rq._free.pop()
        rq._active = len(rq._anchors) - len(rq._free) - 1
        with pytest.raises(AnchorLeakViolation) as exc_info:
            Sanitizer().check_queue(rq)
        assert exc_info.value.invariant in ("anchor-partition", "active-count")


class TestSubordinateChecks:
    """Re-home path invariants (fault-tolerance PR): corrupt a live
    subordinate cmsd's parent bookkeeping and SimSan must object."""

    def _server_cmsd(self):
        cluster = sanitized_cluster(n=4, seed=9)
        return cluster.nodes[cluster.servers[0]].cmsd

    def test_clean_subordinate_passes(self):
        cmsd = self._server_cmsd()
        cmsd.sanitizer.check_subordinate(cmsd)

    def test_duplicate_parent(self):
        cmsd = self._server_cmsd()
        cmsd.parents = cmsd.parents + (cmsd.parents[0],)
        with pytest.raises(InvariantViolation) as exc_info:
            cmsd.sanitizer.check_subordinate(cmsd)
        assert exc_info.value.invariant == "parents-distinct"
        assert exc_info.value.node == cmsd.node_id.name

    def test_stale_silence_clock(self):
        cmsd = self._server_cmsd()
        cmsd._last_parent_ack["ghost-parent"] = 0.0
        with pytest.raises(InvariantViolation) as exc_info:
            cmsd.sanitizer.check_subordinate(cmsd)
        assert exc_info.value.invariant == "ack-keys-subset"

    def test_stale_relogin_backoff(self):
        cmsd = self._server_cmsd()
        cmsd._relogin_state["ghost-parent"] = (1, 99.0)
        with pytest.raises(InvariantViolation) as exc_info:
            cmsd.sanitizer.check_subordinate(cmsd)
        assert exc_info.value.invariant == "relogin-keys-subset"

    def test_emptied_standby_pool(self):
        cmsd = self._server_cmsd()
        cmsd.standbys = ("somewhere",)
        cmsd._standby_pool = ()
        with pytest.raises(InvariantViolation) as exc_info:
            cmsd.sanitizer.check_subordinate(cmsd)
        assert exc_info.value.invariant == "standby-pool-nonempty"

    def test_parentless_with_pool(self):
        cmsd = self._server_cmsd()
        cmsd.parents = ()
        cmsd._last_parent_ack.clear()
        cmsd._relogin_state.clear()
        cmsd._standby_pool = ("somewhere",)
        with pytest.raises(InvariantViolation) as exc_info:
            cmsd.sanitizer.check_subordinate(cmsd)
        assert exc_info.value.invariant == "parents-nonempty"
