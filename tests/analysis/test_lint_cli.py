"""CLI-level tests for ``python -m repro.analysis.lint``.

The acceptance contract: exit 0 on the real tree, non-zero on the seeded
violation fixture, machine-readable JSON on request.
"""

import json
import pathlib
import subprocess
import sys

from repro.analysis.lint import main

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "seeded_violations.py.txt"


class TestMain:
    def test_fixture_fails(self, capsys):
        assert main([str(FIXTURE)]) == 1
        out = capsys.readouterr()
        assert "SIM002" in out.out
        assert "SCA002" in out.out
        assert "SCA003" in out.out
        assert "3 violation(s)" in out.err

    def test_fixture_json_output(self, capsys):
        assert main(["--format", "json", str(FIXTURE)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "scalla-lint"
        assert payload["files_checked"] == 1
        assert {v["rule"] for v in payload["violations"]} == {"SIM002", "SCA002", "SCA003"}
        for v in payload["violations"]:
            assert v["line"] > 0 and v["message"]

    def test_clean_file_passes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(7)\n")
        assert main([str(clean)]) == 0
        assert "0 violation(s) in 1 file(s)" in capsys.readouterr().err

    def test_select_restricts_rules(self, capsys):
        # Only SCA002 selected: the SIM002 violation in the fixture is ignored.
        assert main(["--select", "SCA002", str(FIXTURE)]) == 1
        assert "SIM002" not in capsys.readouterr().out

    def test_select_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "NOPE99", str(FIXTURE)]) == 2

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_list_rules_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SCA001", "SCA002", "SCA003"):
            assert rule_id in out

    def test_directory_walk_skips_fixture(self, capsys):
        # The .py.txt fixture must not pollute a directory walk.
        assert main([str(FIXTURE.parent)]) == 0


class TestModuleEntry:
    def test_real_tree_is_clean(self):
        """The committed baseline: the whole repo lints clean (exit 0)."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "src", "tests", "benchmarks"],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_module_entry_fails_on_fixture(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(FIXTURE)],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
