"""Typed invariant-violation errors: hierarchy, context, raise sites."""

import pytest

from repro.analysis.violations import (
    AnchorLeakViolation,
    CorrectionCounterViolation,
    InvariantViolation,
    LoadFactorViolation,
    TableStructureViolation,
    VectorInvariantViolation,
    WindowAccountingViolation,
)
from repro.core.crc32 import hash_name
from repro.core.eviction import EvictionWindows
from repro.core.hashtable import LocationTable
from repro.core.location import LocationObject


def make(key):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestHierarchy:
    def test_all_are_assertion_errors(self):
        for cls in (
            InvariantViolation,
            VectorInvariantViolation,
            LoadFactorViolation,
            TableStructureViolation,
            WindowAccountingViolation,
            CorrectionCounterViolation,
            AnchorLeakViolation,
        ):
            assert issubclass(cls, AssertionError)
            assert issubclass(cls, InvariantViolation)

    def test_message_carries_context(self):
        exc = VectorInvariantViolation(
            "broke", invariant="vq-disjoint", node="mgr0", path="/store/f", v_q="0x3"
        )
        text = str(exc)
        assert "[vq-disjoint]" in text
        assert "node=mgr0" in text
        assert "path='/store/f'" in text
        assert "v_q='0x3'" in text
        assert exc.invariant == "vq-disjoint"
        assert exc.context == {"v_q": "0x3"}

    def test_bare_message(self):
        exc = InvariantViolation("plain")
        assert str(exc) == "plain"
        assert exc.node == "" and exc.path == "" and exc.invariant == ""


class TestLocationObjectRaises:
    def test_vq_overlap_is_typed(self):
        obj = make("/store/a")
        obj.v_h = 0b11
        obj.v_q = 0b01
        with pytest.raises(VectorInvariantViolation) as exc_info:
            obj.check_invariants()
        assert exc_info.value.invariant == "vq-disjoint"
        assert exc_info.value.path == "/store/a"

    def test_vector_out_of_range(self):
        obj = make("/store/a")
        obj.v_p = 1 << 70
        with pytest.raises(VectorInvariantViolation) as exc_info:
            obj.check_invariants()
        assert exc_info.value.invariant == "vec-64bit"
        assert exc_info.value.context["vector"] == "v_p"

    def test_ta_out_of_range(self):
        obj = make("/store/a")
        obj.t_a = 64
        with pytest.raises(WindowAccountingViolation) as exc_info:
            obj.check_invariants()
        assert exc_info.value.invariant == "ta-range"

    def test_keylen_inconsistent(self):
        obj = make("/store/a")
        obj.key_len = 3
        with pytest.raises(InvariantViolation) as exc_info:
            obj.check_invariants()
        assert exc_info.value.invariant == "keylen"

    def test_catchable_as_assertion_error(self):
        """The promotion from bare asserts must not break legacy callers."""
        obj = make("/store/a")
        obj.v_h = obj.v_q = 1
        with pytest.raises(AssertionError):
            obj.check_invariants()


class TestTableRaises:
    def test_misplaced_object(self):
        t = LocationTable()
        obj = make("/a")
        t.insert(obj)
        obj.hash_val += 1
        with pytest.raises(TableStructureViolation) as exc_info:
            t.check_invariants()
        assert exc_info.value.invariant == "bucket-placement"
        assert exc_info.value.path == "/a"

    def test_count_desync(self):
        t = LocationTable()
        t.insert(make("/a"))
        t._count = 5
        with pytest.raises(TableStructureViolation) as exc_info:
            t.check_invariants()
        assert exc_info.value.invariant == "count-sync"
        assert exc_info.value.context == {"count": 5, "chained": 1}


class TestWindowsRaise:
    def test_chain_window_mismatch(self):
        w = EvictionWindows()
        obj = make("/a")
        w.add(obj)
        obj.chain_window = 7
        with pytest.raises(WindowAccountingViolation) as exc_info:
            w.check_invariants()
        assert exc_info.value.invariant == "chain-window"

    def test_double_chaining(self):
        w = EvictionWindows()
        obj = make("/a")
        w.add(obj)
        w._chains[obj.chain_window].append(obj)
        with pytest.raises(WindowAccountingViolation) as exc_info:
            w.check_invariants()
        assert exc_info.value.invariant == "single-chain"
