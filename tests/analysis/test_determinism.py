"""The determinism harness: identical seeds yield identical event streams."""

import copy

from repro.analysis.determinism import diff_snapshots, run_workload

# Small workload: enough to exercise cache, queue, flooding, churn, and
# eviction ticks while keeping the suite fast.
SMALL = dict(n_servers=6, fanout=6, files=10, lookups=16, misses=2)


class TestSameSeed:
    def test_two_runs_identical_and_sanitize_is_pure(self):
        """One assertion, two claims: same seed → same stream, and SimSan
        sweeps (on in run two only) change nothing observable."""
        a = run_workload(seed=51, **SMALL)
        b = run_workload(seed=51, sanitize=True, **SMALL)
        assert diff_snapshots(a, b) == []
        # The workload must have actually done something worth comparing.
        assert a["extra"]["resolved"] == SMALL["lookups"]
        assert a["extra"]["notfound"] == SMALL["misses"]
        assert a["traces"]

    def test_different_seeds_diverge(self):
        """Sanity check on the harness itself: it can tell runs apart."""
        a = run_workload(seed=51, **SMALL)
        b = run_workload(seed=52, **SMALL)
        assert diff_snapshots(a, b) != []


class TestDiff:
    def test_doctored_metric_is_pinpointed(self):
        a = run_workload(seed=51, **SMALL)
        b = copy.deepcopy(a)
        for entry in b["metrics"]:
            if entry["name"] == "cache_lookups_total":
                entry["value"] += 1
                break
        diffs = diff_snapshots(a, b)
        assert diffs
        assert any("line" in d for d in diffs)

    def test_diff_is_truncated(self):
        a = run_workload(seed=51, **SMALL)
        b = run_workload(seed=53, **SMALL)
        diffs = diff_snapshots(a, b, limit=3)
        assert len(diffs) <= 4  # 3 diffs + the truncation marker
