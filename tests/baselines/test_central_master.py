"""Unit tests for the GFS-style central master baseline."""

import random

from repro.baselines.central_master import (
    CentralMaster,
    ManifestChunk,
    register_over_network,
)
from repro.sim.kernel import Simulator
from repro.sim.latency import Fixed
from repro.sim.network import Network


class TestCentralMaster:
    def test_ingest_and_lookup(self):
        m = CentralMaster()
        m.ingest(ManifestChunk(node="srv1", paths=("/a", "/b"), last=True))
        assert m.lookup("/a") == {"srv1"}
        assert m.lookup("/ghost") == set()
        assert m.registered_nodes == {"srv1"}
        assert m.file_count() == 2

    def test_multi_chunk_registration(self):
        m = CentralMaster()
        m.ingest(ManifestChunk(node="srv1", paths=("/a",), last=False))
        assert "srv1" not in m.registered_nodes
        m.ingest(ManifestChunk(node="srv1", paths=("/b",), last=True))
        assert "srv1" in m.registered_nodes

    def test_multiple_holders(self):
        m = CentralMaster()
        m.ingest(ManifestChunk(node="srv1", paths=("/a",), last=True))
        m.ingest(ManifestChunk(node="srv2", paths=("/a",), last=True))
        assert m.lookup("/a") == {"srv1", "srv2"}

    def test_deregister_scrubs_node(self):
        m = CentralMaster()
        m.ingest(ManifestChunk(node="srv1", paths=("/a", "/b"), last=True))
        m.ingest(ManifestChunk(node="srv2", paths=("/a",), last=True))
        removed = m.deregister("srv1")
        assert removed == 2
        assert m.lookup("/a") == {"srv2"}
        assert m.lookup("/b") == set()


class TestNetworkRegistration:
    def _run(self, n_files):
        sim = Simulator()
        net = Network(sim, default_latency=Fixed(10e-6), rng=random.Random(0))
        net.add_host("master")
        net.add_host("srv1")
        master = CentralMaster()

        def master_loop():
            host = net.host("master")
            while True:
                env = yield host.inbox.get()
                master.ingest(env.payload)

        sim.process(master_loop())
        manifest = [f"/store/run{i//100:04d}/f{i:06d}.root" for i in range(n_files)]
        tracker = register_over_network(
            sim,
            net,
            master,
            master_host="master",
            node="srv1",
            node_host="srv1",
            manifest=manifest,
        )
        sim.run(until=60.0)
        return master, tracker

    def test_registration_transfers_all_files(self):
        master, tracker = self._run(2500)
        assert master.manifest_files_received == 2500
        assert "srv1" in master.registered_nodes
        assert tracker.chunks == 3

    def test_payload_scales_with_file_count(self):
        _, small = self._run(100)
        _, big = self._run(10_000)
        assert big.bytes_sent > small.bytes_sent * 50

    def test_contrast_with_scalla_login_size(self):
        """The paper's point in one assert: a Scalla login is constant-size
        while a manifest upload grows without bound."""
        from repro.cluster import protocol as pr

        login = pr.estimate_size(pr.Login(node="srv1", role="server", paths=("/store",)))
        _, tracker = self._run(10_000)
        assert tracker.bytes_sent > login * 1000
