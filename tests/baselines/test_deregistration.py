"""§V's other half: de-registration cost, Scalla vs the centralized designs."""

from repro.baselines.afs_volumedb import ReplicatedVolumeDB
from repro.baselines.central_master import CentralMaster, ManifestChunk
from repro.core.corrections import ClusterMembership


class TestDeregistrationCost:
    def test_scalla_drop_is_independent_of_file_count(self):
        """Dropping a Scalla node touches only its export prefixes —
        whether it held ten files or ten million is invisible."""
        m = ClusterMembership()
        m.login("srv-huge", ["/store", "/atlas"])  # exports 2 prefixes
        # The drop's work is bounded by the prefix count; there is no file
        # state to scrub because none was ever uploaded.
        slot = m.drop("srv-huge")
        assert m.member_count() == 0
        assert m.eligible("/store/anything") == 0

    def test_gfs_deregistration_scales_with_files(self):
        master = CentralMaster()
        small_files = [f"/a/{i}" for i in range(100)]
        big_files = [f"/b/{i}" for i in range(10_000)]
        master.ingest(ManifestChunk(node="small", paths=tuple(small_files), last=True))
        master.ingest(ManifestChunk(node="big", paths=tuple(big_files), last=True))
        assert master.deregister("small") == 100
        assert master.deregister("big") == 10_000  # O(files) mappings scrubbed

    def test_afs_update_amplification_per_change(self):
        """Every AFS volume move costs one message per replica; Scalla's
        equivalent (a server re-exporting) costs exactly one login."""
        db = ReplicatedVolumeDB([f"vice{i}" for i in range(20)])
        msgs = db.set_volume("vol1", "serverA")
        assert msgs == 20

        m = ClusterMembership()
        m.login("serverA", ["/vol1"])
        n_c_before = m.n_c
        # Re-export (the Scalla-side analogue of a volume move):
        m.login("serverA", ["/vol2"])  # drop + fresh login, local bookkeeping
        assert m.n_c >= n_c_before  # counters moved; zero fan-out messages

    def test_scalla_state_is_demand_proportional(self):
        """AFS replicas store ALL volumes; a Scalla manager's cache holds
        only names that were actually requested."""
        db = ReplicatedVolumeDB(["a", "b", "c"])
        for v in range(1_000):
            db.set_volume(f"vol{v}", "s")
        assert db.total_state() == 3_000  # 1000 volumes x 3 replicas

        from repro.core.cache import NameCache

        m = ClusterMembership()
        m.login("s", ["/vol"])
        cache = NameCache(m, lifetime=64.0)
        # The cluster "has" 1000 volumes but only 10 were ever asked for.
        for i in range(10):
            cache.lookup(f"/vol{i}", now=0.0)
        assert cache.live_count() == 10
