"""Unit tests for the protocol, eviction, and AFS baselines."""

import pytest

from repro.baselines.afs_volumedb import ReplicatedVolumeDB
from repro.baselines.always_respond import (
    always_respond_messages,
    crossover_fraction,
    rarely_respond_messages,
)
from repro.baselines.naive_eviction import EagerWindows
from repro.core.crc32 import hash_name
from repro.core.eviction import WINDOW_COUNT, EvictionWindows
from repro.core.location import LocationObject


class TestProtocolModel:
    def test_rarely_counts(self):
        mc = rarely_respond_messages(64, 3)
        assert mc.queries == 64 and mc.responses == 3 and mc.total == 67

    def test_always_counts(self):
        mc = always_respond_messages(64, 3)
        assert mc.total == 128

    def test_rarely_never_worse(self):
        for n in (1, 16, 64):
            for h in range(n + 1):
                assert (
                    rarely_respond_messages(n, h).total
                    <= always_respond_messages(n, h).total
                )

    def test_paper_criterion_less_than_half(self):
        """At h < n/2, rarely-respond saves at least 25% of messages."""
        n = 64
        for h in range(n // 2):
            saved = always_respond_messages(n, h).total - rarely_respond_messages(n, h).total
            assert saved / always_respond_messages(n, h).total >= 0.25

    def test_crossover_at_full_replication(self):
        assert crossover_fraction() == 1.0
        assert rarely_respond_messages(64, 64).total == always_respond_messages(64, 64).total

    def test_validation(self):
        with pytest.raises(ValueError):
            rarely_respond_messages(0, 0)
        with pytest.raises(ValueError):
            always_respond_messages(4, 5)


def make(key):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestEagerWindows:
    def test_expiry_matches_deferred_design(self):
        eager = EagerWindows()
        obj = make("/a")
        eager.add(obj)
        for _ in range(WINDOW_COUNT - 1):
            assert not obj.hidden
            eager.tick()
        eager.tick()
        assert obj.hidden

    def test_refresh_moves_immediately(self):
        eager = EagerWindows()
        obj = make("/a")
        eager.add(obj)
        eager.tick()
        eager.refresh(obj)
        assert obj.chain_window == eager.current_window  # moved NOW

    def test_scan_cost_grows_with_chain_length(self):
        """The quadratic mechanism: refreshing objects in a long chain
        costs a scan of that chain per refresh."""
        eager = EagerWindows()
        objs = [make(f"/f{i}") for i in range(1000)]
        for o in objs:
            eager.add(o)  # all in window 0
        eager.tick()
        eager.scan_steps = 0
        for o in objs:
            eager.refresh(o)
        # First refresh scans ~1000, pattern sums to ~n^2/2 total steps.
        assert eager.scan_steps > 1000 * 100

    def test_deferred_design_does_no_refresh_scans(self):
        deferred = EvictionWindows()
        objs = [make(f"/f{i}") for i in range(1000)]
        for o in objs:
            deferred.add(o)
        deferred.tick()
        for o in objs:
            deferred.refresh(o)  # O(1) each: just a field write
        # The deferred cost shows up once, at sweep time, linear:
        for _ in range(WINDOW_COUNT - 1):
            deferred.tick()
        assert deferred.total_rechained == 1000


class TestAfsVolumeDB:
    def test_update_fans_out_to_all_replicas(self):
        db = ReplicatedVolumeDB([f"vice{i}" for i in range(10)])
        msgs = db.set_volume("vol.physics", "server-3")
        assert msgs == 10
        assert db.update_messages == 10
        assert db.consistent()

    def test_lookup_any_replica(self):
        db = ReplicatedVolumeDB(["a", "b"])
        db.set_volume("v1", "s1")
        assert db.lookup("v1", at_replica="a") == "s1"
        assert db.lookup("v1", at_replica="b") == "s1"

    def test_state_amplification(self):
        """Every replica stores every volume: total state = volumes × replicas."""
        db = ReplicatedVolumeDB([f"r{i}" for i in range(5)])
        for v in range(100):
            db.set_volume(f"vol{v}", "s1")
        assert db.total_state() == 500

    def test_deletion(self):
        db = ReplicatedVolumeDB(["a"])
        db.set_volume("v", "s")
        db.set_volume("v", None)
        assert db.lookup("v") is None

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedVolumeDB([])
