"""Unit tests for the power-of-two table baseline (and the E3 contrast)."""

import pytest

from repro.baselines.pow2table import Pow2Table
from repro.core.crc32 import hash_name
from repro.core.location import LocationObject
from repro.workloads.namegen import sequential_paths


def make(key):
    obj = LocationObject()
    obj.assign(key, hash_name(key), c_n=0, t_a=0)
    return obj


class TestPow2Table:
    def test_insert_find(self):
        t = Pow2Table()
        obj = make("/a")
        t.insert(obj)
        assert t.find("/a", obj.hash_val) is obj
        assert t.find("/b", hash_name("/b")) is None

    def test_growth_doubles(self):
        t = Pow2Table(initial_size=128)
        for i in range(103):  # 80% of 128 = 102.4
            t.insert(make(f"/f{i}"))
        assert t.size == 256
        assert t.resizes == 1

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            Pow2Table(initial_size=100)

    def test_all_keys_survive_growth(self):
        t = Pow2Table(initial_size=128)
        objs = [make(f"/store/run{i:04d}/f.root") for i in range(1000)]
        for o in objs:
            t.insert(o)
        for o in objs:
            assert t.find(o.key, o.hash_val) is o


def chain_cost(hashes, modulus, *, pow2):
    """Expected probes per successful lookup: sum(l^2)/n over chains."""
    from collections import Counter

    chains = Counter((h & (modulus - 1)) if pow2 else (h % modulus) for h in hashes)
    n = len(hashes)
    return sum(c * c for c in chains.values()) / n


class TestCollisionContrast:
    """The executable form of footnote 4 — with its honest boundaries.

    Reproduction finding (recorded in EXPERIMENTS.md under E3): with zlib's
    true CRC32 the power-of-two table is NOT measurably worse — CRC32's low
    bits are well mixed.  The paper's "much higher collision rates" appear
    exactly when the hash has correlated low bits, as classic
    accumulate-style string hashes do on names sharing a constant suffix
    (every HEP file ends ``.root``).  The Fibonacci modulus is insensitive
    to the hash choice — that is its real virtue: it makes table behaviour
    independent of hash quality in the low bits.
    """

    def test_crc32_pow2_not_worse_negative_result(self):
        from repro.core.crc32 import hash_name as crc

        hashes = [crc(p) for p in sequential_paths(4000)]
        assert chain_cost(hashes, 8192, pow2=True) <= chain_cost(hashes, 6765, pow2=False) * 1.1

    def test_sdbm_pow2_collides_fibonacci_rescues(self):
        from repro.core.hashes import sdbm

        hashes = [sdbm(p) for p in sequential_paths(4000)]
        p2 = chain_cost(hashes, 8192, pow2=True)
        fib = chain_cost(hashes, 6765, pow2=False)
        assert p2 > fib * 2  # "much higher collision rates"

    def test_shift_add_pow2_catastrophic(self):
        from repro.core.hashes import shift_add

        hashes = [shift_add(p) for p in sequential_paths(4000)]
        p2 = chain_cost(hashes, 8192, pow2=True)
        fib = chain_cost(hashes, 6765, pow2=False)
        assert p2 > fib * 50

    def test_fibonacci_near_ideal_for_every_hash(self):
        """CRC32 mod Fibonacci behaves like an ideal random hash: expected
        probe cost ~ 1 + load for every hash family tried."""
        from repro.core.crc32 import hash_name as crc
        from repro.core.hashes import java31, sdbm

        for fn in (crc, java31, sdbm):
            hashes = [fn(p) for p in sequential_paths(4000)]
            load = 4000 / 6765
            ideal = 1 + load
            assert chain_cost(hashes, 6765, pow2=False) < ideal * 1.25
