"""Unit tests for workload generators."""

import itertools
import random

import pytest

from repro.workloads.namegen import hep_paths, path_stream, qserv_chunk_path, sequential_paths
from repro.workloads.popularity import UniformChooser, ZipfChooser, poisson_arrivals


class TestNamegen:
    def test_hep_paths_unique_and_structured(self):
        paths = hep_paths(500, rng=random.Random(1))
        assert len(set(paths)) == 500
        assert all(p.startswith("/store/babar/") for p in paths)
        assert all(p.endswith(".root") for p in paths)

    def test_hep_paths_deterministic(self):
        assert hep_paths(50, rng=random.Random(3)) == hep_paths(50, rng=random.Random(3))

    def test_sequential_paths(self):
        paths = sequential_paths(3)
        assert paths == [
            "/store/data/file-00000000.root",
            "/store/data/file-00000001.root",
            "/store/data/file-00000002.root",
        ]

    def test_qserv_chunk_path(self):
        assert qserv_chunk_path(17) == "/qserv/chunk/00017"
        assert qserv_chunk_path(17, query_id=3) == "/qserv/chunk/00017/q3"

    def test_path_stream_endless_unique(self):
        stream = path_stream(random.Random(0))
        first = list(itertools.islice(stream, 1000))
        assert len(set(first)) == 1000


class TestZipf:
    def test_rank_one_dominates(self):
        items = list(range(100))
        chooser = ZipfChooser(items, s=1.0)
        rng = random.Random(42)
        draws = [chooser.choose(rng) for _ in range(5000)]
        counts = {i: draws.count(i) for i in set(draws)}
        assert counts.get(0, 0) > counts.get(50, 0) * 5

    def test_expected_top_fraction_monotone(self):
        chooser = ZipfChooser(range(100), s=1.0)
        f10 = chooser.expected_top_fraction(10)
        f50 = chooser.expected_top_fraction(50)
        assert 0 < f10 < f50 <= 1.0

    def test_s_zero_is_uniform(self):
        chooser = ZipfChooser(range(10), s=0.0)
        assert chooser.expected_top_fraction(5) == pytest.approx(0.5)

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            ZipfChooser([])

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfChooser([1], s=-1.0)

    def test_uniform_chooser(self):
        chooser = UniformChooser(["a", "b"])
        rng = random.Random(0)
        picks = {chooser.choose(rng) for _ in range(100)}
        assert picks == {"a", "b"}
        assert chooser.expected_top_fraction(1) == 0.5


class TestPoisson:
    def test_rate_roughly_respected(self):
        rng = random.Random(7)
        times = poisson_arrivals(rng, rate=100.0, horizon=10.0)
        assert 800 < len(times) < 1200  # ~1000 expected
        assert all(0 <= t < 10.0 for t in times)
        assert times == sorted(times)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(random.Random(0), rate=0.0, horizon=1.0)

    def test_deterministic_with_seed(self):
        a = poisson_arrivals(random.Random(9), 10.0, 5.0)
        b = poisson_arrivals(random.Random(9), 10.0, 5.0)
        assert a == b


class TestJobs:
    def test_job_runs_metadata_burst_then_reads(self):
        from repro.cluster import ScallaCluster, ScallaConfig
        from repro.workloads.jobs import JobSpec, run_job

        cluster = ScallaCluster(3, config=ScallaConfig(seed=17))
        paths = [f"/store/j{i}.root" for i in range(5)]
        cluster.populate(paths, size=8192)
        cluster.settle()
        client = cluster.client()
        result = cluster.run_process(
            run_job(client, JobSpec(files=tuple(paths), read_bytes=1024)), limit=120
        )
        assert len(result.stat_latencies) == 5
        assert len(result.open_latencies) == 5
        assert len(result.read_latencies) == 5
        assert result.failures == 0
        assert result.metadata_ops == 10
        assert result.duration > 0

    def test_job_counts_missing_files_as_failures(self):
        from repro.cluster import ScallaCluster, ScallaConfig
        from repro.workloads.jobs import JobSpec, run_job

        cluster = ScallaCluster(2, config=ScallaConfig(seed=18, full_delay=0.5))
        cluster.populate(["/store/ok.root"], size=64)
        cluster.settle()
        client = cluster.client()
        spec = JobSpec(files=("/store/ok.root", "/store/gone.root"))
        result = cluster.run_process(run_job(client, spec), limit=240)
        assert result.failures >= 1
        assert len(result.read_latencies) == 1
